#!/usr/bin/env python3
"""Quickstart: fuse redundant sensor readings with AVOC.

Five sensors measure the same light level; one of them (E4) is broken
and reads +6 kilolumen too high.  AVOC's clustering bootstrap spots the
outlier in the very first round — no history warm-up needed — and the
seeded history keeps it excluded afterwards.

Run:  python examples/quickstart.py
"""

from repro import AvocVoter, MeanVoter, Round


def main() -> None:
    readings_per_round = [
        {"E1": 18.02, "E2": 18.11, "E3": 17.88, "E4": 24.08, "E5": 18.05},
        {"E1": 18.00, "E2": 18.14, "E3": 17.91, "E4": 24.11, "E5": 18.03},
        {"E1": 18.05, "E2": 18.09, "E3": 17.86, "E4": 24.02, "E5": 18.08},
    ]

    avoc = AvocVoter()
    baseline = MeanVoter()

    print("round  plain-average  avoc-output  excluded       bootstrap")
    for number, values in enumerate(readings_per_round):
        voting_round = Round.from_mapping(number, values)
        naive = baseline.vote(voting_round)
        fused = avoc.vote(voting_round)
        excluded = ",".join(fused.eliminated) or "-"
        print(
            f"{number:>5}  {naive.value:>13.3f}  {fused.value:>11.3f}  "
            f"{excluded:<13} {fused.used_bootstrap}"
        )

    print("\nhistory records after 3 rounds:")
    for module, record in sorted(avoc.history.snapshot().items()):
        print(f"  {module}: {record:.2f}")
    print("\nThe faulty E4 was excluded from round 0 and its record is 0;")
    print("a plain average would have been skewed by +1.2 kilolumen forever.")


if __name__ == "__main__":
    main()
