#!/usr/bin/env python3
"""Algorithm comparison application (the paper's Fig. 5, as text).

Streams a configurable scenario — agreeing sensors, one faulty sensor,
a mid-run spike — through every registered algorithm side by side, so
the behavioural differences the paper tabulates are directly visible.

Run:  python examples/compare_algorithms.py
"""

import numpy as np

from repro.analysis.report import render_table
from repro.types import Round
from repro.voting.registry import create_voter

ALGORITHMS = ("average", "median", "standard", "me", "sdt", "hybrid",
              "clustering", "avoc", "mlv")


def scenario(n_rounds: int = 30, seed: int = 0):
    """Five sensors; E4 reads +6 high; everyone spikes at round 20."""
    rng = np.random.default_rng(seed)
    biases = np.array([-0.05, 0.10, -0.45, 0.15, 0.20])
    for number in range(n_rounds):
        values = 18.0 + biases + rng.normal(0.0, 0.1, size=5)
        values[3] += 6.0  # faulty E4
        if number == 20:
            values += 30.0  # correlated data spike (lightning, reboot)
        yield Round.from_values(number, list(values))


def main() -> None:
    voters = {name: create_voter(name) for name in ALGORITHMS}
    history = {name: [] for name in ALGORITHMS}

    for voting_round in scenario():
        for name, voter in voters.items():
            outcome = voter.vote(voting_round)
            history[name].append(outcome)

    print("Output per round (faulty E4 at +6; correlated spike at round 20):")
    rounds_to_show = (0, 1, 2, 5, 19, 20, 21, 29)
    rows = []
    for name in ALGORITHMS:
        row = [name]
        for r in rounds_to_show:
            row.append(round(float(history[name][r].value), 2))
        rows.append(row)
    print(render_table(["algorithm"] + [f"r{r}" for r in rounds_to_show], rows))

    print("\nWho excluded the faulty sensor, and when:")
    rows = []
    for name in ALGORITHMS:
        first = next(
            (
                o.round_number
                for o in history[name]
                if o.weights.get("E4", 1.0) == 0.0
            ),
            None,
        )
        rows.append([name, "round " + str(first) if first is not None else "never"])
    print(render_table(["algorithm", "E4 first zero-weighted"], rows))

    print(
        "\nNote how at round 20 every algorithm follows the correlated spike "
        "(all sensors moved together: internal ground truth CAN be wrong when "
        "the world lies to every sensor at once), and how history-based "
        "voters recover the round after."
    )


if __name__ == "__main__":
    main()
