#!/usr/bin/env python3
"""VDX tour: define voting behaviour in JSON, not code.

Walks through the paper's §6 contribution: author a VDX document
(Listing 1), validate it, build the voter it describes, tweak a copy
for a different deployment, and exercise the categorical extension.

Run:  python examples/vdx_tour.py
"""

import json

from repro.exceptions import SpecificationError
from repro.types import Round
from repro.vdx import LISTING_1, VotingSpec, build_voter


def main() -> None:
    # 1. Parse and validate the paper's Listing 1 verbatim.
    print("Listing 1 (the paper's AVOC definition):")
    print(json.dumps(LISTING_1, indent=2))
    spec = VotingSpec.from_dict(LISTING_1)
    voter = build_voter(spec)
    print(f"\n-> builds a {type(voter).__name__} "
          f"(collation={spec.collation}, bootstrap={spec.bootstrapping})")

    outcome = voter.vote(Round.from_values(0, [18.0, 18.1, 17.9, 24.0, 18.05]))
    print(f"-> first vote on faulty round: output={outcome.value}, "
          f"excluded={outcome.eliminated}, bootstrap={outcome.used_bootstrap}")

    # 2. Derive a deployment variant without touching code.
    tighter = spec.with_overrides(
        algorithm_name="AVOC-tight", params={"error": 0.02}
    )
    print(f"\nDerived spec {tighter.algorithm_name!r}: error={tighter.error}")

    # 3. Validation catches contradictory documents with all problems.
    broken = dict(LISTING_1)
    broken["value_type"] = "CATEGORICAL"
    try:
        VotingSpec.from_dict(broken)
    except SpecificationError as exc:
        print("\nA categorical AVOC document is rejected, as §6 requires:")
        for problem in exc.problems:
            print(f"  - {problem}")

    # 4. The categorical extension: vote on door states.
    door_spec = VotingSpec.from_dict(
        {
            "algorithm_name": "door-state",
            "history": "ME",
            "collation": "WEIGHTED_MAJORITY",
            "value_type": "CATEGORICAL",
        }
    )
    door_voter = build_voter(door_spec)
    print("\nCategorical voting on door states (sensor E3 always lies):")
    for number in range(4):
        outcome = door_voter.vote(
            Round.from_values(number, ["closed", "closed", "open"])
        )
        print(
            f"  round {number}: output={outcome.value!r} "
            f"eliminated={outcome.eliminated}"
        )
    print("  -> the lying sensor's record decays and it is eliminated.")


if __name__ == "__main__":
    main()
