#!/usr/bin/env python3
"""Voter service demo: VDX-configured fusion over the network.

Starts the voter-service prototype (the paper's §8 future work) in this
process, then drives it from three "sensor gateway" client threads that
submit their modules' readings independently — the service votes each
round as soon as the roster completes, exactly like the edge node in
the paper's deployments would.

Run:  python examples/voter_service.py
"""

import threading
import time

from repro.service import VoterClient, VoterServer
from repro.vdx import AVOC_SPEC

READINGS = {
    "E1": [18.02, 18.00, 18.05, 18.01],
    "E2": [18.11, 18.14, 18.09, 18.12],
    "E3": [17.88, 17.91, 17.86, 17.90],
    "E4": [24.08, 24.11, 24.02, 24.05],  # faulty: +6 kilolumen
    "E5": [18.05, 18.03, 18.08, 18.04],
}


def gateway(host: str, port: int, module: str, values) -> None:
    """One sensor gateway: submits its module's reading per round."""
    with VoterClient(host, port) as client:
        for round_number, value in enumerate(values, start=1):
            client.submit(round_number, module, value)
            time.sleep(0.01)


def main() -> None:
    with VoterServer(AVOC_SPEC) as server:
        host, port = server.address
        print(f"voter service listening on {host}:{port}\n")

        # Round 0 is voted directly to establish the roster.
        with VoterClient(host, port) as client:
            result = client.vote(0, {m: v[0] for m, v in READINGS.items()})
            print(
                f"round 0: value={result['value']} "
                f"excluded={result['excluded'] or result['eliminated']} "
                f"bootstrap={result['used_bootstrap']}"
            )

            # Rounds 1-3 arrive module by module from gateway threads.
            threads = [
                threading.Thread(
                    target=gateway, args=(host, port, module, values[1:])
                )
                for module, values in READINGS.items()
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            stats = client.stats()
            print(f"\nservice stats: {stats['rounds_processed']} rounds voted, "
                  f"last value {stats['last_value']}")
            print("history records:", client.history())
            print(
                "\nThe faulty E4 was excluded at round 0 by the clustering "
                "bootstrap and stayed excluded — over the network, with "
                "per-module submissions from independent clients."
            )


if __name__ == "__main__":
    main()
