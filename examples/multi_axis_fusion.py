#!/usr/bin/env python3
"""Multi-dimensional fusion: the §5 generalisation in action.

An environmental monitoring station carries six redundant sensor pods,
each reporting a (temperature, humidity, pressure) vector.  Pod P6 is
*consistently slightly off on every axis* — each axis individually is
within the agreement margin, so per-dimension voting alone cannot see
it.  Whitened vector-level clustering (the §5 generalisation of the
AVOC bootstrap) catches the correlated error; per-dimension AVOC then
handles the remaining per-axis fault on pod P3's pressure channel.

Run:  python examples/multi_axis_fusion.py
"""

import numpy as np

from repro.analysis.report import render_table
from repro.fusion.vector import VectorFusion
from repro.voting.avoc import AvocVoter

TRUTH = (21.5, 55.0, 1013.0)  # °C, %RH, hPa
DIMENSIONS = ("temperature", "humidity", "pressure")


def pod_readings(rng, round_number):
    """One round of vector readings from six pods."""
    vectors = {}
    for i in range(6):
        noise = rng.normal(0.0, [0.05, 0.3, 0.4])
        vectors[f"P{i+1}"] = [t + n for t, n in zip(TRUTH, noise)]
    # P6: correlated miscalibration, ~1.5 agreement margins per axis.
    vectors["P6"] = [
        vectors["P6"][0] + 1.6,
        vectors["P6"][1] + 4.2,
        vectors["P6"][2] + 77.0,
    ]
    # P3: pressure channel broken outright from round 2 on.
    if round_number >= 2:
        vectors["P3"][2] = 850.0
    return vectors


def run_station(clustering: str):
    rng = np.random.default_rng(7)
    fusion = VectorFusion(
        AvocVoter, DIMENSIONS, clustering=clustering, error=0.05
    )
    rows = []
    for number in range(8):
        result = fusion.vote(number, pod_readings(rng, number))
        eliminated = sorted(
            {m for o in result.outcomes.values() for m in o.eliminated}
        )
        rows.append(
            [
                number,
                *(round(float(v), 2) for v in result.value),
                ",".join(result.pruned) or "-",
                ",".join(eliminated) or "-",
            ]
        )
    return rows


def main() -> None:
    header = ["round", *DIMENSIONS, "vector-pruned", "axis-eliminated"]

    print("With the §5 vector-clustering prefilter (whitened agreement):")
    print(render_table(header, run_station("agreement")))
    print(
        "\n-> P6's correlated miscalibration (sub-margin on every axis) is "
        "caught at the vector level; P3 becomes a joint outlier too once "
        "its pressure channel breaks, so the whole pod is pruned."
    )

    print("\nWithout the prefilter (per-dimension AVOC only, AVOC's own "
          "§5 choice):")
    print(render_table(header, run_station("none")))
    print(
        "\n-> per-dimension voting keeps P3's healthy temperature/humidity "
        "axes and eliminates only its pressure channel — but P6's "
        "correlated error is invisible per axis and quietly skews each "
        "dimension's pool.  The two layers are complementary, which is "
        "exactly why §5 sketches both."
    )


if __name__ == "__main__":
    main()
