#!/usr/bin/env python3
"""Smart shelf: categorical voting over dozens of proximity sensors.

The paper's introduction motivates high redundancy with smart shopping
shelves watched by dozens of proximity sensors.  This example runs that
scenario through the VDX categorical mode: 24 sensors report a shelf
slot's occupancy state, three of them are defective (barely better than
a coin flip), and the weighted-majority voter with Me history learns to
ignore them.

Run:  python examples/smart_shelf.py
"""

from repro.analysis.report import render_table
from repro.datasets.shelf import ShelfConfig, generate_shelf_dataset
from repro.types import Round
from repro.vdx import VotingSpec, build_voter


def main() -> None:
    config = ShelfConfig(n_rounds=500, n_sensors=24, n_defective=3)
    dataset = generate_shelf_dataset(config)
    print(
        f"Shelf slot watched by {config.n_sensors} proximity sensors "
        f"({config.n_defective} defective at "
        f"{config.defective_accuracy:.0%} accuracy), "
        f"{config.n_rounds} rounds."
    )

    spec = VotingSpec.from_dict(
        {
            "algorithm_name": "shelf-occupancy",
            "history": "ME",
            "collation": "WEIGHTED_MAJORITY",
            "value_type": "CATEGORICAL",
        }
    )
    voter = build_voter(spec)

    outputs = []
    for number in range(dataset.n_rounds):
        voting_round = Round.from_mapping(number, dataset.round_values(number))
        outputs.append(voter.vote(voting_round).value)

    fused_accuracy = dataset.accuracy_of(outputs)

    # Compare against the best and worst single sensor.
    def sensor_accuracy(module):
        idx = dataset.modules.index(module)
        pairs = [
            (row[idx], truth)
            for row, truth in zip(dataset.readings, dataset.truth)
            if row[idx] is not None
        ]
        return sum(1 for r, t in pairs if r == t) / len(pairs)

    accuracies = {m: sensor_accuracy(m) for m in dataset.modules}
    best = max(accuracies, key=accuracies.get)
    worst = min(accuracies, key=accuracies.get)
    rows = [
        ["fused (VDX categorical, Me history)", f"{fused_accuracy:.1%}"],
        [f"best single sensor ({best})", f"{accuracies[best]:.1%}"],
        [f"worst single sensor ({worst})", f"{accuracies[worst]:.1%}"],
    ]
    print()
    print(render_table(["source", "occupancy accuracy"], rows))

    records = voter.history.snapshot()
    defective = config.defective_modules()
    print("\nHistory records after the run (defective sensors flagged):")
    flagged = [
        [m, round(records[m], 3), "DEFECTIVE" if m in defective else ""]
        for m in sorted(records, key=records.get)[:6]
    ]
    print(render_table(["sensor", "record", ""], flagged))
    print(
        "\nThe defective minority sinks to the bottom of the history "
        "records and is zero-weighted by Me — no numeric margins needed."
    )


if __name__ == "__main__":
    main()
