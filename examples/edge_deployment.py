#!/usr/bin/env python3
"""Simulated edge deployment: the paper's Fig. 1 topology, end to end.

Five light sensors stream through a hub over a lossy WiFi link to a
voting sink running AVOC (the 'shoe-box' demonstrator of Fig. 2, minus
the cardboard).  Readings lost in transit arrive nowhere and become the
§7 missing-value fault scenario; the sink's deadline closes rounds with
partial data and the fusion engine's fault policy fills the gaps.

Run:  python examples/edge_deployment.py
"""

import numpy as np

from repro.analysis.report import render_series, render_table
from repro.simulation import run_uc1_simulation


def main() -> None:
    print("Simulating the Fig. 1 deployment at three WiFi loss rates ...\n")
    rows = []
    outputs = {}
    for loss in (0.0, 0.05, 0.30):
        report = run_uc1_simulation(algorithm="avoc", rounds=400, wifi_loss=loss)
        fused = report.outputs
        outputs[f"loss={loss:.0%}"] = fused
        finite = fused[~np.isnan(fused)]
        rows.append(
            [
                f"{loss:.0%}",
                f"{report.link_stats['wifi']['loss_rate']:.1%}",
                report.rounds_degraded,
                round(float(finite.mean()), 3),
                round(float(finite.std()), 3),
            ]
        )
    print(render_table(
        ["configured loss", "observed loss", "degraded rounds",
         "mean output (klm)", "output std"],
        rows,
    ))

    print("\nFused output under increasing loss:")
    print(render_series(outputs))

    print(
        "\nEven at 30% transport loss the voting sink keeps producing a "
        "stable fused light level: lost readings become missing values, "
        "minority gaps are voted around, majority gaps hold the last "
        "accepted value."
    )


if __name__ == "__main__":
    main()
