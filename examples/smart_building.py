#!/usr/bin/env python3
"""UC-1: smart-building sunlight detection with a faulty sensor.

Recreates the paper's first case study end-to-end: generate the
10'000-round reference dataset (scaled down here for speed), inject the
+6 kilolumen fault into sensor E4, run every voting algorithm over both
recordings, and report which algorithms mask the fault and how fast.

Run:  python examples/smart_building.py [rounds]
"""

import sys

import numpy as np

from repro.analysis.report import render_series, render_table
from repro.datasets.light_uc1 import UC1Config
from repro.experiments import FIG6_ALGORITHMS, run_fig6


def main(n_rounds: int = 2000) -> None:
    print(f"Generating UC-1 dataset ({n_rounds} rounds, 5 sensors) ...")
    result = run_fig6(UC1Config(n_rounds=n_rounds))

    print("\nRaw sensor data (kilolumen):")
    print(render_series({m: result.clean.column(m) for m in result.clean.modules}))

    print("\nSame data with sensor E4 reading +6 kilolumen:")
    print(render_series({m: result.faulty.column(m) for m in result.faulty.modules}))

    print("\nError-injection effect per algorithm (fault vote − clean vote):")
    print(render_series(result.diffs))

    rows = []
    for algorithm in FIG6_ALGORITHMS:
        diff = result.diffs[algorithm]
        rows.append(
            [
                algorithm,
                round(float(diff[0]), 3),
                round(float(np.nanmean(np.abs(diff[-200:]))), 3),
                result.exclusion_rounds[algorithm]
                if result.exclusion_rounds[algorithm] < n_rounds
                else "never",
            ]
        )
    print("\nSummary:")
    print(
        render_table(
            ["algorithm", "round-0 skew", "residual |skew|", "E4 excluded from"],
            rows,
        )
    )
    print(
        f"\nAVOC converges {result.boost:.1f}x faster than plain Hybrid "
        "(the paper's 4x bootstrap boost)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
