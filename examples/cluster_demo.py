#!/usr/bin/env python3
"""Sharded fusion cluster demo: kill a backend mid-run, lose nothing.

Starts a 3-shard, 2-replica ``FusionCluster`` in this process, routes a
faulty-sensor workload through the gateway, and kills the primary
backend of the series halfway through.  Because every series is
replicated on two deterministic voting engines, the gateway keeps
answering from the surviving replica — every round is answered, and
every fused value is bit-identical to a single uninterrupted engine.
The supervisor then restarts the dead backend in the background.

Run:  python examples/cluster_demo.py
"""

import time

import numpy as np

from repro.cluster import FusionCluster
from repro.vdx import AVOC_SPEC, build_engine

MODULES = ["E1", "E2", "E3", "E4", "E5"]
N_ROUNDS = 200
KILL_AT = 100
SERIES = "greenhouse-7"


def make_readings(rng):
    """Per-round readings: E4 is faulty (+6 offset), as in Fig. 6."""
    matrix = 18.0 + 0.1 * rng.standard_normal((N_ROUNDS, len(MODULES)))
    matrix[:, 3] += 6.0
    return matrix


def main() -> None:
    rng = np.random.default_rng(11)
    readings = make_readings(rng)

    # The ground truth to diff against: one engine, never interrupted.
    reference = build_engine(AVOC_SPEC)
    expected = reference.process_batch(readings, MODULES).values

    with FusionCluster(AVOC_SPEC, n_shards=3, replicas=2) as cluster:
        host, port = cluster.address
        print(f"cluster gateway listening on {host}:{port}")
        with cluster.client() as client:
            route = client.route(SERIES)
            victim = route["replicas"][0]
            print(
                f"series {SERIES!r} lives on replicas "
                f"{route['replicas']} — will kill {victim!r} "
                f"at round {KILL_AT}\n"
            )

            answered = 0
            mismatches = 0
            for i in range(N_ROUNDS):
                if i == KILL_AT:
                    cluster.backends[victim].kill()
                    print(f"round {i}: killed backend {victim!r}")
                result = client.vote(
                    i, dict(zip(MODULES, readings[i].tolist())),
                    series=SERIES,
                )
                answered += 1
                want = expected[i]
                want = None if np.isnan(want) else float(want)
                if result["value"] != want:
                    mismatches += 1

            print(
                f"\n{answered}/{N_ROUNDS} rounds answered, "
                f"{mismatches} values diverged from the single-engine run"
            )

            # The supervisor notices the dead backend and restarts it.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = client.cluster_stats()
                if stats["backends"][victim]["alive"]:
                    break
                time.sleep(0.2)
            state = "restarted" if stats["backends"][victim]["alive"] \
                else "still down"
            print(f"backend {victim!r}: {state}")

    assert answered == N_ROUNDS and mismatches == 0


if __name__ == "__main__":
    main()
