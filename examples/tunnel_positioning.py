#!/usr/bin/env python3
"""UC-2: tracking a cargo vehicle in a tunnel with BLE beacon stacks.

Recreates the paper's second case study: a robot drives 15 m between
two stacks of nine BLE beacons, measuring RSSI per beacon with heavy
fading and missing values.  The positioning question each round is
"which stack is the vehicle closest to?" — answered here with three
fusion strategies of increasing quality.

Run:  python examples/tunnel_positioning.py
"""

from repro.analysis.ambiguity import closest_stack_series
from repro.analysis.report import render_series, render_table
from repro.datasets.ble_uc2 import UC2Config
from repro.experiments import run_fig7


def main() -> None:
    config = UC2Config()
    print(
        f"Robot traverse: {config.track_length_m} m at "
        f"{config.robot_speed_mps} m/s, {config.n_rounds} measurement "
        f"rounds, 2 stacks x {config.beacons_per_stack} beacons."
    )
    result = run_fig7(config)

    print("\nSingle beacon per stack (no redundancy):")
    print(render_series(result.single_beacon))
    print("\n9-beacon average per stack:")
    print(render_series(result.nine_average))
    print("\n9-beacon AVOC voting per stack:")
    print(render_series(result.avoc_voting))

    rows = []
    for label, panel in (
        ("single beacon", "single_beacon"),
        ("9-beacon average", "nine_average"),
        ("9-beacon AVOC", "avoc_voting"),
    ):
        rows.append(
            [
                label,
                result.instability(panel),
                f"{result.accuracy(panel):.1%}",
            ]
        )
    print("\nPositioning quality (297 rounds):")
    print(render_table(["fusion", "unstable closest-stack calls", "accuracy"], rows))

    # Show the actual positioning decisions around the crossover.
    calls = closest_stack_series(
        result.nine_average["A"], result.nine_average["B"]
    )
    mid = len(calls) // 2
    window = "".join(calls[mid - 30 : mid + 30])
    print(f"\nClosest-stack calls around mid-track (averaged fusion):\n  {window}")
    truth = result.dataset.true_closest()
    print(f"  ground truth:\n  {''.join(truth[mid - 30: mid + 30])}")
    print(
        "\nTakeaway (the paper's Q3): on chaotic RSSI data the collation "
        "method dominates — smoothing/averaging beats value selection, and "
        "history records add nothing."
    )


if __name__ == "__main__":
    main()
