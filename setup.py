"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools
lacks the PEP 517 editable-wheel path (no ``wheel`` package installed).
"""

from setuptools import setup

setup()
