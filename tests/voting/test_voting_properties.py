"""Property-based tests (hypothesis) for the voting primitives."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.types import Round
from repro.voting.agreement import (
    agreement_scores,
    binary_agreement_matrix,
    dynamic_margin,
    soft_agreement_matrix,
)
from repro.voting.collation import (
    mean_nearest_neighbour,
    weighted_mean,
    weighted_median,
)
from repro.voting.history import HistoryRecords
from repro.voting.registry import create_voter

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(finite_floats, min_size=1, max_size=12)
weight_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=1, max_size=12
)


class TestAgreementProperties:
    @given(values=value_lists, error=st.floats(min_value=1e-6, max_value=1.0))
    def test_binary_matrix_symmetric_unit_diagonal(self, values, error):
        margin = dynamic_margin(values, error)
        m = binary_agreement_matrix(values, margin)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 1.0)

    @given(
        values=value_lists,
        error=st.floats(min_value=1e-6, max_value=1.0),
        k=st.floats(min_value=1.0, max_value=10.0),
    )
    def test_soft_matrix_bounded_and_dominates_binary(self, values, error, k):
        margin = dynamic_margin(values, error)
        soft = soft_agreement_matrix(values, margin, k)
        binary = binary_agreement_matrix(values, margin)
        assert np.all(soft >= binary - 1e-12)
        assert np.all(soft <= 1.0) and np.all(soft >= 0.0)

    @given(values=value_lists)
    def test_scores_in_unit_interval(self, values):
        margin = dynamic_margin(values, 0.05)
        scores = agreement_scores(binary_agreement_matrix(values, margin))
        assert np.all(scores >= 0.0) and np.all(scores <= 1.0)


class TestCollationProperties:
    @given(values=value_lists)
    def test_weighted_mean_within_value_range(self, values):
        result = weighted_mean(values)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(st.data())
    def test_mnn_returns_a_candidate(self, data):
        values = data.draw(value_lists)
        weights = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=len(values),
                max_size=len(values),
            )
        )
        result = mean_nearest_neighbour(values, weights)
        assert result in values

    @given(values=value_lists)
    def test_median_is_a_candidate(self, values):
        assert weighted_median(values) in values


class TestHistoryProperties:
    @given(
        scores=st.lists(
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=1,
            ),
            min_size=1,
            max_size=20,
        ),
        policy=st.sampled_from(["additive", "ema"]),
    )
    def test_records_stay_in_unit_interval(self, scores, policy):
        records = HistoryRecords(policy=policy)
        for round_scores in scores:
            records.update(round_scores)
        for value in records.snapshot().values():
            assert 0.0 <= value <= 1.0


class TestVoterProperties:
    @settings(deadline=None, max_examples=40)
    @given(
        values=st.lists(
            st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
            min_size=2,
            max_size=9,
        ),
        algorithm=st.sampled_from(
            ["average", "median", "standard", "me", "sdt", "hybrid",
             "clustering", "avoc", "mlv"]
        ),
    )
    def test_output_within_candidate_range(self, values, algorithm):
        voter = create_voter(algorithm)
        outcome = voter.vote(Round.from_values(0, values))
        assert min(values) - 1e-9 <= outcome.value <= max(values) + 1e-9

    @settings(deadline=None, max_examples=30)
    @given(
        rounds=st.lists(
            st.lists(
                st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
                min_size=3,
                max_size=3,
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_avoc_never_crashes_and_history_bounded(self, rounds):
        voter = create_voter("avoc")
        for i, values in enumerate(rounds):
            outcome = voter.vote(Round.from_values(i, values))
            assert outcome.value is not None
        for record in voter.history.snapshot().values():
            assert 0.0 <= record <= 1.0
