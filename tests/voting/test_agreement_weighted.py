"""Tests for the agreement-weighted average (AWA) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.diff import run_voter_series
from repro.voting.agreement_weighted import AgreementWeightedVoter
from repro.voting.clustering_voter import ClusteringOnlyVoter
from repro.voting.registry import create_voter

FAULTY = [18.0, 18.1, 17.9, 24.0, 18.05]


class TestStatelessness:
    def test_repeated_rounds_identical_output(self):
        voter = AgreementWeightedVoter()
        first = voter.vote_values(FAULTY).value
        second = voter.vote_values(FAULTY, round_number=1).value
        assert first == second

    def test_history_not_accumulated(self):
        voter = AgreementWeightedVoter()
        for i in range(5):
            voter.vote_values(FAULTY, round_number=i)
        assert voter.history.update_count == 0

    def test_registered(self):
        assert create_voter("awa").name == "awa"
        assert create_voter("agreement-weighted").name == "awa"


class TestWeighting:
    def test_far_outlier_gets_zero_weight(self):
        outcome = AgreementWeightedVoter().vote_values(FAULTY)
        assert outcome.weights["E4"] == 0.0
        assert outcome.agreement["E4"] == 0.0
        healthy_mean = np.mean([v for i, v in enumerate(FAULTY) if i != 3])
        assert outcome.value == pytest.approx(healthy_mean, abs=0.01)

    def test_soft_zone_outlier_attenuated_not_removed(self):
        # With a wide soft zone (k=4), a moderate outlier keeps a
        # partial weight: the output sits between the plain mean and
        # the healthy-only mean.
        params = AgreementWeightedVoter.default_params().with_overrides(
            soft_threshold=4.0
        )
        values = [10.0, 10.05, 9.95, 11.2]
        outcome = AgreementWeightedVoter(params).vote_values(values)
        plain_mean = np.mean(values)
        healthy_mean = np.mean(values[:3])
        assert 0.0 < outcome.weights["E4"] < 1.0
        assert healthy_mean < outcome.value < plain_mean

    def test_clean_data_matches_plain_mean(self):
        values = [5.0, 5.01, 4.99]
        outcome = AgreementWeightedVoter().vote_values(values)
        assert outcome.value == pytest.approx(np.mean(values))


class TestPaperComparison:
    def test_cov_significantly_outperforms_plain_average(self, uc1_small,
                                                         uc1_small_faulty):
        """§7: clustering-only voting 'significantly outperforms other
        stateless approach, i.e., weighted average without history' —
        with uniform weights that is the plain average."""
        from repro.voting.stateless import MeanVoter

        clean = uc1_small.slice(0, 200)
        faulty = uc1_small_faulty.slice(0, 200)

        def masked_error(voter):
            clean_out = run_voter_series(voter, clean)
            voter.reset()
            fault_out = run_voter_series(voter, faulty)
            return float(np.nanmean(np.abs(fault_out - clean_out)))

        mean_error = masked_error(MeanVoter())
        cov_error = masked_error(ClusteringOnlyVoter())
        awa_error = masked_error(AgreementWeightedVoter())
        assert cov_error < mean_error / 5
        # Instantaneous agreement weighting also beats uniform weights
        # (and on this far fault matches COV).
        assert awa_error <= mean_error
