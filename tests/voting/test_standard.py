"""Tests for the Standard history-based weighted average voter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.types import Round
from repro.voting.standard import StandardVoter


class TestFirstRound:
    def test_falls_back_to_plain_average(self):
        # §5: history voters fall back to standard average on the first
        # round — fresh records are all 1, so the weighted mean is the
        # plain mean.
        outcome = StandardVoter().vote_values([10.0, 20.0, 30.0])
        assert outcome.value == pytest.approx(20.0)


class TestFaultDynamics:
    def _run(self, voter, values, rounds):
        outs = []
        for i in range(rounds):
            outs.append(voter.vote(Round.from_values(i, values)).value)
        return np.asarray(outs)

    def test_disagreer_record_decays(self):
        voter = StandardVoter()
        values = [18.0, 18.1, 17.9, 24.0, 18.05]
        self._run(voter, values, 50)
        records = voter.history.snapshot()
        assert records["E4"] < records["E1"]

    def test_skew_decays_slowly_but_monotonically(self):
        # The paper: Standard's skew is "slowly mitigated" and not
        # eliminated even after many rounds.
        voter = StandardVoter()
        values = [18.0, 18.1, 17.9, 24.0, 18.05]
        outs = self._run(voter, values, 2000)
        clean_mean = np.mean([18.0, 18.1, 17.9, 18.05])
        skew = outs - clean_mean
        assert skew[0] == pytest.approx(1.21, abs=0.05)
        assert skew[-1] < skew[0]  # decaying
        assert skew[-1] > 0.2  # but far from eliminated after 2000 rounds

    def test_no_module_elimination(self):
        voter = StandardVoter()
        values = [18.0, 18.1, 17.9, 24.0, 18.05]
        outcome = None
        for i in range(10):
            outcome = voter.vote(Round.from_values(i, values))
        # E4's weight decays but stays positive; it is never zeroed.
        assert outcome.weights["E4"] > 0.0

    def test_agreeing_modules_keep_full_weight(self):
        voter = StandardVoter()
        for i in range(20):
            outcome = voter.vote(Round.from_values(i, [5.0, 5.0, 5.0]))
        assert all(w == pytest.approx(1.0) for w in outcome.weights.values())
