"""Tests for categorical distance metrics."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.voting.categorical import CategoricalMajorityVoter
from repro.voting.distances import (
    exact,
    json_blob_distance,
    levenshtein,
    normalized_levenshtein,
    token_jaccard,
)


class TestExact:
    def test_equal(self):
        assert exact("a", "a") == 0.0
        assert exact(1, 1.0) == 0.0

    def test_unequal(self):
        assert exact("a", "b") == 1.0


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xy", 2),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("open", "opened", 2),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @given(st.text(max_size=15), st.text(max_size=15))
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=15))
    def test_identity(self, a):
        assert levenshtein(a, a) == 0.0

    @settings(max_examples=40)
    @given(st.text(max_size=10), st.text(max_size=10), st.text(max_size=10))
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestNormalizedLevenshtein:
    def test_in_unit_interval(self):
        assert normalized_levenshtein("abc", "xyz") == 1.0
        assert normalized_levenshtein("", "") == 0.0
        assert 0.0 < normalized_levenshtein("open", "opened") < 1.0

    @given(st.text(max_size=15), st.text(max_size=15))
    def test_bounded(self, a, b):
        assert 0.0 <= normalized_levenshtein(a, b) <= 1.0


class TestTokenJaccard:
    def test_identical_token_sets(self):
        assert token_jaccard("door open now", "now open door") == 0.0

    def test_disjoint(self):
        assert token_jaccard("a b", "c d") == 1.0

    def test_partial_overlap(self):
        assert token_jaccard("a b c", "b c d") == pytest.approx(0.5)

    def test_empty_strings(self):
        assert token_jaccard("", "") == 0.0


class TestJsonBlobDistance:
    def test_identical_documents(self):
        assert json_blob_distance('{"a": 1}', '{"a":1}') == 0.0

    def test_key_order_irrelevant(self):
        assert json_blob_distance('{"a":1,"b":2}', '{"b":2,"a":1}') == 0.0

    def test_one_leaf_of_two_differs(self):
        d = json_blob_distance('{"a":1,"b":2}', '{"a":1,"b":3}')
        assert d == pytest.approx(0.5)

    def test_missing_key_counts(self):
        d = json_blob_distance('{"a":1}', '{"a":1,"b":2}')
        assert d == pytest.approx(0.5)

    def test_nested_structures(self):
        a = '{"state": {"door": "open", "lock": true}}'
        b = '{"state": {"door": "open", "lock": false}}'
        assert json_blob_distance(a, b) == pytest.approx(0.5)

    def test_lists_compared_positionally(self):
        assert json_blob_distance("[1, 2, 3]", "[1, 2, 4]") == pytest.approx(1 / 3)

    def test_non_json_falls_back_to_edit_distance(self):
        assert json_blob_distance("not json", "not json") == 0.0
        assert 0.0 < json_blob_distance("not json{", "also not [") <= 1.0


class TestVoterIntegration:
    def test_fuzzy_string_voting(self):
        voter = CategoricalMajorityVoter(
            distance=normalized_levenshtein, tolerance=0.25
        )
        voter.vote_values(["opened", "opend", "opened", "closed"])
        # "opend" (typo) is within tolerance of the winner "opened":
        # its record is not penalised; "closed" is.
        assert voter.history.get("E2") == 1.0
        assert voter.history.get("E4") < 1.0

    def test_json_blob_voting(self):
        blob = '{"door": "open", "battery": %d}'
        voter = CategoricalMajorityVoter(
            distance=json_blob_distance, tolerance=0.6
        )
        values = [blob % 97, blob % 97, blob % 96, '{"door": "closed"}']
        outcome = voter.vote_values(values)
        assert json.loads(outcome.value)["door"] == "open"
        # The near-identical blob agrees under the metric; the
        # contradictory one does not.
        assert voter.history.get("E3") == 1.0
        assert voter.history.get("E4") < 1.0
