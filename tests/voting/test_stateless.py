"""Tests for the stateless voters."""

from __future__ import annotations

import pytest

from repro.exceptions import EmptyRoundError
from repro.types import Round
from repro.voting.stateless import (
    CollationVoter,
    MeanVoter,
    MedianVoter,
    PluralityVoter,
)


class TestMeanVoter:
    def test_plain_average(self):
        outcome = MeanVoter().vote_values([1.0, 2.0, 3.0])
        assert outcome.value == pytest.approx(2.0)

    def test_outlier_fully_skews_output(self):
        # The paper's motivation: plain averaging cannot mask a fault.
        clean = MeanVoter().vote_values([18.0, 18.0, 18.0, 18.0, 18.0]).value
        faulty = MeanVoter().vote_values([18.0, 18.0, 18.0, 24.0, 18.0]).value
        assert faulty - clean == pytest.approx(1.2)

    def test_ignores_missing(self):
        outcome = MeanVoter().vote(Round.from_mapping(0, {"a": 2.0, "b": None}))
        assert outcome.value == 2.0

    def test_empty_round_raises(self):
        with pytest.raises(EmptyRoundError):
            MeanVoter().vote(Round.from_mapping(0, {}))

    def test_is_stateless(self):
        voter = MeanVoter()
        assert not voter.stateful
        first = voter.vote_values([5.0, 7.0]).value
        second = voter.vote_values([5.0, 7.0]).value
        assert first == second


class TestMedianVoter:
    def test_median_masks_minority_outlier(self):
        outcome = MedianVoter().vote_values([18.0, 18.1, 17.9, 24.0, 18.05])
        assert outcome.value == pytest.approx(18.05)

    def test_name(self):
        assert MedianVoter().name == "median"


class TestCollationVoter:
    def test_generic_mnn(self):
        voter = CollationVoter("MEAN_NEAREST_NEIGHBOR")
        outcome = voter.vote_values([1.0, 2.0, 9.0])
        assert outcome.value == 2.0

    def test_name_reflects_collation(self):
        assert CollationVoter("MEDIAN").name == "stateless_median"


class TestPluralityVoter:
    def test_majority(self):
        outcome = PluralityVoter().vote_values(["up", "up", "down"])
        assert outcome.value == "up"

    def test_tie_breaks_toward_previous_output(self):
        voter = PluralityVoter()
        voter.vote_values(["b", "b", "a"])  # previous output: b
        outcome = voter.vote_values(["a", "b"])  # tie
        assert outcome.value == "b"

    def test_reset_clears_tie_break(self):
        voter = PluralityVoter()
        voter.vote_values(["b", "b"])
        voter.reset()
        from repro.exceptions import NoMajorityError

        with pytest.raises(NoMajorityError):
            voter.vote_values(["a", "b"])

    def test_tallies_in_diagnostics(self):
        outcome = PluralityVoter().vote_values(["x", "x", "y"])
        assert outcome.diagnostics["tallies"] == {"x": 2.0, "y": 1.0}
