"""Tests for per-module history records."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.history.memory import MemoryHistoryStore
from repro.voting.history import HistoryRecords


class TestConstruction:
    def test_defaults(self):
        records = HistoryRecords()
        assert records.get("anything") == 1.0
        assert records.update_count == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            HistoryRecords(policy="bogus")

    def test_bad_initial_rejected(self):
        with pytest.raises(ConfigurationError):
            HistoryRecords(initial=1.5)

    def test_negative_reward_rejected(self):
        with pytest.raises(ConfigurationError):
            HistoryRecords(reward=-0.1)

    def test_bad_learning_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            HistoryRecords(policy="ema", learning_rate=0.0)


class TestAdditivePolicy:
    def test_full_agreement_rewards(self):
        records = HistoryRecords(policy="additive", reward=0.1, penalty=0.2,
                                 initial=0.5)
        records.update({"a": 1.0})
        assert records.get("a") == pytest.approx(0.6)

    def test_full_disagreement_penalises(self):
        records = HistoryRecords(policy="additive", reward=0.1, penalty=0.2)
        records.update({"a": 0.0})
        assert records.get("a") == pytest.approx(0.8)

    def test_clamped_to_unit_interval(self):
        records = HistoryRecords(policy="additive", reward=0.5, penalty=0.5)
        records.update({"a": 1.0})
        assert records.get("a") == 1.0
        for _ in range(10):
            records.update({"a": 0.0})
        assert records.get("a") == 0.0

    def test_partial_score_mixes_reward_and_penalty(self):
        records = HistoryRecords(policy="additive", reward=0.1, penalty=0.2,
                                 initial=0.5)
        records.update({"a": 0.5})
        # delta = 0.1*0.5 - 0.2*0.5 = -0.05
        assert records.get("a") == pytest.approx(0.45)


class TestEmaPolicy:
    def test_moves_toward_score(self):
        records = HistoryRecords(policy="ema", learning_rate=0.5)
        records.update({"a": 0.0})
        assert records.get("a") == pytest.approx(0.5)
        records.update({"a": 0.0})
        assert records.get("a") == pytest.approx(0.25)

    def test_stays_at_extreme_when_agreeing(self):
        records = HistoryRecords(policy="ema", learning_rate=0.3)
        records.update({"a": 1.0})
        assert records.get("a") == 1.0


class TestUpdateSemantics:
    def test_absent_modules_untouched(self):
        records = HistoryRecords(policy="ema", learning_rate=0.5)
        records.update({"a": 0.0, "b": 1.0})
        before = records.get("b")
        records.update({"a": 0.0})
        assert records.get("b") == before

    def test_scores_clamped(self):
        records = HistoryRecords(policy="ema", learning_rate=1.0)
        records.update({"a": 5.0})
        assert records.get("a") == 1.0
        records.update({"a": -3.0})
        assert records.get("a") == 0.0

    def test_update_count_increments(self):
        records = HistoryRecords()
        records.update({"a": 1.0})
        records.update({"a": 1.0})
        assert records.update_count == 2

    def test_seed_overwrites(self):
        records = HistoryRecords()
        records.seed({"a": 0.0, "b": 1.0})
        assert records.get("a") == 0.0
        assert records.update_count == 1

    def test_seed_without_counting(self):
        records = HistoryRecords()
        records.seed({"a": 0.3}, count_as_update=False)
        assert records.update_count == 0

    def test_reset(self):
        records = HistoryRecords()
        records.update({"a": 0.0})
        records.reset()
        assert records.get("a") == 1.0
        assert records.update_count == 0
        assert len(records) == 0


class TestPredicates:
    def test_all_fresh(self):
        records = HistoryRecords()
        assert records.all_fresh(["a", "b"])
        records.update({"a": 0.0})
        assert not records.all_fresh(["a", "b"])

    def test_all_failed(self):
        records = HistoryRecords(policy="additive", penalty=1.0)
        records.update({"a": 0.0, "b": 0.0})
        assert records.all_failed(["a", "b"])
        assert not records.all_failed(["a", "b", "c"])  # c is fresh at 1.0

    def test_all_failed_empty_is_false(self):
        assert not HistoryRecords().all_failed([])

    def test_all_failed_tolerance(self):
        records = HistoryRecords()
        records.seed({"a": 0.005})
        assert records.all_failed(["a"], tolerance=0.01)
        assert not records.all_failed(["a"], tolerance=0.001)


class TestWeightsAndElimination:
    def test_weights_are_records(self):
        records = HistoryRecords()
        records.seed({"a": 0.2, "b": 0.9})
        assert records.weights(["a", "b", "c"]) == {"a": 0.2, "b": 0.9, "c": 1.0}

    def test_below_mean(self):
        records = HistoryRecords()
        records.seed({"a": 1.0, "b": 1.0, "c": 0.1})
        assert records.below_mean(["a", "b", "c"]) == ("c",)

    def test_below_mean_equal_records_eliminates_nobody(self):
        records = HistoryRecords()
        assert records.below_mean(["a", "b", "c"]) == ()

    def test_below_mean_empty(self):
        assert HistoryRecords().below_mean([]) == ()


class TestStoreIntegration:
    def test_writes_through_and_reloads(self):
        store = MemoryHistoryStore()
        records = HistoryRecords(store=store)
        records.update({"a": 0.0})
        # A second HistoryRecords attached to the same store sees state.
        revived = HistoryRecords(store=store)
        assert revived.get("a") == records.get("a")

    def test_ensure_materialises_without_saving_values(self):
        records = HistoryRecords()
        records.ensure(["a", "b"])
        assert "a" in records
        assert records.get("a") == 1.0
