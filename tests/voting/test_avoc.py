"""Tests for the AVOC voter (the paper's contribution)."""

from __future__ import annotations

import pytest

from repro.types import Round
from repro.voting.avoc import AvocVoter
from repro.voting.hybrid import HybridVoter

FAULTY = [18.0, 18.1, 17.9, 24.0, 18.05]
HEALTHY = [18.0, 18.1, 17.9, 18.02, 18.05]


class TestBootstrapTrigger:
    def test_bootstraps_on_fresh_records(self):
        outcome = AvocVoter().vote(Round.from_values(0, FAULTY))
        assert outcome.used_bootstrap

    def test_does_not_bootstrap_after_first_round(self):
        voter = AvocVoter()
        voter.vote(Round.from_values(0, FAULTY))
        second = voter.vote(Round.from_values(1, FAULTY))
        assert not second.used_bootstrap

    def test_bootstraps_again_on_total_record_collapse(self):
        voter = AvocVoter()
        voter.vote(Round.from_values(0, HEALTHY))
        # Drive every record to (near) zero: all modules disagree with
        # each other for many rounds.
        spread = [10.0, 30.0, 50.0, 70.0, 90.0]
        bootstrap_seen = False
        for i in range(1, 40):
            outcome = voter.vote(Round.from_values(i, spread))
            if outcome.used_bootstrap:
                bootstrap_seen = True
                break
        assert bootstrap_seen

    def test_mode_never_disables_bootstrap(self):
        params = AvocVoter.default_params().with_overrides(bootstrap_mode="never")
        outcome = AvocVoter(params).vote(Round.from_values(0, FAULTY))
        assert not outcome.used_bootstrap

    def test_mode_always_bootstraps_every_round(self):
        params = AvocVoter.default_params().with_overrides(bootstrap_mode="always")
        voter = AvocVoter(params)
        for i in range(3):
            assert voter.vote(Round.from_values(i, FAULTY)).used_bootstrap


class TestBootstrapEffect:
    def test_first_round_output_excludes_outlier(self):
        # The whole point of AVOC: no startup spike (§5, Fig. 6-f).
        avoc_out = AvocVoter().vote(Round.from_values(0, FAULTY)).value
        hybrid_out = HybridVoter().vote(Round.from_values(0, FAULTY)).value
        healthy_mean = sum(v for i, v in enumerate(FAULTY) if i != 3) / 4
        assert abs(avoc_out - healthy_mean) < abs(hybrid_out - healthy_mean) + 1e-9
        assert avoc_out != 24.0

    def test_history_seeded_from_cluster_membership(self):
        voter = AvocVoter()
        voter.vote(Round.from_values(0, FAULTY))
        records = voter.history.snapshot()
        assert records["E4"] == 0.0
        assert all(records[m] == 1.0 for m in ("E1", "E2", "E3", "E5"))

    def test_outlier_eliminated_from_round_two(self):
        # "the voter already learns to exclude [the outlier] from round
        # 2, returning to its pre-error output almost instantly".
        voter = AvocVoter()
        voter.vote(Round.from_values(0, FAULTY))
        second = voter.vote(Round.from_values(1, FAULTY))
        assert "E4" in second.eliminated
        assert not second.used_bootstrap

    def test_excludes_outlier_strictly_earlier_than_hybrid(self):
        avoc, hybrid = AvocVoter(), HybridVoter()

        def first_exclusion(voter):
            for i in range(10):
                outcome = voter.vote(Round.from_values(i, FAULTY))
                if outcome.weights.get("E4", 1.0) == 0.0:
                    return i
            return 10

        assert first_exclusion(avoc) == 0
        assert first_exclusion(hybrid) >= 3

    def test_bootstraps_used_counter(self):
        voter = AvocVoter()
        assert voter.bootstraps_used == 0
        voter.vote(Round.from_values(0, FAULTY))
        assert voter.bootstraps_used == 1
        voter.reset()
        assert voter.bootstraps_used == 0

    def test_clean_data_bootstrap_matches_consensus(self):
        outcome = AvocVoter().vote(Round.from_values(0, HEALTHY))
        assert outcome.used_bootstrap
        assert outcome.eliminated == ()
        assert outcome.value == pytest.approx(18.02, abs=0.05)
