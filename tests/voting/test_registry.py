"""Tests for the voter registry."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.voting.avoc import AvocVoter
from repro.voting.base import Voter
from repro.voting.registry import available_algorithms, create_voter, register_voter


class TestLookup:
    def test_all_paper_algorithms_registered(self):
        names = available_algorithms()
        for expected in (
            "average",
            "standard",
            "me",
            "sdt",
            "hybrid",
            "clustering",
            "avoc",
            "mlv",
            "median",
            "plurality",
            "categorical_majority",
        ):
            assert expected in names

    def test_case_insensitive(self):
        assert isinstance(create_voter("AVOC"), AvocVoter)

    def test_aliases(self):
        assert create_voter("avg.").name == "average"
        assert create_voter("cov").name == "clustering"
        assert create_voter("strd.").name == "standard"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown voting algorithm"):
            create_voter("quantum")

    def test_params_forwarded(self):
        params = AvocVoter.default_params().with_overrides(error=0.2)
        voter = create_voter("avoc", params=params)
        assert voter.params.error == 0.2

    def test_instances_are_fresh(self):
        a = create_voter("avoc")
        b = create_voter("avoc")
        assert a is not b


class TestRegistration:
    def test_register_and_create_custom(self):
        class Constant(Voter):
            name = "constant42"

            def vote(self, voting_round):
                from repro.types import VoteOutcome

                return VoteOutcome(round_number=voting_round.number, value=42.0)

        register_voter("constant42-test", lambda params=None: Constant())
        voter = create_voter("constant42-test")
        assert voter.vote_values([1.0]).value == 42.0

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_voter("avoc", lambda params=None: None)
