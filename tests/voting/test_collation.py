"""Tests for collation methods."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, NoMajorityError
from repro.voting.collation import (
    collate,
    mean_nearest_neighbour,
    weighted_mean,
    weighted_median,
    weighted_plurality,
)


class TestWeightedMean:
    def test_unweighted(self):
        assert weighted_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_weighted(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_zero_weights_fall_back_to_plain_mean(self):
        assert weighted_mean([1.0, 5.0], [0.0, 0.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [-1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0, 2.0], [1.0])


class TestMeanNearestNeighbour:
    def test_returns_a_candidate_value(self):
        values = [1.0, 2.0, 10.0]
        result = mean_nearest_neighbour(values)
        assert result in values

    def test_picks_value_closest_to_weighted_mean(self):
        # Weighted mean of [0, 10] with weights [1, 3] is 7.5 -> picks 10.
        assert mean_nearest_neighbour([0.0, 10.0], [1.0, 3.0]) == 10.0

    def test_zero_weight_candidates_excluded(self):
        # Weighted mean of [0, 1.2] with weights [1, 2] is 0.8; the
        # zero-weighted 0.7 is closest but ineligible, so 1.2 wins.
        result = mean_nearest_neighbour([0.0, 1.2, 0.7], [1.0, 2.0, 0.0])
        assert result == 1.2

    def test_all_zero_weights_fall_back_to_all_candidates(self):
        result = mean_nearest_neighbour([0.0, 1.0, 4.0], [0.0, 0.0, 0.0])
        # Fallback mean is 5/3; nearest candidate is 1.0.
        assert result == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_nearest_neighbour([])


class TestWeightedMedian:
    def test_odd_unweighted(self):
        assert weighted_median([3.0, 1.0, 2.0]) == 2.0

    def test_is_a_candidate_value(self):
        values = [5.0, 1.0, 9.0, 2.0]
        assert weighted_median(values) in values

    def test_weights_shift_median(self):
        assert weighted_median([1.0, 2.0, 3.0], [5.0, 1.0, 1.0]) == 1.0

    def test_zero_weights_fall_back(self):
        assert weighted_median([1.0, 2.0, 3.0], [0.0, 0.0, 0.0]) == 2.0


class TestWeightedPlurality:
    def test_majority_wins(self):
        winner, tallies = weighted_plurality(["open", "open", "closed"])
        assert winner == "open"
        assert tallies == {"open": 2.0, "closed": 1.0}

    def test_weights_can_flip_result(self):
        winner, _ = weighted_plurality(
            ["open", "open", "closed"], [0.1, 0.1, 1.0]
        )
        assert winner == "closed"

    def test_tie_without_break_raises(self):
        with pytest.raises(NoMajorityError):
            weighted_plurality(["a", "b"])

    def test_tie_break_resolves(self):
        winner, _ = weighted_plurality(["a", "b"], tie_break="b")
        assert winner == "b"

    def test_tie_break_must_be_among_winners(self):
        with pytest.raises(NoMajorityError):
            weighted_plurality(["a", "b"], tie_break="c")

    def test_all_zero_weights_fall_back_to_counts(self):
        winner, _ = weighted_plurality(["a", "a", "b"], [0.0, 0.0, 0.0])
        assert winner == "a"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_plurality([])


class TestCollateDispatch:
    def test_mean(self):
        assert collate("MEAN", [1.0, 3.0]) == 2.0

    def test_case_insensitive(self):
        assert collate("mean", [1.0, 3.0]) == 2.0

    def test_median(self):
        assert collate("MEDIAN", [1.0, 2.0, 9.0]) == 2.0

    def test_mnn(self):
        assert collate("MEAN_NEAREST_NEIGHBOR", [1.0, 2.0, 9.0]) == 2.0

    def test_weighted_majority(self):
        assert collate("WEIGHTED_MAJORITY", ["x", "x", "y"]) == "x"

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            collate("MODE", [1.0])
