"""Tests for the Module Elimination (Me) voter."""

from __future__ import annotations

import pytest

from repro.types import Round
from repro.voting.module_elimination import ModuleEliminationVoter

FAULTY = [18.0, 18.1, 17.9, 24.0, 18.05]


class TestElimination:
    def test_faulty_module_eliminated_in_round_two(self):
        # The paper: "the faulty sensor is quickly eliminated in round 2,
        # as performing below average compared to the rest" (1-indexed;
        # our round index 1).
        voter = ModuleEliminationVoter()
        first = voter.vote(Round.from_values(0, FAULTY))
        assert "E4" not in first.eliminated  # fresh records: no baseline yet
        second = voter.vote(Round.from_values(1, FAULTY))
        assert "E4" in second.eliminated
        assert second.weights["E4"] == 0.0

    def test_output_recovers_after_elimination(self):
        voter = ModuleEliminationVoter()
        voter.vote(Round.from_values(0, FAULTY))
        outcome = voter.vote(Round.from_values(1, FAULTY))
        healthy_mean = sum(v for i, v in enumerate(FAULTY) if i != 3) / 4
        assert outcome.value == pytest.approx(healthy_mean, abs=0.01)

    def test_eliminated_module_history_keeps_updating(self):
        # §4: zero-weighted modules still update their records "by
        # submitting better values, even if discarded in the voting".
        voter = ModuleEliminationVoter()
        voter.vote(Round.from_values(0, FAULTY))
        voter.vote(Round.from_values(1, FAULTY))
        record_while_bad = voter.history.get("E4")
        # E4 heals: submits agreeing values from now on.
        healed = [18.0, 18.1, 17.9, 18.02, 18.05]
        for i in range(2, 30):
            voter.vote(Round.from_values(i, healed))
        assert voter.history.get("E4") > record_while_bad

    def test_healed_module_eventually_reinstated(self):
        voter = ModuleEliminationVoter()
        for i in range(5):
            voter.vote(Round.from_values(i, FAULTY))
        healed = [18.0, 18.1, 17.9, 18.02, 18.05]
        outcome = None
        for i in range(5, 4000):
            outcome = voter.vote(Round.from_values(i, healed))
            if "E4" not in outcome.eliminated:
                break
        assert "E4" not in outcome.eliminated

    def test_no_elimination_on_clean_data(self):
        voter = ModuleEliminationVoter()
        for i in range(10):
            outcome = voter.vote(Round.from_values(i, [5.0, 5.0, 5.0, 5.0]))
        assert outcome.eliminated == ()
