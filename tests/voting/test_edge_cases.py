"""Edge-case battery: every numeric algorithm against degenerate rounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.types import Round
from repro.voting.registry import create_voter

NUMERIC_ALGORITHMS = (
    "average",
    "median",
    "awa",
    "standard",
    "me",
    "sdt",
    "hybrid",
    "clustering",
    "avoc",
    "mlv",
)


@pytest.mark.parametrize("algorithm", NUMERIC_ALGORITHMS)
class TestDegenerateRounds:
    def test_single_module(self, algorithm):
        outcome = create_voter(algorithm).vote_values([42.0])
        assert outcome.value == 42.0

    def test_two_disagreeing_modules(self, algorithm):
        # No majority exists; the output must still be defined and lie
        # within the candidate range.
        outcome = create_voter(algorithm).vote_values([10.0, 30.0])
        assert 10.0 <= outcome.value <= 30.0

    def test_all_identical_values(self, algorithm):
        voter = create_voter(algorithm)
        for i in range(3):
            outcome = voter.vote(Round.from_values(i, [5.5, 5.5, 5.5]))
            assert outcome.value == 5.5

    def test_all_zero_values(self, algorithm):
        # Median-based margin is zero here; the min_margin floor must
        # keep agreement defined.
        outcome = create_voter(algorithm).vote_values([0.0, 0.0, 0.0])
        assert outcome.value == 0.0

    def test_negative_values(self, algorithm):
        # RSSI-style data.
        outcome = create_voter(algorithm).vote_values([-70.0, -71.0, -69.0])
        assert outcome.value == pytest.approx(-70.0, abs=1.0)

    def test_huge_magnitudes(self, algorithm):
        values = [1e9, 1.001e9, 0.999e9]
        outcome = create_voter(algorithm).vote_values(values)
        assert outcome.value == pytest.approx(1e9, rel=0.01)

    def test_tiny_magnitudes(self, algorithm):
        values = [1e-9, 1.1e-9, 0.9e-9]
        outcome = create_voter(algorithm).vote_values(values)
        assert 0.0 < outcome.value < 2e-9

    def test_integer_inputs_accepted(self, algorithm):
        outcome = create_voter(algorithm).vote_values([18, 18, 19])
        assert isinstance(outcome.value, float)

    def test_long_run_history_stays_bounded(self, algorithm):
        voter = create_voter(algorithm)
        rng = np.random.default_rng(0)
        for i in range(200):
            values = list(18.0 + rng.normal(0, 0.5, 4))
            voter.vote(Round.from_values(i, values))
        if getattr(voter, "stateful", False) and hasattr(voter, "history"):
            for record in voter.history.snapshot().values():
                assert 0.0 <= record <= 1.0


class TestMixedSignRounds:
    @pytest.mark.parametrize("algorithm", ("avoc", "clustering", "me"))
    def test_values_straddling_zero(self, algorithm):
        # Median near zero: the dynamic margin collapses to the floor,
        # so nothing agrees — but the vote must still produce a value.
        outcome = create_voter(algorithm).vote_values([-1.0, 0.0, 1.0])
        assert -1.0 <= outcome.value <= 1.0

    def test_outlier_among_negatives(self):
        outcome = create_voter("avoc").vote_values([-70.0, -71.0, -69.0, -20.0])
        assert "E4" in outcome.eliminated
        assert outcome.value == pytest.approx(-70.0, abs=1.5)
