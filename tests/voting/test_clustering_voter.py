"""Tests for Clustering-Only Voting (COV)."""

from __future__ import annotations

import pytest

from repro.types import Round
from repro.voting.base import VoterParams
from repro.voting.clustering_voter import ClusteringOnlyVoter

FAULTY = [18.0, 18.1, 17.9, 24.0, 18.05]


class TestOutlierExclusion:
    def test_outlier_excluded_from_round_one(self):
        # §7: unlike Me, the clustering voter excludes the faulty module
        # "also from the first round" — no history warm-up needed.
        outcome = ClusteringOnlyVoter().vote(Round.from_values(0, FAULTY))
        assert "E4" in outcome.eliminated
        assert outcome.weights["E4"] == 0.0

    def test_output_is_healthy_mean(self):
        outcome = ClusteringOnlyVoter().vote(Round.from_values(0, FAULTY))
        healthy_mean = sum(v for i, v in enumerate(FAULTY) if i != 3) / 4
        assert outcome.value == pytest.approx(healthy_mean)

    def test_statelessness(self):
        voter = ClusteringOnlyVoter()
        first = voter.vote(Round.from_values(0, FAULTY)).value
        second = voter.vote(Round.from_values(1, FAULTY)).value
        assert first == second

    def test_all_agreeing_keeps_everyone(self):
        outcome = ClusteringOnlyVoter().vote_values([5.0, 5.01, 5.02])
        assert outcome.eliminated == ()
        assert outcome.value == pytest.approx(5.01)

    def test_used_bootstrap_flag_set(self):
        outcome = ClusteringOnlyVoter().vote(Round.from_values(0, FAULTY))
        assert outcome.used_bootstrap


class TestCollationOptions:
    def test_mnn_collation_picks_member_value(self):
        params = VoterParams(collation="MEAN_NEAREST_NEIGHBOR")
        outcome = ClusteringOnlyVoter(params).vote(Round.from_values(0, FAULTY))
        assert outcome.value in FAULTY
        assert outcome.value != 24.0


class TestDiagnostics:
    def test_reports_cluster_sizes_and_margin(self):
        outcome = ClusteringOnlyVoter().vote(Round.from_values(0, FAULTY))
        assert outcome.diagnostics["cluster_sizes"][0] == 4
        assert outcome.diagnostics["margin"] > 0

    def test_split_vote_prefers_larger_group(self):
        # 3 values near 10, 2 near 20: the 10-group wins.
        outcome = ClusteringOnlyVoter().vote_values([10.0, 10.1, 9.9, 20.0, 20.1])
        assert outcome.value == pytest.approx(10.0, abs=0.2)
