"""Tests for pairwise agreement computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.voting.agreement import (
    agreement_scores,
    binary_agreement_matrix,
    dynamic_margin,
    majority_cluster,
    pairwise_distances,
    soft_agreement_matrix,
)


class TestDynamicMargin:
    def test_scales_with_median(self):
        assert dynamic_margin([100.0, 100.0, 100.0], error=0.05) == pytest.approx(5.0)

    def test_uses_absolute_reference(self):
        # RSSI values are negative; the margin must still be positive.
        assert dynamic_margin([-70.0, -70.0], error=0.1) == pytest.approx(7.0)

    def test_floor_applies_near_zero(self):
        assert dynamic_margin([0.0, 0.0], error=0.05, min_margin=1e-3) == 1e-3

    def test_median_is_outlier_robust(self):
        margin = dynamic_margin([18.0, 18.0, 18.0, 18.0, 1000.0], error=0.05)
        assert margin == pytest.approx(0.9)

    def test_rejects_nonpositive_error(self):
        with pytest.raises(ValueError):
            dynamic_margin([1.0], error=0.0)

    def test_empty_values_return_floor(self):
        assert dynamic_margin([], error=0.05, min_margin=1e-9) == 1e-9


class TestPairwiseDistances:
    def test_symmetric_zero_diagonal(self):
        d = pairwise_distances([1.0, 3.0, 6.0])
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)
        assert d[0, 1] == 2.0
        assert d[0, 2] == 5.0


class TestBinaryAgreement:
    def test_within_margin_agrees(self):
        m = binary_agreement_matrix([10.0, 10.4, 11.2], margin=0.5)
        assert m[0, 1] == 1.0
        assert m[0, 2] == 0.0
        assert m[1, 2] == 0.0

    def test_diagonal_is_one(self):
        m = binary_agreement_matrix([1.0, 100.0], margin=0.1)
        assert np.allclose(np.diag(m), 1.0)

    def test_boundary_is_inclusive(self):
        m = binary_agreement_matrix([0.0, 0.5], margin=0.5)
        assert m[0, 1] == 1.0

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            binary_agreement_matrix([1.0], margin=-1.0)


class TestSoftAgreement:
    def test_full_agreement_within_margin(self):
        m = soft_agreement_matrix([10.0, 10.3], margin=0.5, soft_threshold=2.0)
        assert m[0, 1] == 1.0

    def test_ramp_midpoint(self):
        # Distance 0.75 with margin 0.5 and k=2: ramp from 0.5 to 1.0,
        # so agreement should be (1.0 - 0.75) / 0.5 = 0.5.
        m = soft_agreement_matrix([0.0, 0.75], margin=0.5, soft_threshold=2.0)
        assert m[0, 1] == pytest.approx(0.5)

    def test_zero_beyond_soft_threshold(self):
        m = soft_agreement_matrix([0.0, 1.1], margin=0.5, soft_threshold=2.0)
        assert m[0, 1] == 0.0

    def test_k_equal_one_degenerates_to_binary(self):
        values = [0.0, 0.4, 0.6]
        soft = soft_agreement_matrix(values, margin=0.5, soft_threshold=1.0)
        binary = binary_agreement_matrix(values, margin=0.5)
        assert np.allclose(soft, binary)

    def test_rejects_soft_threshold_below_one(self):
        with pytest.raises(ValueError):
            soft_agreement_matrix([1.0], margin=0.5, soft_threshold=0.5)

    def test_monotone_in_distance(self):
        values = [0.0, 0.6, 0.9, 1.4]
        m = soft_agreement_matrix(values, margin=0.5, soft_threshold=3.0)
        assert m[0, 1] > m[0, 2] > m[0, 3]


class TestAgreementScores:
    def test_excludes_self(self):
        matrix = binary_agreement_matrix([0.0, 0.1, 5.0], margin=0.5)
        scores = agreement_scores(matrix)
        assert scores[0] == pytest.approx(0.5)  # agrees with 1 of 2 others
        assert scores[2] == pytest.approx(0.0)

    def test_single_module_scores_one(self):
        matrix = binary_agreement_matrix([42.0], margin=0.1)
        assert agreement_scores(matrix)[0] == 1.0

    def test_empty(self):
        assert agreement_scores(np.zeros((0, 0))).shape == (0,)

    def test_all_agree(self):
        matrix = binary_agreement_matrix([1.0, 1.0, 1.0], margin=0.5)
        assert np.allclose(agreement_scores(matrix), 1.0)


class TestMajorityCluster:
    def test_picks_largest_group(self):
        matrix = binary_agreement_matrix([1.0, 1.1, 1.2, 9.0, 9.1], margin=0.3)
        group = majority_cluster(matrix)
        assert sorted(group) == [0, 1, 2]

    def test_empty_matrix(self):
        assert majority_cluster(np.zeros((0, 0))) == []

    def test_singleton(self):
        matrix = binary_agreement_matrix([5.0], margin=0.1)
        assert majority_cluster(matrix) == [0]
