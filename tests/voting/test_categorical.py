"""Tests for categorical weighted-majority voting."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, NoMajorityError
from repro.types import Round
from repro.voting.categorical import CategoricalMajorityVoter


class TestBasics:
    def test_simple_majority(self):
        voter = CategoricalMajorityVoter()
        outcome = voter.vote_values(["open", "open", "closed"])
        assert outcome.value == "open"

    def test_history_weights_reduce_liar_influence(self):
        voter = CategoricalMajorityVoter(history_mode="standard")
        # E3 lies consistently; its record decays.
        for i in range(20):
            voter.vote(Round.from_values(i, ["open", "open", "closed"]))
        assert voter.history.get("E3") < voter.history.get("E1")

    def test_me_mode_eliminates_liar(self):
        voter = CategoricalMajorityVoter(history_mode="me")
        voter.vote_values(["open", "open", "closed"])
        outcome = voter.vote_values(["open", "open", "closed"])
        assert "E3" in outcome.eliminated
        assert outcome.weights["E3"] == 0.0

    def test_none_mode_is_stateless(self):
        voter = CategoricalMajorityVoter(history_mode="none")
        for i in range(5):
            voter.vote(Round.from_values(i, ["a", "a", "b"]))
        assert voter.history.update_count == 0

    def test_unknown_history_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            CategoricalMajorityVoter(history_mode="hybrid")


class TestTieHandling:
    def test_tie_breaks_toward_previous_output(self):
        voter = CategoricalMajorityVoter(history_mode="none")
        voter.vote_values(["b", "b", "a"])
        outcome = voter.vote_values(["a", "b"])
        assert outcome.value == "b"

    def test_unresolvable_tie_raises(self):
        voter = CategoricalMajorityVoter(history_mode="none")
        with pytest.raises(NoMajorityError):
            voter.vote_values(["a", "b"])


class TestCustomDistance:
    def test_distance_metric_extends_agreement(self):
        # §6: implementers "may re-introduce some of these features by
        # supplying a custom distance metric for categorical values".
        def edit0(a, b):
            return 0.0 if a.lower() == b.lower() else 1.0

        voter = CategoricalMajorityVoter(distance=edit0, tolerance=0.5)
        voter.vote_values(["OPEN", "open", "open", "closed"])
        # "OPEN" equals the winner "open" under the metric, so its
        # record must not have been penalised.
        assert voter.history.get("E1") == 1.0
        assert voter.history.get("E4") < 1.0

    def test_tolerance_without_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            CategoricalMajorityVoter(tolerance=0.5)


class TestJsonBlobValues:
    def test_votes_on_hashable_blobs(self):
        blob_a = '{"state": "ok"}'
        blob_b = '{"state": "fail"}'
        outcome = CategoricalMajorityVoter().vote_values([blob_a, blob_a, blob_b])
        assert outcome.value == blob_a

    def test_reset(self):
        voter = CategoricalMajorityVoter()
        voter.vote_values(["x", "x", "y"])
        voter.reset()
        assert voter.history.update_count == 0
