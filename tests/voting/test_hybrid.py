"""Tests for the Hybrid voter."""

from __future__ import annotations

import pytest

from repro.types import Round
from repro.voting.hybrid import HybridVoter

FAULTY = [18.0, 18.1, 17.9, 24.0, 18.05]


class TestCollation:
    def test_output_is_a_submitted_value(self):
        # Hybrid selects (mean nearest neighbour), never amalgamates.
        voter = HybridVoter()
        for i in range(10):
            outcome = voter.vote(Round.from_values(i, FAULTY))
            assert outcome.value in FAULTY

    def test_clean_data_picks_central_value(self):
        outcome = HybridVoter().vote_values([18.0, 18.1, 17.9, 18.15, 18.05])
        assert outcome.value == pytest.approx(18.05)


class TestEliminationDynamics:
    def test_faulty_record_decays_across_cutoff(self):
        voter = HybridVoter()
        eliminated_at = None
        for i in range(10):
            outcome = voter.vote(Round.from_values(i, FAULTY))
            if "E4" in outcome.eliminated and eliminated_at is None:
                eliminated_at = i
        # lr=0.25 decays 1 -> 0.75 -> 0.5625 -> 0.42: crosses the 0.5
        # cutoff on the third update, eliminated from round 3.
        assert eliminated_at == 3

    def test_output_matches_healthy_consensus_after_elimination(self):
        voter = HybridVoter()
        outcome = None
        for i in range(10):
            outcome = voter.vote(Round.from_values(i, FAULTY))
        assert outcome.value != 24.0
        assert abs(outcome.value - 18.0) < 0.3

    def test_healthy_modules_never_eliminated_on_clean_data(self):
        voter = HybridVoter()
        for i in range(50):
            outcome = voter.vote(Round.from_values(i, [5.0, 5.01, 4.99, 5.02]))
            assert outcome.eliminated == ()

    def test_eliminated_module_recovers_when_healed(self):
        voter = HybridVoter()
        for i in range(6):
            voter.vote(Round.from_values(i, FAULTY))
        healed = [18.0, 18.1, 17.9, 18.02, 18.05]
        reinstated = False
        for i in range(6, 30):
            outcome = voter.vote(Round.from_values(i, healed))
            if "E4" not in outcome.eliminated:
                reinstated = True
                break
        assert reinstated


class TestStartupSpike:
    def test_first_round_uses_uniform_weights(self):
        # §5: history voters fall back to a standard (unweighted)
        # approach until a record exists — with fresh records all equal
        # to 1 the weighted mean IS the plain mean, so the MNN pick is
        # referenced to the skewed mean.
        outcome = HybridVoter().vote_values(FAULTY)
        assert all(w == 1.0 for w in outcome.weights.values())
