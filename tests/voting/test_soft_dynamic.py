"""Tests for the Soft Dynamic Threshold (Sdt) voter."""

from __future__ import annotations

import pytest

from repro.types import Round
from repro.voting.soft_dynamic import SoftDynamicThresholdVoter
from repro.voting.standard import StandardVoter


class TestSoftAgreementGranularity:
    def test_borderline_value_gets_partial_agreement(self):
        # margin = 5 % of median(10) = 0.5; k = 2 -> soft zone (0.5, 1.0].
        voter = SoftDynamicThresholdVoter()
        outcome = voter.vote_values([10.0, 10.0, 10.75])
        assert 0.0 < outcome.agreement["E3"] < 1.0

    def test_binary_voter_fully_rejects_same_value(self):
        standard = StandardVoter()
        outcome = standard.vote_values([10.0, 10.0, 10.75])
        assert outcome.agreement["E3"] == 0.0

    def test_far_value_still_scores_zero(self):
        voter = SoftDynamicThresholdVoter()
        outcome = voter.vote_values([10.0, 10.0, 15.0])
        assert outcome.agreement["E3"] == 0.0

    def test_soft_threshold_parameter_widens_zone(self):
        wide = SoftDynamicThresholdVoter(
            SoftDynamicThresholdVoter.default_params().with_overrides(
                soft_threshold=4.0
            )
        )
        outcome = wide.vote_values([10.0, 10.0, 11.5])
        assert outcome.agreement["E3"] > 0.0


class TestRecordGranularity:
    def test_borderline_module_penalised_less_than_outlier(self):
        voter = SoftDynamicThresholdVoter()
        for i in range(20):
            voter.vote(Round.from_values(i, [10.0, 10.0, 10.7, 20.0]))
        records = voter.history.snapshot()
        assert records["E4"] < records["E3"] < records["E1"]

    def test_output_is_weighted_mean(self):
        voter = SoftDynamicThresholdVoter()
        outcome = voter.vote_values([10.0, 10.0, 12.0])
        # Fresh records are all 1 -> plain mean on the first round.
        assert outcome.value == pytest.approx((10.0 + 10.0 + 12.0) / 3)
