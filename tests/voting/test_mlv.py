"""Tests for the Maximum-Likelihood Voting extension."""

from __future__ import annotations

import pytest

from repro.types import Round
from repro.voting.mlv import MaximumLikelihoodVoter


class TestGroupSelection:
    def test_majority_group_wins_with_fresh_records(self):
        voter = MaximumLikelihoodVoter()
        outcome = voter.vote_values([10.0, 10.1, 9.9, 20.0])
        assert outcome.value == pytest.approx(10.0, abs=0.1)
        assert "E4" in outcome.eliminated

    def test_reliability_can_flip_group_choice(self):
        # Two groups of two; the group whose members have much higher
        # records should win despite the tie in size.
        voter = MaximumLikelihoodVoter()
        voter.history.seed(
            {"E1": 0.95, "E2": 0.95, "E3": 0.05, "E4": 0.05},
            count_as_update=False,
        )
        outcome = voter.vote_values([10.0, 10.1, 20.0, 20.1])
        assert outcome.value == pytest.approx(10.05, abs=0.1)

    def test_log_likelihood_reported(self):
        outcome = MaximumLikelihoodVoter().vote_values([1.0, 1.0, 5.0])
        assert outcome.diagnostics["log_likelihood"] < 0

    def test_history_updates_like_other_voters(self):
        voter = MaximumLikelihoodVoter()
        voter.vote_values([1.0, 1.0, 5.0])
        assert voter.history.get("E3") < voter.history.get("E1")

    def test_quorum_respected(self):
        params = MaximumLikelihoodVoter.default_params().with_overrides(
            quorum_percentage=100.0
        )
        voter = MaximumLikelihoodVoter(params)
        outcome = voter.vote(Round.from_mapping(0, {"a": 1.0, "b": None}))
        assert outcome.value is None
        assert not outcome.quorum_reached

    def test_reliability_floor_keeps_likelihood_finite(self):
        voter = MaximumLikelihoodVoter()
        voter.history.seed({"E1": 0.0, "E2": 0.0, "E3": 1.0}, count_as_update=False)
        outcome = voter.vote_values([1.0, 1.0, 1.0])
        assert outcome.value == 1.0  # no math domain errors
