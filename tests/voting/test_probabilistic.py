"""Symbol-prior probabilistic voting (categorical path).

Covers the posterior contract (cold start reduces to the weighted
majority), prior build-up and decay, tie handling, the documented
batch fallback, and a determinism fuzz over random symbol streams.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    ConfigurationError,
    EmptyRoundError,
    NoMajorityError,
)
from repro.types import Round
from repro.voting.categorical import CategoricalMajorityVoter
from repro.voting.probabilistic import ProbabilisticSymbolVoter
from repro.voting.registry import categorical_algorithms, create_voter


def vote_mapping(voter, number, mapping):
    return voter.vote(Round.from_mapping(number, mapping))


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"history_mode": "hybrid"}, "history_mode"),
            ({"prior_strength": -0.1}, "prior_strength"),
            ({"smoothing": 0.0}, "smoothing"),
            ({"smoothing": -1.0}, "smoothing"),
            ({"prior_decay": 1.0}, "prior_decay"),
            ({"prior_decay": -0.1}, "prior_decay"),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            ProbabilisticSymbolVoter(**kwargs)

    def test_registered_as_categorical(self):
        voter = create_voter("probabilistic")
        assert isinstance(voter, ProbabilisticSymbolVoter)
        assert "probabilistic" in categorical_algorithms()
        assert create_voter("symbol-prior").name == "probabilistic"
        assert create_voter("probabilistic_majority").name == "probabilistic"

    def test_empty_round_raises(self):
        with pytest.raises(EmptyRoundError):
            ProbabilisticSymbolVoter().vote(Round.from_mapping(0, {}))


class TestPosterior:
    def test_cold_start_matches_weighted_majority(self):
        mapping = {"S1": "a", "S2": "a", "S3": "b"}
        prob = ProbabilisticSymbolVoter()
        majority = CategoricalMajorityVoter()
        assert (
            vote_mapping(prob, 0, mapping).value
            == vote_mapping(majority, 0, mapping).value
            == "a"
        )

    def test_zero_strength_ignores_prior(self):
        voter = ProbabilisticSymbolVoter(prior_strength=0.0)
        for number in range(30):
            vote_mapping(voter, number, {"S1": "a", "S2": "a", "S3": "a"})
        # With the prior disabled a fresh 2-1 majority for "b" wins even
        # against 30 rounds of "a" history.
        outcome = vote_mapping(voter, 30, {"S1": "b", "S2": "b", "S3": "a"})
        assert outcome.value == "b"

    def test_prior_defends_against_burst_flood(self):
        voter = ProbabilisticSymbolVoter()
        for number in range(30):
            vote_mapping(
                voter, number,
                {f"S{i}": "present" for i in range(1, 8)},
            )
        # Colluders flood the wrong symbol while the honest sensors are
        # mostly dropped out: 2 wrong vs 1 right present.
        outcome = vote_mapping(
            voter, 30, {"S1": "absent", "S2": "absent", "S3": "present"}
        )
        assert outcome.value == "present"

    def test_prior_builds_and_decays(self):
        voter = ProbabilisticSymbolVoter(prior_decay=0.5)
        vote_mapping(voter, 0, {"S1": "a", "S2": "a"})
        vote_mapping(voter, 1, {"S1": "a", "S2": "a"})
        priors = voter.symbol_priors()
        assert set(priors) == {"a"}
        # counts: 1 decayed to 0.5, plus 1 → 1.5; smoothed over the one
        # seen symbol: (1.5 + 1) / (1.5 + 1).
        assert priors["a"] == pytest.approx(1.0)
        vote_mapping(voter, 2, {"S1": "b", "S2": "b", "S3": "b"})
        assert set(voter.symbol_priors()) == {"a", "b"}

    def test_diagnostics_expose_tallies_and_posterior(self):
        voter = ProbabilisticSymbolVoter()
        outcome = vote_mapping(voter, 0, {"S1": "a", "S2": "a", "S3": "b"})
        assert outcome.diagnostics["tallies"]["a"] == pytest.approx(2.0)
        assert set(outcome.diagnostics["posterior"]) == {"a", "b"}

    def test_me_mode_zero_weights_below_mean(self):
        voter = ProbabilisticSymbolVoter(history_mode="me")
        for number in range(10):
            vote_mapping(voter, number, {"S1": "a", "S2": "a", "S3": "b"})
        outcome = vote_mapping(voter, 10, {"S1": "a", "S2": "a", "S3": "b"})
        assert "S3" in outcome.eliminated
        assert outcome.weights["S3"] == 0.0


class TestTieHandling:
    def test_fresh_tie_raises_without_mutation(self):
        voter = ProbabilisticSymbolVoter()
        with pytest.raises(NoMajorityError):
            vote_mapping(voter, 0, {"S1": "a", "S2": "b"})
        assert voter.symbol_priors() == {}
        assert voter.history.update_count == 0

    def test_tie_resolved_by_last_output(self):
        voter = ProbabilisticSymbolVoter(prior_strength=0.0)
        vote_mapping(voter, 0, {"S1": "a", "S2": "a", "S3": "b"})
        # Prior disabled: posterior ties 1-1, the previous output wins.
        outcome = vote_mapping(voter, 1, {"S1": "a", "S2": "b"})
        assert outcome.value == "a"

    def test_reset_clears_priors_history_and_last_output(self):
        voter = ProbabilisticSymbolVoter()
        vote_mapping(voter, 0, {"S1": "a", "S2": "a", "S3": "b"})
        voter.reset()
        assert voter.symbol_priors() == {}
        assert voter.history.update_count == 0
        with pytest.raises(NoMajorityError):
            vote_mapping(voter, 0, {"S1": "a", "S2": "b"})


class TestBatchFallback:
    def test_batch_kernel_is_documented_fallback(self):
        assert ProbabilisticSymbolVoter().batch_kernel() is None

    def test_engine_series_matches_manual_loop(self):
        from repro.fusion.engine import FusionEngine

        rounds = [
            {"S1": "a", "S2": "a", "S3": "b"},
            {"S1": "a", "S2": None, "S3": "a"},
            {"S1": "b", "S2": "a", "S3": "a"},
            {"S1": "a", "S2": "a", "S3": "a"},
        ]
        manual = ProbabilisticSymbolVoter()
        expected = [
            vote_mapping(manual, n, m).value for n, m in enumerate(rounds)
        ]
        engine = FusionEngine(
            ProbabilisticSymbolVoter(), roster=["S1", "S2", "S3"]
        )
        got = [
            engine.process(Round.from_mapping(n, m)).value
            for n, m in enumerate(rounds)
        ]
        assert got == expected


class TestFuzzDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_rounds=st.integers(min_value=1, max_value=40),
        n_modules=st.integers(min_value=1, max_value=6),
    )
    def test_identical_streams_identical_outputs(
        self, seed, n_rounds, n_modules
    ):
        import numpy as np

        rng = np.random.default_rng(seed)
        symbols = ("a", "b", "c")
        modules = [f"S{i + 1}" for i in range(n_modules)]
        stream = [
            {
                m: (
                    None
                    if rng.random() < 0.2
                    else symbols[rng.integers(len(symbols))]
                )
                for m in modules
            }
            for _ in range(n_rounds)
        ]
        outputs = []
        for _ in range(2):
            voter = ProbabilisticSymbolVoter()
            series = []
            for number, mapping in enumerate(stream):
                if all(v is None for v in mapping.values()):
                    series.append("<empty>")
                    continue
                try:
                    series.append(vote_mapping(voter, number, mapping).value)
                except NoMajorityError:
                    series.append("<tie>")
            outputs.append(series)
        assert outputs[0] == outputs[1]
