"""Tests for the M-out-of-N exact-agreement voter."""

from __future__ import annotations

import pytest

from repro.analysis.stats import availability
from repro.exceptions import ConfigurationError, NoMajorityError
from repro.fusion.engine import FusionEngine
from repro.fusion.faults import FaultPolicy
from repro.types import Round
from repro.voting.base import VoterParams
from repro.voting.moon import MooNVoter
from repro.voting.registry import create_voter


class TestBasics:
    def test_2oo3_with_agreement(self):
        voter = MooNVoter(m=2)
        outcome = voter.vote_values([10.0, 10.1, 99.0])
        assert outcome.value == pytest.approx(10.05)
        assert outcome.eliminated == ("E3",)
        assert outcome.diagnostics["agreeing"] == 2

    def test_no_agreement_raises(self):
        voter = MooNVoter(m=2)
        with pytest.raises(NoMajorityError, match="2 required"):
            voter.vote_values([10.0, 50.0, 99.0])
        assert voter.rounds_without_output == 1

    def test_m_of_one_always_answers(self):
        voter = MooNVoter(m=1)
        assert voter.vote_values([42.0]).value == 42.0

    def test_higher_m_is_stricter(self):
        values = [10.0, 10.05, 10.1, 50.0]
        assert MooNVoter(m=3).vote_values(values).value is not None
        with pytest.raises(NoMajorityError):
            MooNVoter(m=4).vote_values(values)

    def test_exact_agreement_ignores_soft_zone(self):
        # A value 1.5 margins away agrees softly but NOT exactly.
        params = VoterParams(error=0.05, soft_threshold=4.0)
        voter = MooNVoter(m=3, params=params)
        with pytest.raises(NoMajorityError):
            voter.vote_values([10.0, 10.1, 10.75])

    def test_invalid_m(self):
        with pytest.raises(ConfigurationError):
            MooNVoter(m=0)

    def test_registered(self):
        voter = create_voter("moon", m=3)
        assert voter.m == 3
        assert voter.name == "3ooN"

    def test_reset(self):
        voter = MooNVoter(m=3)
        with pytest.raises(NoMajorityError):
            voter.vote_values([1.0, 50.0, 99.0])
        voter.reset()
        assert voter.rounds_without_output == 0


class TestEngineIntegration:
    def test_no_quorum_round_held_by_policy(self):
        engine = FusionEngine(
            MooNVoter(m=3),
            fault_policy=FaultPolicy(on_conflict="last_value"),
        )
        good = engine.process(Round.from_values(0, [5.0, 5.0, 5.0]))
        assert good.ok
        degraded = engine.process(Round.from_values(1, [1.0, 50.0, 99.0]))
        assert degraded.status == "held"
        assert degraded.value == 5.0

    def test_availability_metric(self):
        engine = FusionEngine(
            MooNVoter(m=3), fault_policy=FaultPolicy(on_conflict="skip")
        )
        rounds = [
            [5.0, 5.0, 5.0],
            [1.0, 50.0, 99.0],  # no 3-way agreement
            [5.0, 5.0, 5.1],
            [1.0, 2.0, 99.0],  # no 3-way agreement
        ]
        results = [engine.process(Round.from_values(i, v)) for i, v in enumerate(rounds)]
        assert availability([r.status for r in results]) == 0.5

    def test_integrity_vs_availability_tradeoff(self):
        # Stricter M answers less often but is never wrong about
        # which group it answers from.
        noisy_rounds = [
            [10.0, 10.05, 40.0, 70.0],
            [10.0, 45.0, 45.2, 80.0],
            [10.0, 10.02, 10.04, 70.0],
        ]
        loose = FusionEngine(MooNVoter(m=2), fault_policy=FaultPolicy(on_conflict="skip"))
        strict = FusionEngine(MooNVoter(m=3), fault_policy=FaultPolicy(on_conflict="skip"))
        loose_results = [loose.process(Round.from_values(i, v)) for i, v in enumerate(noisy_rounds)]
        strict_results = [strict.process(Round.from_values(i, v)) for i, v in enumerate(noisy_rounds)]
        loose_avail = availability([r.status for r in loose_results])
        strict_avail = availability([r.status for r in strict_results])
        assert strict_avail < loose_avail


class TestAvailabilityHelper:
    def test_empty(self):
        assert availability([]) == 0.0

    def test_all_ok(self):
        assert availability(["ok", "ok"]) == 1.0

    def test_held_counts_as_unavailable(self):
        assert availability(["ok", "held", "skipped", "ok"]) == 0.5
