"""Tests for VoterParams validation and the shared voter pipeline."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, EmptyRoundError
from repro.types import Round
from repro.voting.base import VoterParams
from repro.voting.standard import StandardVoter


class TestVoterParamsValidation:
    def test_defaults_are_valid(self):
        VoterParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"error": 0.0},
            {"error": -0.1},
            {"soft_threshold": 0.5},
            {"min_margin": -1.0},
            {"history_policy": "magic"},
            {"elimination": "sometimes"},
            {"elimination_threshold": 1.5},
            {"collation": "MODE"},
            {"quorum_percentage": 150.0},
            {"bootstrap_mode": "maybe"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            VoterParams(**kwargs)

    def test_with_overrides_returns_new_instance(self):
        params = VoterParams()
        changed = params.with_overrides(error=0.1)
        assert changed.error == 0.1
        assert params.error == 0.05

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigurationError):
            VoterParams().with_overrides(error=-1.0)


class TestPipelineBasics:
    def test_vote_values_convenience(self):
        voter = StandardVoter()
        outcome = voter.vote_values([18.0, 18.1, 17.9])
        assert outcome.value == pytest.approx(18.0, abs=0.1)

    def test_run_processes_in_order(self):
        voter = StandardVoter()
        rounds = [Round.from_values(i, [1.0, 1.0]) for i in range(3)]
        outcomes = voter.run(rounds)
        assert [o.round_number for o in outcomes] == [0, 1, 2]

    def test_empty_round_raises(self):
        voter = StandardVoter()
        with pytest.raises(EmptyRoundError):
            voter.vote(Round.from_mapping(0, {"a": None}))

    def test_missing_values_are_skipped_not_zeroed(self):
        voter = StandardVoter()
        outcome = voter.vote(Round.from_mapping(0, {"a": 10.0, "b": None, "c": 10.2}))
        assert outcome.value == pytest.approx(10.1)
        assert "b" not in outcome.agreement

    def test_outcome_exposes_history_and_agreement(self):
        voter = StandardVoter()
        outcome = voter.vote_values([5.0, 5.0, 50.0])
        assert set(outcome.history) == {"E1", "E2", "E3"}
        assert outcome.agreement["E3"] == 0.0

    def test_reset_restores_fresh_history(self):
        voter = StandardVoter()
        voter.vote_values([1.0, 1.0, 99.0])
        voter.reset()
        assert voter.history.all_fresh(["E1", "E2", "E3"])


class TestQuorum:
    def _voter(self, pct):
        params = StandardVoter.default_params().with_overrides(quorum_percentage=pct)
        return StandardVoter(params=params)

    def test_quorum_failure_yields_no_value(self):
        voter = self._voter(100.0)
        outcome = voter.vote(Round.from_mapping(0, {"a": 1.0, "b": None}))
        assert outcome.value is None
        assert not outcome.quorum_reached

    def test_quorum_satisfied(self):
        voter = self._voter(50.0)
        outcome = voter.vote(Round.from_mapping(0, {"a": 1.0, "b": None}))
        assert outcome.quorum_reached
        assert outcome.value == 1.0

    def test_quorum_failure_does_not_update_history(self):
        voter = self._voter(100.0)
        voter.vote(Round.from_mapping(0, {"a": 1.0, "b": None}))
        assert voter.history.update_count == 0

    def test_zero_percentage_disables_check(self):
        voter = self._voter(0.0)
        outcome = voter.vote(Round.from_mapping(0, {"a": 1.0, "b": None}))
        assert outcome.quorum_reached


class TestEliminationModes:
    def test_fixed_threshold(self):
        params = StandardVoter.default_params().with_overrides(
            elimination="fixed", elimination_threshold=0.5
        )

        class Eliminating(StandardVoter):
            eliminates = True

        voter = Eliminating(params=params)
        voter.history.seed({"E1": 0.4, "E2": 1.0, "E3": 1.0}, count_as_update=False)
        outcome = voter.vote_values([10.0, 10.0, 10.0])
        assert outcome.eliminated == ("E1",)
        assert outcome.weights["E1"] == 0.0

    def test_elimination_none_keeps_everyone(self):
        voter = StandardVoter()  # elimination="none"
        voter.history.seed({"E1": 0.0}, count_as_update=False)
        outcome = voter.vote_values([10.0, 10.0, 10.0])
        assert outcome.eliminated == ("E1",)  # zero weight via record
        # but that is from the record value, not the elimination rule:
        assert outcome.weights["E2"] == 1.0
