"""Incoherence-scored adaptive masking voter.

Covers the regulation-parameter contract, the mask/rejoin hysteresis,
scalar/batch bit-identity (including NaN gaps and quorum interaction),
and a hypothesis fuzz over random gap-ridden matrices.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, EmptyRoundError
from repro.fusion.engine import FusionEngine
from repro.fusion.quorum import QuorumRule
from repro.types import Round, is_missing
from repro.voting.base import VoterParams
from repro.voting.incoherence import IncoherenceMaskingVoter
from repro.voting.registry import create_voter


def run_rounds(engine, matrix, modules):
    results = []
    for number, row in enumerate(matrix):
        mapping = {
            m: (None if is_missing(v) else float(v))
            for m, v in zip(modules, row)
        }
        results.append(engine.process(Round.from_mapping(number, mapping)))
    return results


class TestRegulationParameters:
    def test_defaults(self):
        voter = IncoherenceMaskingVoter()
        assert voter.rise == 0.35
        assert voter.decay == 0.1
        assert voter.mask_threshold == 1.0
        assert voter.rejoin_threshold == 0.25
        assert voter.score_cap == 2.0
        assert voter.params.elimination == "none"

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"rise": 0.0}, "rise must be positive"),
            ({"rise": -1.0}, "rise must be positive"),
            ({"decay": -0.1}, "decay must be non-negative"),
            ({"mask_threshold": 0.0}, "mask_threshold must be positive"),
            ({"rejoin_threshold": 1.0}, "rejoin_threshold"),
            ({"rejoin_threshold": -0.1}, "rejoin_threshold"),
            ({"score_cap": 0.5}, "score_cap"),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            IncoherenceMaskingVoter(**kwargs)

    def test_weighted_majority_collation_rejected(self):
        params = VoterParams(collation="WEIGHTED_MAJORITY", elimination="none")
        with pytest.raises(ConfigurationError, match="WEIGHTED_MAJORITY"):
            IncoherenceMaskingVoter(params=params)

    def test_registered(self):
        voter = create_voter("incoherence")
        assert isinstance(voter, IncoherenceMaskingVoter)
        assert create_voter("incoherence-masking").name == "incoherence"
        assert create_voter("adaptive-masking").name == "incoherence"


class TestMaskingBehaviour:
    def test_empty_round_raises(self):
        with pytest.raises(EmptyRoundError):
            IncoherenceMaskingVoter().vote(Round.from_mapping(0, {}))

    def test_persistent_outlier_gets_masked(self):
        voter = IncoherenceMaskingVoter()
        for number in range(6):
            outcome = voter.vote(
                Round.from_values(number, [18.0, 18.1, 17.9, 18.05, 24.0])
            )
        assert voter.masked_modules() == ("E5",)
        # Once masked the outlier stops contributing to the fuse.
        assert outcome.value == pytest.approx(18.0125)
        assert outcome.eliminated == ("E5",)

    def test_scores_decay_while_coherent(self):
        voter = IncoherenceMaskingVoter()
        voter.vote(Round.from_values(0, [18.0, 18.1, 17.9, 18.05, 24.0]))
        spiked = voter.incoherence_scores()["E5"]
        assert spiked == pytest.approx(0.35)
        for number in range(1, 5):
            voter.vote(
                Round.from_values(number, [18.0, 18.1, 17.9, 18.05, 18.02])
            )
        assert voter.incoherence_scores()["E5"] == pytest.approx(0.0)

    def test_rejoin_hysteresis(self):
        voter = IncoherenceMaskingVoter(rise=1.0, decay=0.5, score_cap=1.0)
        voter.vote(Round.from_values(0, [18.0, 18.1, 17.9, 18.05, 24.0]))
        assert voter.masked_modules() == ("E5",)
        # One coherent round drops the score to 0.5 — above the rejoin
        # threshold, so the module stays masked (hysteresis).
        voter.vote(Round.from_values(1, [18.0, 18.1, 17.9, 18.05, 18.0]))
        assert voter.masked_modules() == ("E5",)
        # A second coherent round reaches 0.0 <= rejoin_threshold.
        voter.vote(Round.from_values(2, [18.0, 18.1, 17.9, 18.05, 18.0]))
        assert voter.masked_modules() == ()

    def test_absent_module_keeps_score_and_mask(self):
        voter = IncoherenceMaskingVoter()
        for number in range(4):
            voter.vote(
                Round.from_values(number, [18.0, 18.1, 17.9, 18.05, 24.0])
            )
        assert voter.masked_modules() == ("E5",)
        score = voter.incoherence_scores()["E5"]
        voter.vote(
            Round.from_mapping(4, {"E1": 18.0, "E2": 18.1, "E3": 17.9})
        )
        assert voter.masked_modules() == ("E5",)
        assert voter.incoherence_scores()["E5"] == score

    def test_score_cap_bounds_reearn_time(self):
        voter = IncoherenceMaskingVoter(score_cap=1.0)
        for number in range(20):
            voter.vote(
                Round.from_values(number, [18.0, 18.1, 17.9, 18.05, 24.0])
            )
        assert voter.incoherence_scores()["E5"] == pytest.approx(1.0)

    def test_single_outlier_cannot_indict_majority(self):
        # Scoring runs against the unmasked median, so one large offset
        # never drags the reference onto the honest majority.
        voter = IncoherenceMaskingVoter()
        for number in range(10):
            voter.vote(
                Round.from_values(number, [18.0, 18.1, 17.9, 18.05, 60.0])
            )
        assert voter.masked_modules() == ("E5",)

    def test_reset_clears_state(self):
        voter = IncoherenceMaskingVoter()
        for number in range(6):
            voter.vote(
                Round.from_values(number, [18.0, 18.1, 17.9, 18.05, 24.0])
            )
        voter.reset()
        assert voter.incoherence_scores() == {}
        assert voter.masked_modules() == ()

    def test_diagnostics_expose_margin_scores_and_mask(self):
        voter = IncoherenceMaskingVoter()
        outcome = voter.vote(Round.from_values(0, [18.0, 18.1, 24.0]))
        assert set(outcome.diagnostics) == {"margin", "incoherence", "masked"}
        assert outcome.diagnostics["incoherence"]["E3"] == pytest.approx(0.35)


class TestBatchEquivalence:
    def test_kernel_name_and_override_guard(self):
        assert IncoherenceMaskingVoter().batch_kernel() == "incoherence"

        class Custom(IncoherenceMaskingVoter):
            def _apply(self, names, values, margin):
                return super()._apply(names, values, margin)

        assert Custom().batch_kernel() is None

    def assert_equivalent(self, make_engine, matrix, modules):
        e_ref = make_engine()
        e_batch = make_engine()
        reference = run_rounds(e_ref, matrix, modules)
        batch = e_batch.process_batch(
            matrix, modules=modules, diagnostics=True
        ).to_results()
        assert len(reference) == len(batch)
        for a, b in zip(reference, batch):
            assert a.status == b.status
            assert a.value == b.value  # bit-identity, not approx
            if a.outcome is not None:
                assert b.outcome is not None
                assert a.outcome.weights == b.outcome.weights
                assert a.outcome.eliminated == b.outcome.eliminated
                assert a.outcome.diagnostics == b.outcome.diagnostics
        assert (
            e_ref.voter.incoherence_scores()
            == e_batch.voter.incoherence_scores()
        )
        assert e_ref.voter.masked_modules() == e_batch.voter.masked_modules()

    def test_uc1_with_fault_and_gaps(self, uc1_small_faulty):
        matrix = uc1_small_faulty.matrix[:200].copy()
        rng = np.random.default_rng(3)
        matrix[rng.random(matrix.shape) < 0.1] = np.nan
        matrix[7] = np.nan
        self.assert_equivalent(
            lambda: FusionEngine(create_voter("incoherence")),
            matrix,
            list(uc1_small_faulty.modules),
        )

    def test_quorum_interaction(self, uc1_small):
        matrix = uc1_small.matrix[:120].copy()
        matrix[10:30, :3] = np.nan  # 2 of 5 present: below 80% quorum
        self.assert_equivalent(
            lambda: FusionEngine(
                create_voter("incoherence"),
                quorum=QuorumRule(mode="UNTIL", percentage=80),
            ),
            matrix,
            list(uc1_small.modules),
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_rounds=st.integers(min_value=1, max_value=40),
        n_modules=st.integers(min_value=1, max_value=6),
        gap_fraction=st.floats(min_value=0.0, max_value=0.6),
    )
    def test_fuzz_scalar_batch_identity(
        self, seed, n_rounds, n_modules, gap_fraction
    ):
        rng = np.random.default_rng(seed)
        matrix = 18.0 + rng.normal(0.0, 1.0, size=(n_rounds, n_modules))
        matrix[rng.random(matrix.shape) < gap_fraction] = np.nan
        modules = [f"E{i + 1}" for i in range(n_modules)]
        self.assert_equivalent(
            lambda: FusionEngine(create_voter("incoherence")),
            matrix,
            modules,
        )
