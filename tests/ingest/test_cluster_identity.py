"""Acceptance: a 500-round cluster run over the async ingest tier is
bit-identical to direct :func:`repro.fuse` output."""

from __future__ import annotations

import numpy as np

from repro import fuse
from repro.cluster.supervisor import FusionCluster
from repro.ingest import AsyncIngestServer
from repro.service.facade import connect
from repro.vdx.examples import AVOC_SPEC

MODULES = ["E1", "E2", "E3", "E4", "E5"]
ROUNDS = 500


def test_500_round_ingest_run_bit_identical_to_direct_fuse():
    rng = np.random.default_rng(2022)
    matrix = rng.normal(18.0, 0.15, (ROUNDS, 5))
    # Sprinkle missing readings and one faulty module stretch, so the
    # identity check exercises degraded rounds and exclusions too.
    matrix[::97, 2] = np.nan
    matrix[100:140, 4] += 6.0

    direct = fuse(matrix, AVOC_SPEC, modules=MODULES).values

    with FusionCluster(
        AVOC_SPEC, n_shards=2, replicas=2, mode="thread"
    ) as cluster:
        with AsyncIngestServer(
            cluster.gateway, coalesce_window=0.0
        ) as ingest:
            with connect(ingest.address) as client:
                assert client.transport == "binary"
                got = []
                for n in range(ROUNDS):
                    values = {
                        m: (None if np.isnan(v) else float(v))
                        for m, v in zip(MODULES, matrix[n])
                    }
                    got.append(client.vote(n, values, series="uc1")["value"])

    for n, (value, expected) in enumerate(zip(got, direct)):
        if np.isnan(expected):
            assert value is None, n
        else:
            assert value == float(expected), n
