"""The async ingest tier: fan-in, coalescing, backpressure, framing."""

from __future__ import annotations

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro import fuse
from repro.cluster.backend import ShardServer
from repro.ingest import AsyncIngestServer, ThreadBridge
from repro.obs import MetricsRegistry
from repro.service.client import ServiceError, VoterClient
from repro.service.facade import connect
from repro.service.protocol import (
    FRAME_HEADER,
    FRAME_MAGIC,
    ErrorCode,
    decode_frame_header,
    decode_frame_payload,
    decode_message,
    encode_frame,
    encode_message,
    ok_response,
)
from repro.service.server import VoterServer
from repro.vdx.examples import AVOC_SPEC

MODULES = ["E1", "E2", "E3", "E4", "E5"]
FAULTY = {"E1": 18.0, "E2": 18.1, "E3": 17.9, "E4": 24.0, "E5": 18.05}


def _values(row):
    return {m: float(v) for m, v in zip(MODULES, row)}


@pytest.fixture()
def shard_ingest():
    """Ingest tier over a batch-capable shard sink (the coalescing path)."""
    sink = ShardServer(AVOC_SPEC)
    registry = MetricsRegistry()
    with AsyncIngestServer(sink, registry=registry) as ingest:
        yield ingest, sink, registry


@pytest.fixture()
def voter_ingest():
    """Ingest tier over a plain voter sink (the pass-through path)."""
    sink = VoterServer(AVOC_SPEC)
    with AsyncIngestServer(sink) as ingest:
        yield ingest, sink


class TestBasicServing:
    def test_vote_and_stats_over_binary(self, shard_ingest):
        ingest, _, _ = shard_ingest
        with connect(ingest.address) as client:
            assert client.transport == "binary"
            result = client.vote(0, FAULTY, series="a")
            assert result["status"] == "ok"
            assert client.stats(series="a")["rounds_processed"] == 1

    def test_vote_over_json(self, shard_ingest):
        ingest, _, _ = shard_ingest
        with connect(ingest.address, transport="json") as client:
            assert client.transport == "json"
            assert client.vote(0, FAULTY, series="a")["status"] == "ok"

    def test_passthrough_ops(self, shard_ingest):
        ingest, _, _ = shard_ingest
        with connect(ingest.address) as client:
            assert client.ping()
            assert "service_requests_total" in client.metrics()

    def test_vote_without_series_passthrough_sink(self, voter_ingest):
        ingest, _ = voter_ingest
        with connect(ingest.address) as client:
            assert client.vote(0, FAULTY)["status"] == "ok"
            with pytest.raises(ServiceError) as excinfo:
                client.vote(0, FAULTY)
            assert excinfo.value.code == str(ErrorCode.ALREADY_VOTED.value)

    def test_restart_safety(self):
        sink = VoterServer(AVOC_SPEC)
        ingest = AsyncIngestServer(sink)
        ingest.start()
        ingest.start()  # idempotent
        addr = ingest.address
        with connect(addr) as client:
            assert client.ping()
        ingest.stop()
        ingest.stop()  # idempotent


class TestCoalescing:
    def test_concurrent_votes_coalesce_into_batches(self, shard_ingest):
        ingest, sink, _ = shard_ingest
        rng = np.random.default_rng(11)
        rounds = 30
        matrices = {f"s{i}": rng.normal(18.0, 0.1, (rounds, 5)) for i in range(4)}
        errors = []

        def run(series, matrix):
            try:
                with connect(ingest.address) as client:
                    for n in range(rounds):
                        result = client.vote(
                            n, _values(matrix[n]), series=series
                        )
                        assert result["status"] in ("ok", "degraded")
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(series, matrix))
            for series, matrix in matrices.items()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # Every series voted every round, in order, exactly once.
        for series, matrix in matrices.items():
            stats = sink.dispatch({"op": "stats", "series": series})
            assert stats["rounds_processed"] == rounds

    def test_coalesced_votes_match_direct_fuse(self, shard_ingest):
        ingest, _, _ = shard_ingest
        rng = np.random.default_rng(3)
        matrix = rng.normal(18.0, 0.2, (50, 5))
        with connect(ingest.address) as client:
            got = [
                client.vote(n, _values(matrix[n]), series="ident")["value"]
                for n in range(50)
            ]
        direct = fuse(matrix, AVOC_SPEC, modules=MODULES).values
        for value, expected in zip(got, direct):
            if np.isnan(expected):
                assert value is None
            else:
                assert value == float(expected)

    def test_bad_vote_does_not_poison_the_batch(self, shard_ingest):
        # An already-voted round fails a whole vote_batch at the sink;
        # the ingest tier must retry singly so neighbours still land.
        ingest, sink, _ = shard_ingest
        with connect(ingest.address) as client:
            client.vote(0, FAULTY, series="p")
        # Pipeline a duplicate and a fresh vote into the same flush.
        host, port = ingest.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(
                encode_message(
                    {"op": "vote", "round": 0, "values": FAULTY, "series": "p"}
                )
                + encode_message(
                    {"op": "vote", "round": 1, "values": FAULTY, "series": "p"}
                )
            )
            buffer = b""
            while buffer.count(b"\n") < 2:
                buffer += sock.recv(65536)
            first, second = (
                decode_message(line)
                for line in buffer.strip().split(b"\n")
            )
        # Shards replay cached votes, so the duplicate answers with the
        # original result rather than an error — the fresh one lands.
        assert first["ok"] is True
        assert second["ok"] is True
        assert sink.dispatch({"op": "stats", "series": "p"})[
            "rounds_processed"
        ] == 2


class TestBackpressure:
    def test_vote_queue_full_answers_backpressure(self):
        sink = ShardServer(AVOC_SPEC)
        registry = MetricsRegistry()
        with AsyncIngestServer(
            sink, max_queued_votes=0, registry=registry
        ) as ingest:
            with VoterClient(*ingest.address) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.vote(0, FAULTY, series="x")
                assert excinfo.value.code == str(ErrorCode.BACKPRESSURE.value)
        assert "ingest_backpressure_drops_total 1" in registry.render()

    def test_per_connection_cap(self):
        release = threading.Event()

        class BlockingSink:
            def _op_vote_batch(self, request):  # marks batch capability
                raise NotImplementedError

            def dispatch(self, request):
                if request["op"] == "vote_batch":
                    release.wait(timeout=10.0)
                    results = [
                        {
                            "series": b["series"],
                            "results": [
                                {"round": n, "value": 1.0, "status": "ok"}
                                for n in b["rounds"]
                            ],
                        }
                        for b in request["batches"]
                    ]
                    return ok_response(results=results)
                return ok_response(pong=True)

        with AsyncIngestServer(
            BlockingSink(),
            max_queued_per_connection=2,
            coalesce_window=0.0,
        ) as ingest:
            host, port = ingest.address
            with socket.create_connection((host, port), timeout=10.0) as sock:
                for n in range(6):
                    sock.sendall(
                        encode_message(
                            {
                                "op": "vote",
                                "round": n,
                                "values": FAULTY,
                                "series": "x",
                            }
                        )
                    )
                time.sleep(0.3)  # let the tier buffer up to its cap
                release.set()
                buffer = b""
                while buffer.count(b"\n") < 6:
                    buffer += sock.recv(65536)
            responses = [
                decode_message(line) for line in buffer.strip().split(b"\n")
            ]
        refused = [r for r in responses if not r["ok"]]
        assert refused, "expected at least one backpressure refusal"
        assert all(
            r["code"] == str(ErrorCode.BACKPRESSURE.value) for r in refused
        )
        assert any(r["ok"] for r in responses)

    def test_connection_capacity(self):
        sink = VoterServer(AVOC_SPEC)
        with AsyncIngestServer(sink, max_connections=1) as ingest:
            host, port = ingest.address
            keeper = socket.create_connection((host, port), timeout=5.0)
            try:
                keeper.sendall(encode_message({"op": "ping"}))
                assert decode_message(keeper.recv(65536).strip())["ok"]
                with socket.create_connection((host, port), timeout=5.0) as extra:
                    data = extra.recv(65536)
                    response = decode_message(data.strip())
                    assert response["ok"] is False
                    assert response["code"] == str(ErrorCode.BACKPRESSURE.value)
            finally:
                keeper.close()


class TestSlowConsumer:
    def test_slow_consumer_disconnected(self):
        sink = VoterServer(AVOC_SPEC)
        registry = MetricsRegistry()
        with AsyncIngestServer(
            sink,
            drain_grace=0.2,
            write_buffer_high=2048,
            registry=registry,
        ) as ingest:
            host, port = ingest.address
            sock = socket.create_connection((host, port), timeout=5.0)
            try:
                # Metrics responses are multi-KiB; pipeline plenty and
                # never read, so the transport buffer jams past the
                # high-water mark and drain() times out.
                request = encode_message({"op": "metrics"})
                try:
                    for _ in range(200):
                        sock.sendall(request)
                except (BrokenPipeError, ConnectionResetError):
                    pass  # already disconnected: the point is made
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if "ingest_slow_consumer_disconnects_total 1" in (
                        registry.render()
                    ):
                        break
                    time.sleep(0.05)
                assert "ingest_slow_consumer_disconnects_total 1" in (
                    registry.render()
                )
            finally:
                sock.close()


class TestFramingFaults:
    def test_malformed_frame_answers_then_disconnects(self, voter_ingest):
        ingest, _ = voter_ingest
        host, port = ingest.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(struct.pack("!BBHI", FRAME_MAGIC, 9, 0, 0))
            header = sock.recv(FRAME_HEADER.size, socket.MSG_WAITALL)
            if header and header[0] == FRAME_MAGIC:
                length = decode_frame_header(header)
                response = decode_frame_payload(
                    sock.recv(length, socket.MSG_WAITALL)
                )
            else:
                data = header + sock.recv(65536)
                response = decode_message(data.strip())
            assert response["ok"] is False
            assert response["code"] == str(ErrorCode.MALFORMED_FRAME.value)
            assert sock.recv(1) == b""

    def test_truncated_frame_then_eof_closes_quietly(self, voter_ingest):
        ingest, _ = voter_ingest
        host, port = ingest.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            frame = encode_frame({"op": "ping"})
            sock.sendall(frame[: len(frame) - 3])
            sock.shutdown(socket.SHUT_WR)
            assert sock.recv(65536) == b""  # no half-baked response

    def test_frame_counters_by_version(self):
        sink = VoterServer(AVOC_SPEC)
        registry = MetricsRegistry()
        with AsyncIngestServer(sink, registry=registry) as ingest:
            with VoterClient(*ingest.address) as client:
                client.negotiate("json")
                client.ping()
                client.negotiate("auto")
                client.ping()
            rendered = registry.render()
        assert 'ingest_frames_total{version="2-json"}' in rendered
        assert 'ingest_frames_total{version="3-binary"}' in rendered


class TestThreadBridge:
    def test_bridge_round_trip(self):
        sink = VoterServer(AVOC_SPEC)
        bridge = ThreadBridge(sink, workers=2)
        bridge.start()
        done = threading.Event()
        box = {}
        try:
            def on_done(result, exc):
                box["result"], box["exc"] = result, exc
                done.set()

            bridge.submit({"op": "ping"}, on_done)
            assert done.wait(timeout=5.0)
            assert box["exc"] is None
            assert box["result"]["pong"] is True
        finally:
            bridge.stop()

    def test_bridge_propagates_exceptions(self):
        class Exploding:
            def dispatch(self, request):
                raise RuntimeError("kaboom")

        bridge = ThreadBridge(Exploding(), workers=1)
        bridge.start()
        done = threading.Event()
        box = {}
        try:
            def on_done(result, exc):
                box["exc"] = exc
                done.set()

            bridge.submit({"op": "ping"}, on_done)
            assert done.wait(timeout=5.0)
            assert isinstance(box["exc"], RuntimeError)
        finally:
            bridge.stop()

    def test_submit_before_start_rejected(self):
        bridge = ThreadBridge(object())
        with pytest.raises(RuntimeError):
            bridge.submit({"op": "ping"}, lambda r, e: None)
