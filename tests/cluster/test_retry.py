"""Tests for backoff, circuit breaking, and call_with_retry.

Every test injects a fake clock or sleep — nothing here waits on real
time.
"""

from __future__ import annotations

import pytest

from repro.cluster.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    call_with_retry,
)
from repro.exceptions import ConfigurationError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRetryPolicy:
    def test_schedule_is_bounded_exponential(self):
        policy = RetryPolicy(max_retries=5, base_delay=0.1, multiplier=2.0,
                             max_delay=0.5)
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_zero_retries_yields_empty_schedule(self):
        assert list(RetryPolicy(max_retries=0).delays()) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # second caller still refused
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()


class TestCallWithRetry:
    def test_retries_then_succeeds(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("boom")
            return "ok"

        policy = RetryPolicy(max_retries=3, base_delay=0.1)
        result = call_with_retry(flaky, policy, sleep=slept.append)
        assert result == "ok"
        assert len(calls) == 3
        assert slept == pytest.approx([0.1, 0.2])

    def test_exhausted_retries_raise_original_error(self):
        def always_down():
            raise OSError("down")

        with pytest.raises(OSError, match="down"):
            call_with_retry(
                always_down, RetryPolicy(max_retries=2), sleep=lambda _: None
            )

    def test_unlisted_exceptions_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("bug, not transport")

        with pytest.raises(ValueError):
            call_with_retry(
                broken, RetryPolicy(max_retries=5), sleep=lambda _: None
            )
        assert len(calls) == 1

    def test_on_retry_callback_sees_each_attempt(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError("boom")
            return 42

        call_with_retry(
            flaky,
            RetryPolicy(max_retries=5),
            sleep=lambda _: None,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert seen == [(0, "boom"), (1, "boom")]

    def test_open_breaker_refuses_without_calling(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0,
                                 clock=clock)
        breaker.record_failure()
        calls = []
        with pytest.raises(CircuitOpenError):
            call_with_retry(
                lambda: calls.append(1),
                RetryPolicy(max_retries=1),
                breaker=breaker,
                sleep=lambda _: None,
            )
        assert calls == []

    def test_breaker_sees_every_attempt(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0,
                                 clock=clock)

        def always_down():
            raise OSError("down")

        with pytest.raises(OSError):
            call_with_retry(
                always_down,
                RetryPolicy(max_retries=1),
                breaker=breaker,
                sleep=lambda _: None,
            )
        # Two attempts (1 + 1 retry) crossed the threshold of 2.
        assert breaker.state == "open"
