"""Gateway health reporting: distinct backend statuses and obs aggregation.

``cluster_stats`` must tell stale and fenced backends apart from alive
ones (a fenced backend still answers pings, so ``alive`` alone is a
lie), and the ``obs`` operation must aggregate every live shard's
structured metrics snapshot behind one request.
"""

from __future__ import annotations

import pytest

from repro.cluster.supervisor import FusionCluster
from repro.vdx.examples import AVOC_SPEC

MODULES = ["E1", "E2", "E3"]


@pytest.fixture()
def cluster():
    with FusionCluster(
        AVOC_SPEC, n_shards=3, replicas=2, mode="thread", auto_restart=False
    ) as running:
        yield running


class TestBackendStatus:
    def test_healthy_cluster_reports_every_backend_alive(self, cluster):
        with cluster.client() as client:
            stats = client.cluster_stats()
        statuses = {b: info["status"] for b, info in stats["backends"].items()}
        assert statuses == {"b0": "alive", "b1": "alive", "b2": "alive"}
        assert stats["backends_by_status"] == {"alive": 3}

    def test_fenced_beats_alive(self, cluster):
        cluster.gateway._fence("b1")
        with cluster.client() as client:
            stats = client.cluster_stats()
        assert stats["backends"]["b1"]["status"] == "fenced"
        # The link itself still answers, so the old flat flags alone
        # would have read as healthy.
        assert stats["backends"]["b1"]["alive"] is True
        assert stats["backends_by_status"] == {"alive": 2, "fenced": 1}

    def test_stale_is_distinct_from_alive_and_fenced(self, cluster):
        cluster.gateway.mark_stale("b2")
        with cluster.client() as client:
            stats = client.cluster_stats()
        assert stats["backends"]["b2"]["status"] == "stale"
        assert stats["backends_by_status"] == {"alive": 2, "stale": 1}

    def test_dead_backend_is_counted_as_dead(self, cluster):
        cluster.backends["b0"].kill()
        with cluster.client() as client:
            # Drive a request at the dead backend so its link notices.
            for i in range(6):
                try:
                    client.vote(
                        i, dict(zip(MODULES, [18.0, 18.1, 17.9])),
                        series=f"s{i}",
                    )
                except Exception:
                    pass
            stats = client.cluster_stats()
        assert stats["backends"]["b0"]["status"] == "dead"
        assert stats["backends_by_status"].get("dead") == 1

    def test_fenced_wins_over_stale(self, cluster):
        cluster.gateway.mark_stale("b1")
        cluster.gateway._fence("b1")
        with cluster.client() as client:
            stats = client.cluster_stats()
        assert stats["backends"]["b1"]["status"] == "fenced"


class TestObsAggregation:
    def test_obs_returns_local_and_per_shard_snapshots(self, cluster):
        with cluster.client() as client:
            client.vote(
                0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="obs"
            )
            response = client.request({"op": "obs"})
        assert sorted(response["shards"]) == ["b0", "b1", "b2"]
        assert response["shard_failures"] == []
        # The gateway's own registry rides along as the local view.
        assert "cluster_gateway_requests_total" in response["snapshot"]
        # Shard snapshots are structured (family -> type/samples), and
        # independent: each shard counted its own requests only.
        for snapshot in response["shards"].values():
            family = snapshot["service_requests_total"]
            assert family["type"] == "counter"

    def test_obs_reports_unreachable_shards(self, cluster):
        cluster.backends["b2"].kill()
        with cluster.client() as client:
            response = client.request({"op": "obs"})
        assert "b2" in response["shard_failures"]
        assert "b2" not in response["shards"]
        assert sorted(response["shards"]) == ["b0", "b1"]

    def test_metrics_op_gains_per_shard_sections(self, cluster):
        with cluster.client() as client:
            response = client.request({"op": "metrics", "shards": True})
        assert sorted(response["shard_metrics"]) == ["b0", "b1", "b2"]
        for text in response["shard_metrics"].values():
            assert "service_requests_total" in text
        # Without the flag the reply keeps its original local-only shape.
        with cluster.client() as client:
            plain = client.request({"op": "metrics"})
        assert "shard_metrics" not in plain

    def test_shard_registries_are_isolated(self, cluster):
        """Each shard owns a private registry; totals never double-count."""
        with cluster.client() as client:
            for i in range(4):
                client.vote(
                    i, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="iso"
                )
            response = client.request({"op": "obs"})
        per_shard = [
            sum(
                snapshot["service_requests_total"]["samples"].values()
            )
            for snapshot in response["shards"].values()
        ]
        # The series routes to 2 replicas out of 3: exactly one shard
        # saw no batch at all, so its request count is strictly lower.
        assert min(per_shard) < max(per_shard)
