"""Tests for the consistent-hash ring."""

from __future__ import annotations

import pytest

from repro.cluster.ring import HashRing
from repro.exceptions import ConfigurationError

KEYS = [f"series-{i}" for i in range(200)]


def make_ring(n=4, replicas=2, **kwargs):
    ring = HashRing(replicas=replicas, **kwargs)
    for i in range(n):
        ring.add_node(f"b{i}")
    return ring


class TestMembership:
    def test_nodes_in_join_order(self):
        ring = make_ring(3)
        assert ring.nodes == ("b0", "b1", "b2")
        assert len(ring) == 3
        assert "b1" in ring

    def test_duplicate_add_rejected(self):
        ring = make_ring(2)
        with pytest.raises(ConfigurationError, match="already on the ring"):
            ring.add_node("b0")

    def test_remove_unknown_rejected(self):
        ring = make_ring(2)
        with pytest.raises(ConfigurationError, match="not on the ring"):
            ring.remove_node("b9")

    def test_empty_ring_routes_nothing(self):
        ring = HashRing(replicas=2)
        with pytest.raises(ConfigurationError, match="no backends"):
            ring.replica_set("k")

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            HashRing(replicas=0)
        with pytest.raises(ConfigurationError):
            HashRing(vnodes=0)


class TestRouting:
    def test_deterministic_across_instances(self):
        # Placement must survive process restarts: two independent rings
        # with the same seed and membership agree on every key.
        a = make_ring(5, replicas=3)
        b = make_ring(5, replicas=3)
        for key in KEYS:
            assert a.replica_set(key) == b.replica_set(key)

    def test_join_order_does_not_matter(self):
        a = HashRing(replicas=2)
        b = HashRing(replicas=2)
        for node in ("b0", "b1", "b2", "b3"):
            a.add_node(node)
        for node in ("b3", "b1", "b0", "b2"):
            b.add_node(node)
        for key in KEYS:
            assert a.replica_set(key) == b.replica_set(key)

    def test_replica_sets_are_distinct_backends(self):
        ring = make_ring(4, replicas=3)
        for key in KEYS:
            replicas = ring.replica_set(key)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_replica_count_clamped_to_live_backends(self):
        ring = make_ring(2, replicas=3)
        assert len(ring.replica_set("k")) == 2

    def test_primary_is_first_replica(self):
        ring = make_ring(4, replicas=3)
        for key in KEYS[:20]:
            assert ring.primary(key) == ring.replica_set(key)[0]

    def test_seed_changes_placement(self):
        a = make_ring(4, seed="one")
        b = make_ring(4, seed="two")
        assert any(
            a.replica_set(key) != b.replica_set(key) for key in KEYS
        )

    def test_load_spread_is_reasonable(self):
        # 64 vnodes keeps primaries within a loose factor of fair share.
        ring = make_ring(4, replicas=1)
        load = ring.load_by_node(KEYS)
        assert sum(load.values()) == len(KEYS)
        fair = len(KEYS) / 4
        for count in load.values():
            assert count > fair / 4


class TestRebalance:
    def test_minimal_movement_on_join(self):
        # Consistent hashing's defining property: adding one backend
        # moves roughly keys/n, never a full reshuffle.
        ring = make_ring(4, replicas=2)
        before = ring.assignments(KEYS)
        ring.add_node("b4")
        moved = ring.moved_keys(KEYS, before)
        assert 0 < len(moved) < len(KEYS) / 2
        for key, (old, new) in moved.items():
            assert old != new
            assert "b4" in new  # only arcs the newcomer claimed changed

    def test_remove_then_readd_restores_placement(self):
        ring = make_ring(4, replicas=2)
        before = ring.assignments(KEYS)
        ring.remove_node("b2")
        assert all("b2" not in ring.replica_set(k) for k in KEYS)
        ring.add_node("b2")
        assert ring.assignments(KEYS) == before

    def test_moved_keys_empty_without_membership_change(self):
        ring = make_ring(3)
        before = ring.assignments(KEYS)
        assert ring.moved_keys(KEYS, before) == {}
