"""Tests for the cluster gateway: routing, majority reads, micro-batching.

Thread-mode backends keep these fast; process-mode failover is covered
in ``test_supervisor.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.supervisor import FusionCluster
from repro.service.client import ServiceError, VoterClient
from repro.service.protocol import PROTOCOL_VERSION
from repro.vdx.examples import AVOC_SPEC, STANDARD_SPEC
from repro.vdx.factory import build_engine

MODULES = ["E1", "E2", "E3"]


def rows_for(n, seed=5):
    rng = np.random.default_rng(seed)
    return (18.0 + rng.normal(0.0, 0.1, size=(n, len(MODULES)))).tolist()


@pytest.fixture(scope="module")
def cluster():
    with FusionCluster(
        AVOC_SPEC, n_shards=3, replicas=2, mode="thread", auto_restart=False
    ) as running:
        yield running


@pytest.fixture()
def client(cluster):
    with cluster.client() as c:
        c.reset()
        yield c


class TestHandshake:
    def test_hello_roundtrip(self, client):
        assert client.hello() == PROTOCOL_VERSION

    def test_version_mismatch_rejected_with_clear_error(self, client):
        with pytest.raises(ServiceError, match="protocol version mismatch"):
            client.hello(version=PROTOCOL_VERSION + 1)

    def test_gateway_advertises_vote_replay(self, client):
        response = client.request({"op": "hello", "version": PROTOCOL_VERSION})
        assert response["replays_votes"] is True


class TestRoutedVoting:
    def test_vote_matches_single_engine(self, client):
        rows = rows_for(30)
        reference = build_engine(AVOC_SPEC)
        for i, row in enumerate(rows):
            result = client.vote(i, dict(zip(MODULES, row)), series="room-1")
            expected = reference.process_batch(
                np.asarray([row]), MODULES
            )
            want = expected.values[0]
            want = None if np.isnan(want) else float(want)
            assert result["value"] == want

    def test_vote_without_series_uses_default(self, client):
        result = client.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])))
        assert result["round"] == 0
        assert "default" in client.route("default")["series"]

    def test_replicated_writes_land_on_the_full_replica_set(self, client):
        client.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="rep")
        route = client.route("rep")
        assert len(route["replicas"]) == 2
        for address in route["addresses"]:
            with VoterClient(*address) as direct:
                assert direct.stats(series="rep")["rounds_processed"] == 1

    def test_vote_batch_matches_single_engine(self, client):
        rows = rows_for(80, seed=9)
        reference = build_engine(AVOC_SPEC)
        outcome = reference.process_batch(np.asarray(rows), MODULES)
        results = client.vote_batch(
            [{"series": "batch-series", "rounds": list(range(80)),
              "modules": MODULES, "rows": rows}]
        )
        got = [r["value"] for r in results[0]["results"]]
        want = [None if np.isnan(v) else float(v) for v in outcome.values]
        assert got == want

    def test_vote_batch_fans_out_many_series(self, client):
        batches = [
            {"series": f"multi-{k}", "rounds": [0, 1], "modules": MODULES,
             "rows": rows_for(2, seed=k)}
            for k in range(6)
        ]
        results = client.vote_batch(batches)
        assert [r["series"] for r in results] == [b["series"] for b in batches]
        for entry in results:
            assert [p["round"] for p in entry["results"]] == [0, 1]

    def test_submit_and_close_round_through_gateway(self, client):
        client.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="sub")
        response = client.submit(1, "E1", 18.2, series="sub")
        assert response["accepted"] and not response["voted"]
        client.submit(1, "E2", 18.3, series="sub")
        response = client.submit(1, "E3", 18.1, series="sub")
        assert response["voted"]
        client.submit(2, "E1", 18.0, series="sub")
        assert client.close_round(2, series="sub")["round"] == 2

    def test_replayed_vote_is_idempotent_across_the_cluster(self, client):
        values = dict(zip(MODULES, [18.0, 18.1, 17.9]))
        first = client.vote(0, values, series="replay")
        again = client.vote(0, values, series="replay")
        assert again == first


class TestReadsAndStats:
    def test_history_read_from_replica_set(self, client):
        rows = rows_for(25)
        client.vote_batch(
            [{"series": "hist", "rounds": list(range(25)),
              "modules": MODULES, "rows": rows}]
        )
        records = client.history(series="hist")
        assert set(records) == set(MODULES)

    def test_stats_routed_to_primary(self, client):
        client.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="st")
        stats = client.stats(series="st")
        assert stats["rounds_processed"] == 1

    def test_cluster_stats_shape(self, client):
        client.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="cs")
        stats = client.cluster_stats()
        assert stats["ring"]["replicas"] == 2
        assert sorted(stats["backends"]) == ["b0", "b1", "b2"]
        for info in stats["backends"].values():
            assert info["alive"] is True
            assert info["breaker"] == "closed"
        assert stats["series_routed"] >= 1

    def test_route_lists_replicas_in_ring_order(self, client, cluster):
        route = client.route("anything")
        assert route["replicas"] == cluster.ring.replica_set("anything")

    def test_unsupported_op_fails_cleanly(self, client):
        with pytest.raises(ServiceError, match="not supported by the gateway"):
            client.request(
                {"op": "sync_history", "series": "s", "records": {"E1": 1.0}}
            )

    def test_reset_broadcasts_to_every_backend(self, client):
        client.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="wipe")
        assert client.reset()
        assert client.cluster_stats()["series_routed"] == 0
        with pytest.raises(ServiceError, match="unknown series"):
            client.stats(series="wipe")


class TestConfigureTwoPhase:
    def test_configure_aborts_before_touching_any_backend(self):
        with FusionCluster(
            AVOC_SPEC, n_shards=3, replicas=2, mode="thread",
            auto_restart=False,
        ) as cluster:
            with cluster.client() as client:
                client.vote(
                    0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="cfg"
                )
                cluster.backends["b1"].kill()
                with pytest.raises(ServiceError, match="configure aborted"):
                    client.configure(STANDARD_SPEC.to_dict())
                # The probe phase failed, so no survivor was reconfigured:
                # the cluster is still uniformly on the old spec, state
                # intact.
                assert (
                    client.spec()["algorithm_name"]
                    == AVOC_SPEC.algorithm_name
                )
                for backend_id, backend in cluster.backends.items():
                    if backend_id == "b1":
                        continue
                    with VoterClient(*backend.address) as direct:
                        assert (
                            direct.spec()["algorithm_name"]
                            == AVOC_SPEC.algorithm_name
                        )

    def test_fenced_backend_is_excluded_from_routing(self):
        with FusionCluster(
            AVOC_SPEC, n_shards=3, replicas=2, mode="thread",
            auto_restart=False,
        ) as cluster:
            with cluster.client() as client:
                series = "fenced"
                victim = client.route(series)["replicas"][0]
                cluster.gateway._fence(victim)
                stats = client.cluster_stats()
                assert stats["backends"][victim]["fenced"] is True
                result = client.vote(
                    0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series=series
                )
                assert result["round"] == 0
                # The fenced primary never saw the round.
                with VoterClient(*cluster.backends[victim].address) as direct:
                    with pytest.raises(ServiceError, match="unknown series"):
                        direct.stats(series=series)

    def test_stale_backend_is_skipped_until_resynced(self):
        with FusionCluster(
            AVOC_SPEC, n_shards=3, replicas=2, mode="thread",
            auto_restart=False,
        ) as cluster:
            with cluster.client() as client:
                series = "stale"
                victim = client.route(series)["replicas"][0]
                cluster.gateway.mark_stale(victim)
                assert client.cluster_stats()["backends"][victim]["stale"]
                client.vote(
                    0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series=series
                )
                with VoterClient(*cluster.backends[victim].address) as direct:
                    with pytest.raises(ServiceError, match="unknown series"):
                        direct.stats(series=series)
                # resync seeds the victim from the survivor and re-enables.
                summary = cluster.gateway.resync_backend(victim)
                assert summary["synced"] == 1
                with VoterClient(*cluster.backends[victim].address) as direct:
                    survivor_records = client.history(series=series)
                    assert direct.history(series=series) == pytest.approx(
                        survivor_records
                    )


class TestGatewayFailover:
    def test_majority_read_survives_a_dead_replica(self):
        # Separate cluster so killing a backend can't leak into the
        # module-scoped fixture.
        with FusionCluster(
            AVOC_SPEC, n_shards=3, replicas=2, mode="thread",
            auto_restart=False,
        ) as cluster:
            with cluster.client() as client:
                rows = rows_for(40, seed=13)
                reference = build_engine(AVOC_SPEC)
                expected = reference.process_batch(np.asarray(rows), MODULES)
                for i in range(20):
                    client.vote(i, dict(zip(MODULES, rows[i])), series="ha")
                victim = client.route("ha")["replicas"][0]
                cluster.backends[victim].kill()
                for i in range(20, 40):
                    result = client.vote(
                        i, dict(zip(MODULES, rows[i])), series="ha"
                    )
                    want = expected.values[i]
                    want = None if np.isnan(want) else float(want)
                    assert result["value"] == want
                stats = client.cluster_stats()
                assert stats["backends"][victim]["alive"] is False
