"""Tests for ShardServer (multi-series voting) and ManagedBackend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.backend import ManagedBackend, ShardServer, _series_filename
from repro.exceptions import ReproError
from repro.runtime.pool import fork_available
from repro.service.client import ServiceError, VoterClient
from repro.vdx.examples import AVOC_SPEC
from repro.vdx.factory import build_engine

MODULES = ["E1", "E2", "E3"]


def rows_for(n, seed=7):
    rng = np.random.default_rng(seed)
    return (18.0 + rng.normal(0.0, 0.1, size=(n, len(MODULES)))).tolist()


@pytest.fixture()
def shard():
    server = ShardServer(AVOC_SPEC)
    server.start()
    yield server
    server.stop()


@pytest.fixture()
def client(shard):
    with VoterClient(*shard.address) as c:
        yield c


class TestSeriesFilename:
    def test_slug_is_filesystem_safe_and_collision_free(self):
        assert _series_filename("room/1").endswith(".jsonl")
        assert "/" not in _series_filename("room/1").rsplit(".", 1)[0]
        assert _series_filename("room/1") != _series_filename("room_1")


class TestShardServerSeries:
    def test_series_are_isolated(self, client):
        client.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="s1")
        client.vote(0, dict(zip(MODULES, [21.0, 21.2, 20.9])), series="s2")
        s1 = client.stats(series="s1")
        s2 = client.stats(series="s2")
        assert s1["rounds_processed"] == 1
        assert s2["rounds_processed"] == 1

    def test_plain_requests_hit_the_shared_engine(self, client):
        client.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])))
        stats = client.stats()
        assert stats["rounds_processed"] == 1
        assert stats["series"] == []

    def test_replayed_vote_returns_cached_result(self, client):
        values = dict(zip(MODULES, [18.0, 18.1, 17.9]))
        first = client.vote(0, values, series="s1")
        replay = client.vote(0, values, series="s1")
        assert replay == first
        # Still only one round processed: the replay never hit the engine.
        assert client.stats(series="s1")["rounds_processed"] == 1

    def test_plain_server_still_rejects_double_votes(self, client):
        values = dict(zip(MODULES, [18.0, 18.1, 17.9]))
        client.vote(0, values)
        with pytest.raises(ServiceError, match="already voted"):
            client.vote(0, values)

    def test_submit_and_close_round_per_series(self, client):
        for module, value in zip(MODULES, [18.0, 18.1, 17.9]):
            client.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="s1")
            break  # seed the roster with one full round first
        response = client.submit(1, "E1", 18.2, series="s1")
        assert response["accepted"] and not response["voted"]
        client.submit(1, "E2", 18.3, series="s1")
        response = client.submit(1, "E3", 18.1, series="s1")
        assert response["voted"]
        assert response["result"]["round"] == 1
        client.submit(2, "E1", 18.0, series="s1")
        closed = client.close_round(2, series="s1")
        assert closed["round"] == 2

    def test_unknown_series_reads_fail_cleanly(self, client):
        with pytest.raises(ServiceError, match="unknown series"):
            client.stats(series="never-seen")


class TestVoteBatch:
    def test_bit_identical_to_direct_engine(self, client):
        rows = rows_for(50)
        reference = build_engine(AVOC_SPEC)
        outcome = reference.process_batch(np.asarray(rows), MODULES)
        results = client.vote_batch(
            [{"series": "s1", "rounds": list(range(50)),
              "modules": MODULES, "rows": rows}]
        )
        got = [r["value"] for r in results[0]["results"]]
        want = [None if np.isnan(v) else float(v) for v in outcome.values]
        assert got == want

    def test_batch_matches_per_round_votes(self, client):
        rows = rows_for(20, seed=3)
        loop_values = [
            client.vote(i, dict(zip(MODULES, row)), series="loop")["value"]
            for i, row in enumerate(rows)
        ]
        results = client.vote_batch(
            [{"series": "batch", "rounds": list(range(20)),
              "modules": MODULES, "rows": rows}]
        )
        batch_values = [r["value"] for r in results[0]["results"]]
        assert batch_values == loop_values

    def test_replayed_rounds_are_served_from_cache(self, client):
        rows = rows_for(10)
        batch = {"series": "s", "rounds": list(range(10)),
                 "modules": MODULES, "rows": rows}
        first = client.vote_batch([batch])
        again = client.vote_batch([batch])
        assert again == first
        assert client.stats(series="s")["rounds_processed"] == 10

    def test_duplicate_rounds_within_one_batch(self, client):
        rows = rows_for(3)
        results = client.vote_batch(
            [{"series": "s", "rounds": [0, 0, 1],
              "modules": MODULES, "rows": [rows[0], rows[0], rows[1]]}]
        )
        payloads = results[0]["results"]
        assert payloads[0] == payloads[1]
        assert client.stats(series="s")["rounds_processed"] == 2

    def test_non_numeric_rows_rejected_before_any_apply(self, client):
        with pytest.raises(ServiceError, match="non-numeric"):
            client.vote_batch(
                [
                    {"series": "good", "rounds": [0], "modules": MODULES,
                     "rows": [[18.0, 18.1, 17.9]]},
                    {"series": "bad", "rounds": [0], "modules": MODULES,
                     "rows": [[18.0, "x", 17.9]]},
                ]
            )
        # Two-pass validation: the earlier, valid batch was not applied.
        with pytest.raises(ServiceError, match="unknown series"):
            client.stats(series="good")

    def test_none_cells_are_missing_values(self, client):
        rows = [[18.0, 18.1, 17.9], [18.0, None, 17.9]]
        results = client.vote_batch(
            [{"series": "s", "rounds": [0, 1], "modules": MODULES,
              "rows": rows}]
        )
        reference = build_engine(AVOC_SPEC)
        matrix = np.asarray([[18.0, 18.1, 17.9], [18.0, np.nan, 17.9]])
        outcome = reference.process_batch(matrix, MODULES)
        got = [r["value"] for r in results[0]["results"]]
        want = [None if np.isnan(v) else float(v) for v in outcome.values]
        assert got == want


class TestReplayCacheBounds:
    def test_cache_is_bounded_per_series(self, tmp_path):
        server = ShardServer(AVOC_SPEC, history_dir=tmp_path,
                             replay_cache_rounds=5)
        server.start()
        try:
            with VoterClient(*server.address) as c:
                rows = rows_for(20)
                c.vote_batch([{"series": "s", "rounds": list(range(20)),
                               "modules": MODULES, "rows": rows}])
                assert len(server._series_voted["s"]) == 5
                # Recent rounds still replay from the cache...
                replay = c.vote(19, dict(zip(MODULES, rows[19])), series="s")
                assert replay["round"] == 19
                # ...but an evicted round is refused, never re-applied.
                with pytest.raises(ServiceError, match="already voted"):
                    c.vote(0, dict(zip(MODULES, rows[0])), series="s")
                assert c.stats(series="s")["rounds_processed"] == 20
        finally:
            server.stop()

    def test_watermark_survives_a_restart(self, tmp_path):
        rows = rows_for(10)
        server = ShardServer(AVOC_SPEC, history_dir=tmp_path)
        server.start()
        with VoterClient(*server.address) as c:
            c.vote_batch([{"series": "s", "rounds": list(range(10)),
                           "modules": MODULES, "rows": rows}])
        server.stop()
        reborn = ShardServer(AVOC_SPEC, history_dir=tmp_path)
        reborn.start()
        try:
            with VoterClient(*reborn.address) as c:
                # The replay cache died with the process, but the voted
                # watermark did not: a retried old round is refused
                # instead of silently mutating history a second time.
                with pytest.raises(ServiceError, match="already voted"):
                    c.vote(9, dict(zip(MODULES, rows[9])), series="s")
                assert c.stats(series="s")["rounds_processed"] == 0
                # Fresh rounds keep flowing.
                fresh = c.vote(10, dict(zip(MODULES, rows[0])), series="s")
                assert fresh["round"] == 10
        finally:
            reborn.stop()

    def test_batch_with_crash_lost_round_rejected_before_apply(self, tmp_path):
        rows = rows_for(6)
        server = ShardServer(AVOC_SPEC, history_dir=tmp_path)
        server.start()
        with VoterClient(*server.address) as c:
            c.vote_batch([{"series": "s", "rounds": [0, 1, 2],
                           "modules": MODULES, "rows": rows[:3]}])
        server.stop()
        reborn = ShardServer(AVOC_SPEC, history_dir=tmp_path)
        reborn.start()
        try:
            with VoterClient(*reborn.address) as c:
                with pytest.raises(ServiceError, match="already voted"):
                    c.vote_batch([{"series": "s", "rounds": [2, 3, 4],
                                   "modules": MODULES, "rows": rows[2:5]}])
                # Screened in the validation pass: nothing was applied.
                assert c.stats(series="s")["rounds_processed"] == 0
        finally:
            reborn.stop()

    def test_reset_clears_the_watermark(self, client):
        values = dict(zip(MODULES, [18.0, 18.1, 17.9]))
        client.vote(0, values, series="s")
        client.reset(series="s")
        assert client.vote(0, values, series="s")["round"] == 0


class TestSyncHistory:
    def test_seed_records_without_counting_updates(self, client):
        records = {"E1": 0.9, "E2": 0.4, "E3": 0.7}
        client.request({"op": "sync_history", "series": "s",
                        "records": records})
        assert client.history(series="s") == pytest.approx(records)

    def test_versioned_seed_adopts_records_and_update_counter(self, client):
        records = {"E1": 0.9, "E2": 0.4, "E3": 0.7}
        client.request({"op": "sync_history", "series": "s",
                        "records": records, "updates": 12, "watermark": 41})
        response = client.request({"op": "history", "series": "s"})
        assert response["records"] == pytest.approx(records)
        assert response["updates"] == 12
        assert response["watermark"] == 41
        # The watermark guards the vote path too.
        with pytest.raises(ServiceError, match="already voted"):
            client.vote(41, dict(zip(MODULES, [18.0, 18.1, 17.9])),
                        series="s")
        assert client.vote(
            42, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="s"
        )["round"] == 42

    def test_stale_seed_is_ignored(self, client):
        fresh = {"E1": 0.9, "E2": 0.4, "E3": 0.7}
        client.request({"op": "sync_history", "series": "s",
                        "records": fresh, "updates": 12, "watermark": 41})
        stale = {"E1": 0.1, "E2": 0.1, "E3": 0.1}
        response = client.request(
            {"op": "sync_history", "series": "s", "records": stale,
             "updates": 3, "watermark": 7}
        )
        assert response.get("ignored") is True
        assert client.history(series="s") == pytest.approx(fresh)


class TestHistoryPersistence:
    def test_series_logs_survive_a_restart(self, tmp_path):
        rows = rows_for(30)
        server = ShardServer(AVOC_SPEC, history_dir=tmp_path)
        server.start()
        with VoterClient(*server.address) as c:
            c.vote_batch([{"series": "room", "rounds": list(range(30)),
                           "modules": MODULES, "rows": rows}])
            records = c.history(series="room")
        server.stop()
        assert records
        reborn = ShardServer(AVOC_SPEC, history_dir=tmp_path)
        reborn.start()
        try:
            with VoterClient(*reborn.address) as c:
                assert c.history(series="room") == pytest.approx(records)
        finally:
            reborn.stop()

    def test_restarted_series_votes_like_an_uninterrupted_engine(self, tmp_path):
        rows = rows_for(40, seed=11)
        server = ShardServer(AVOC_SPEC, history_dir=tmp_path)
        server.start()
        with VoterClient(*server.address) as c:
            c.vote_batch([{"series": "s", "rounds": list(range(20)),
                           "modules": MODULES, "rows": rows[:20]}])
        server.stop()
        reborn = ShardServer(AVOC_SPEC, history_dir=tmp_path)
        reborn.start()
        try:
            with VoterClient(*reborn.address) as c:
                resumed = c.vote_batch(
                    [{"series": "s", "rounds": list(range(20, 40)),
                      "modules": MODULES, "rows": rows[20:]}]
                )[0]["results"]
        finally:
            reborn.stop()
        # An engine that never crashed, fed the same 40 rounds.
        store_free = build_engine(AVOC_SPEC)
        outcome = store_free.process_batch(np.asarray(rows), MODULES)
        got = [r["value"] for r in resumed]
        want = [None if np.isnan(v) else float(v) for v in outcome.values[20:]]
        assert got == pytest.approx(want)


class TestTieredResidency:
    def test_engine_residency_is_bounded(self, tmp_path):
        server = ShardServer(AVOC_SPEC, history_dir=tmp_path,
                             max_resident_series=2)
        server.start()
        try:
            with VoterClient(*server.address) as c:
                values = dict(zip(MODULES, [18.0, 18.1, 17.9]))
                for k in range(6):
                    c.vote(0, values, series=f"s{k}")
                assert len(server.resident_series) <= 2
                assert len(server.series_hosted) == 6
                stats = c.stats()
                assert stats["resident_series"] <= 2
                assert sorted(stats["series"]) == [f"s{k}" for k in range(6)]
        finally:
            server.stop()

    def test_evicted_series_still_answers_reads(self, tmp_path):
        server = ShardServer(AVOC_SPEC, history_dir=tmp_path,
                             max_resident_series=1)
        server.start()
        try:
            with VoterClient(*server.address) as c:
                values = dict(zip(MODULES, [18.0, 18.1, 17.9]))
                c.vote(0, values, series="a")
                snapshot = c.history(series="a")
                c.vote(0, values, series="b")  # evicts a
                assert server.resident_series == ("b",)
                assert c.history(series="a") == pytest.approx(snapshot)
                # Truly unknown series are still refused, not created.
                with pytest.raises(ServiceError, match="unknown series"):
                    c.stats(series="never-seen")
        finally:
            server.stop()

    def test_thrashed_series_vote_bit_identically(self, tmp_path):
        """With room for one engine, two interleaved series evict each
        other on every round — and must still match an engine that
        never left memory, exactly."""
        rows = rows_for(30, seed=5)
        reference = build_engine(AVOC_SPEC)
        outcome = reference.process_batch(np.asarray(rows), MODULES)
        want = [None if np.isnan(v) else float(v) for v in outcome.values]
        server = ShardServer(AVOC_SPEC, history_dir=tmp_path, store="packed",
                             max_resident_series=1)
        server.start()
        try:
            with VoterClient(*server.address) as c:
                got = {"a": [], "b": []}
                for i, row in enumerate(rows):
                    for key in ("a", "b"):
                        response = c.vote(i, dict(zip(MODULES, row)),
                                          series=key)
                        got[key].append(response["value"])
            assert server.tiered_store.evictions > 0
            assert server.tiered_store.rehydrations > 0
        finally:
            server.stop()
        assert got["a"] == want
        assert got["b"] == want

    def test_restart_is_lazy_and_rehydrates_on_demand(self, tmp_path):
        rows = rows_for(10)
        server = ShardServer(AVOC_SPEC, history_dir=tmp_path, store="packed")
        server.start()
        with VoterClient(*server.address) as c:
            for key in ("a", "b", "c"):
                c.vote_batch([{"series": key, "rounds": list(range(10)),
                               "modules": MODULES, "rows": rows}])
            records = c.history(series="b")
        server.stop()
        reborn = ShardServer(AVOC_SPEC, history_dir=tmp_path, store="packed")
        reborn.start()
        try:
            # No eager cold-start: engines come back only when asked for.
            assert reborn.resident_series == ()
            assert reborn.series_hosted == ("a", "b", "c")
            with VoterClient(*reborn.address) as c:
                assert c.history(series="b") == pytest.approx(records)
            assert reborn.resident_series == ("b",)
        finally:
            reborn.stop()

    def test_rejects_bad_residency_bound(self, tmp_path):
        with pytest.raises(ReproError, match="max_resident_series"):
            ShardServer(AVOC_SPEC, history_dir=tmp_path,
                        max_resident_series=0)


class TestStoreKnobs:
    @pytest.mark.parametrize(
        "store,keeps_counter",
        [("packed", True), ("sqlite", True), ("jsonl", False)],
    )
    def test_state_survives_restart(self, tmp_path, store, keeps_counter):
        rows = rows_for(8)
        server = ShardServer(AVOC_SPEC, history_dir=tmp_path, store=store)
        server.start()
        with VoterClient(*server.address) as c:
            for i, row in enumerate(rows):
                c.vote(i, dict(zip(MODULES, row)), series="s")
            before = c.request({"op": "history", "series": "s"})
        server.stop()
        reborn = ShardServer(AVOC_SPEC, history_dir=tmp_path, store=store)
        reborn.start()
        try:
            with VoterClient(*reborn.address) as c:
                after = c.request({"op": "history", "series": "s"})
        finally:
            reborn.stop()
        assert after["records"] == pytest.approx(before["records"])
        assert after["watermark"] == before["watermark"]
        assert before["updates"] > 0
        # The packed and sqlite tiers persist the update counter; the
        # legacy JSONL line format cannot, so it restarts at 0 — the
        # same behavior a restarted shard has always had.
        assert after["updates"] == (before["updates"] if keeps_counter else 0)

    def test_memory_store_needs_no_history_dir(self):
        server = ShardServer(AVOC_SPEC, store="memory", max_resident_series=1)
        server.start()
        try:
            with VoterClient(*server.address) as c:
                values = dict(zip(MODULES, [18.0, 18.1, 17.9]))
                c.vote(0, values, series="a")
                snapshot = c.history(series="a")
                c.vote(0, values, series="b")  # evicts a into the dict tier
                assert c.history(series="a") == pytest.approx(snapshot)
        finally:
            server.stop()

    def test_reset_wipes_the_backing_store(self, tmp_path):
        server = ShardServer(AVOC_SPEC, history_dir=tmp_path, store="packed")
        server.start()
        try:
            with VoterClient(*server.address) as c:
                c.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="s")
                c.reset()
                assert server.series_hosted == ()
                with pytest.raises(ServiceError, match="unknown series"):
                    c.history(series="s")
        finally:
            server.stop()

    def test_unknown_store_kind_is_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="unknown store"):
            ShardServer(AVOC_SPEC, history_dir=tmp_path, store="csv")
        with pytest.raises(ReproError, match="unknown store"):
            ManagedBackend("b0", AVOC_SPEC, history_dir=tmp_path,
                           store="csv", mode="thread")

    def test_durable_store_requires_history_dir(self):
        with pytest.raises(ReproError, match="history directory"):
            ShardServer(AVOC_SPEC, store="packed")

    def test_managed_backend_passes_store_through(self, tmp_path):
        backend = ManagedBackend("b0", AVOC_SPEC, history_dir=tmp_path,
                                 mode="thread", store="packed",
                                 max_resident_series=2)
        with backend:
            with VoterClient(*backend.address) as c:
                c.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="s")
        assert (tmp_path / "packed" / "index.jsonl").exists()


class TestManagedBackendThread:
    def test_lifecycle_and_probes(self, tmp_path):
        backend = ManagedBackend("b0", AVOC_SPEC, history_dir=tmp_path,
                                 mode="thread")
        with backend:
            assert backend.is_alive()
            assert backend.ping()
            host, port = backend.address
            assert port > 0
        assert not backend.is_alive()

    def test_kill_and_restart(self, tmp_path):
        backend = ManagedBackend("b0", AVOC_SPEC, history_dir=tmp_path,
                                 mode="thread")
        backend.start()
        try:
            with VoterClient(*backend.address) as c:
                c.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="s")
            backend.kill()
            assert not backend.ping()
            backend.restart()
            assert backend.restarts == 1
            assert backend.ping()
            with VoterClient(*backend.address) as c:
                assert c.history(series="s")  # records reloaded from disk
        finally:
            backend.stop()


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
class TestManagedBackendProcess:
    def test_subprocess_lifecycle_and_sigkill(self, tmp_path):
        backend = ManagedBackend("b0", AVOC_SPEC, history_dir=tmp_path,
                                 mode="process")
        backend.start()
        try:
            assert backend.pid is not None
            assert backend.ping()
            with VoterClient(*backend.address) as c:
                c.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="s")
                records = c.history(series="s")
            backend.kill()
            assert not backend.is_alive()
            backend.restart()
            assert backend.restarts == 1
            assert backend.ping()
            with VoterClient(*backend.address) as c:
                assert c.history(series="s") == pytest.approx(records)
        finally:
            backend.stop()
