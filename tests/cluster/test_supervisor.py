"""Tests for FusionCluster: topology, rebalance handoff, failover."""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.cluster.supervisor import FusionCluster
from repro.exceptions import ReproError
from repro.runtime.pool import fork_available
from repro.service.client import VoterClient
from repro.vdx.examples import AVOC_SPEC, STANDARD_SPEC
from repro.vdx.factory import build_engine

MODULES = ["E1", "E2", "E3"]


def rows_for(n, seed=21):
    rng = np.random.default_rng(seed)
    return (18.0 + rng.normal(0.0, 0.1, size=(n, len(MODULES)))).tolist()


def wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestTopology:
    def test_describe_and_stats(self):
        with FusionCluster(
            AVOC_SPEC, n_shards=3, replicas=2, mode="thread",
            auto_restart=False,
        ) as cluster:
            topology = cluster.describe()
            assert topology["ring"]["backends"] == ["b0", "b1", "b2"]
            assert topology["ring"]["replicas"] == 2
            assert all(b["alive"] for b in topology["backends"].values())
            host, port = cluster.address
            assert port > 0

    def test_replicas_clamped_to_shard_count(self):
        with FusionCluster(
            AVOC_SPEC, n_shards=2, replicas=3, mode="thread",
            auto_restart=False,
        ) as cluster:
            assert cluster.ring.replicas == 2

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ReproError, match="n_shards"):
            FusionCluster(AVOC_SPEC, n_shards=0)

    def test_known_series_tracks_routing(self):
        with FusionCluster(
            AVOC_SPEC, n_shards=2, replicas=1, mode="thread",
            auto_restart=False,
        ) as cluster:
            with cluster.client() as client:
                client.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])),
                            series="s1")
                client.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])),
                            series="s2")
            assert cluster.gateway.known_series() == ("s1", "s2")


class TestRebalance:
    def test_join_hands_off_history_to_new_owners(self):
        with FusionCluster(
            AVOC_SPEC, n_shards=3, replicas=2, mode="thread",
            auto_restart=False, seed="join-test",
        ) as cluster:
            series = [f"room-{i}" for i in range(12)]
            with cluster.client() as client:
                for key in series:
                    client.vote_batch(
                        [{"series": key, "rounds": list(range(20)),
                          "modules": MODULES, "rows": rows_for(20)}]
                    )
                histories = {
                    key: client.history(series=key) for key in series
                }
                before = {
                    key: cluster.ring.replica_set(key) for key in series
                }
                new_id = cluster.add_backend()
                assert new_id == "b3"
                moved = {
                    key: (before[key], cluster.ring.replica_set(key))
                    for key in series
                    if before[key] != cluster.ring.replica_set(key)
                }
                assert moved, "expected at least one series to move"
                for key, (_, new_set) in moved.items():
                    assert new_id in new_set
                    # The new owner answers history reads with the
                    # records the old owners accumulated.
                    backend = cluster.backends[new_id]
                    with VoterClient(*backend.address) as direct:
                        assert direct.history(series=key) == pytest.approx(
                            histories[key]
                        )
                # The cluster keeps answering votes for every series
                # (the handoff moves history records, not round counts,
                # so a moved series' new primary starts at round 20).
                row = dict(zip(MODULES, rows_for(1)[0]))
                for key in series:
                    assert client.vote(20, row, series=key)["round"] == 20

    def test_leave_drains_series_before_stopping(self):
        with FusionCluster(
            AVOC_SPEC, n_shards=3, replicas=1, mode="thread",
            auto_restart=False, seed="leave-test",
        ) as cluster:
            series = [f"rack-{i}" for i in range(9)]
            with cluster.client() as client:
                for key in series:
                    client.vote_batch(
                        [{"series": key, "rounds": list(range(15)),
                          "modules": MODULES, "rows": rows_for(15)}]
                    )
                histories = {
                    key: client.history(series=key) for key in series
                }
                owned = [
                    key for key in series
                    if cluster.ring.primary(key) == "b1"
                ]
                assert owned, "b1 should own at least one of nine series"
                cluster.remove_backend("b1")
                assert "b1" not in cluster.ring.nodes
                assert "b1" not in cluster.backends
                # With replicas=1, b1 was the only holder: its series
                # histories must have been handed to the new owners.
                for key in owned:
                    assert client.history(series=key) == pytest.approx(
                        histories[key]
                    )

    def test_cannot_remove_last_backend(self):
        with FusionCluster(
            AVOC_SPEC, n_shards=1, replicas=1, mode="thread",
            auto_restart=False,
        ) as cluster:
            with pytest.raises(ReproError, match="last backend"):
                cluster.remove_backend("b0")


class TestFailoverCatchUp:
    """A restarted replica must be caught up before it serves again.

    Uses the Standard scheme (history-weighted mean): its fused value
    depends directly on the per-module records, so a replica that
    missed record updates during an outage would visibly diverge —
    unlike AVOC, whose records saturate at 1.0 on agreeing data and
    masked exactly this bug.
    """

    def test_restarted_primary_is_resynced_not_stale(self):
        n_rounds = 60
        rng = np.random.default_rng(77)
        matrix = 18.0 + 0.05 * rng.standard_normal((n_rounds, len(MODULES)))
        # E3 disagrees for the whole outage window: the survivors keep
        # penalising its record while the victim is down.
        matrix[20:40, 2] = 21.0
        reference = build_engine(STANDARD_SPEC)
        expected = reference.process_batch(matrix, MODULES).values

        def check(client, i):
            result = client.vote(
                i, dict(zip(MODULES, matrix[i].tolist())), series="gh"
            )
            want = expected[i]
            want = None if np.isnan(want) else float(want)
            assert result["value"] == want, f"round {i} diverged"

        # auto_restart off: the outage window is deterministic, and the
        # supervisor's failover path is driven explicitly below.
        with FusionCluster(
            STANDARD_SPEC, n_shards=2, replicas=2, mode="thread",
            auto_restart=False,
        ) as cluster:
            with cluster.client() as client:
                victim = client.route("gh")["replicas"][0]  # the primary
                for i in range(20):
                    check(client, i)
                cluster.backends[victim].kill()
                for i in range(20, 40):
                    check(client, i)  # the survivor carries the majority
                # The supervisor's failover: restart, re-point, resync.
                cluster._failover(victim, cluster.backends[victim])
                assert cluster.backends[victim].restarts == 1
                stats = client.cluster_stats()["backends"][victim]
                assert stats["alive"] and not stats["stale"]
                # The restarted primary answers again — and wins 1-1
                # majority ties — so any missed catch-up shows up here.
                for i in range(40, n_rounds):
                    check(client, i)
                ref_records = reference.voter.history.snapshot()
                assert ref_records["E3"] < 1.0, (
                    "records never drifted; the scenario lost its teeth"
                )
                # Bit-identical records: the catch-up seeded the exact
                # survivor snapshot, not a re-derived approximation.
                with VoterClient(*cluster.backends[victim].address) as direct:
                    assert direct.history(series="gh") == ref_records


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
class TestProcessFailover:
    def test_sigkill_mid_run_loses_no_rounds_and_restarts(self):
        rows = rows_for(120, seed=33)
        reference = build_engine(AVOC_SPEC)
        expected = reference.process_batch(np.asarray(rows), MODULES)
        with FusionCluster(
            AVOC_SPEC, n_shards=3, replicas=2, mode="process",
            probe_interval=0.1,
        ) as cluster:
            with cluster.client() as client:
                for i in range(120):
                    if i == 60:
                        victim_id = client.route("ha")["replicas"][0]
                        os.kill(cluster.backends[victim_id].pid, signal.SIGKILL)
                    result = client.vote(
                        i, dict(zip(MODULES, rows[i])), series="ha"
                    )
                    want = expected.values[i]
                    want = None if np.isnan(want) else float(want)
                    assert result["value"] == want, f"round {i} diverged"
                assert wait_until(
                    lambda: cluster.backends[victim_id].restarts >= 1
                    and cluster.backends[victim_id].ping()
                )
                # The restarted shard resumed from its persisted
                # history and serves reads again.
                stats = client.cluster_stats()
                assert stats["backends"][victim_id]["alive"] is True

    def test_restarted_backend_resumes_history_from_disk(self):
        with FusionCluster(
            AVOC_SPEC, n_shards=2, replicas=2, mode="process",
            probe_interval=0.1,
        ) as cluster:
            with cluster.client() as client:
                client.vote_batch(
                    [{"series": "persist", "rounds": list(range(30)),
                      "modules": MODULES, "rows": rows_for(30, seed=4)}]
                )
                records = client.history(series="persist")
                victim = cluster.backends["b0"]
                os.kill(victim.pid, signal.SIGKILL)
                assert wait_until(
                    lambda: victim.restarts >= 1 and victim.ping()
                )
                with VoterClient(*victim.address) as direct:
                    assert direct.history(series="persist") == pytest.approx(
                        records
                    )
