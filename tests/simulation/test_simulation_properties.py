"""Property-based tests for the discrete-event core."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.events import Simulator


class TestEventOrderingProperties:
    @settings(max_examples=60)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(max_examples=60)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        until=st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
    )
    def test_run_until_is_a_clean_cut(self, delays, until):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run(until=until)
        assert all(d <= until for d in fired)
        remaining = [d for d in delays if d > until]
        assert sim.pending() == len(remaining)
        # Running to completion picks up exactly the rest.
        sim.run()
        assert sorted(fired) == sorted(delays)

    @settings(max_examples=40)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=20,
        ),
        cancel_index=st.integers(min_value=0, max_value=19),
    )
    def test_cancelled_events_never_fire(self, delays, cancel_index):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(delay, lambda i=i: fired.append(i))
            for i, delay in enumerate(delays)
        ]
        victim = cancel_index % len(handles)
        handles[victim].cancel()
        sim.run()
        assert victim not in fired
        assert len(fired) == len(delays) - 1
