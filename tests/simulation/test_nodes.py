"""Tests for sensor, hub and voting-sink nodes."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.fusion.engine import FusionEngine
from repro.fusion.faults import FaultPolicy
from repro.sensors.base import Sensor
from repro.sensors.signal import ConstantSignal
from repro.simulation.events import Simulator
from repro.simulation.network import Link
from repro.simulation.node import Node
from repro.simulation.nodes import HubNode, SensorNode, VotingSinkNode
from repro.voting.stateless import MeanVoter


def wire(sim, src, dst, **link_kwargs):
    link = Link(sim, **link_kwargs)
    src.connect(dst, link)
    return link


def build_pipeline(sim, n_sensors=3, rounds=5, loss=0.0, deadline=0.05,
                   interval=0.125, level=18.0):
    engine = FusionEngine(
        MeanVoter(),
        roster=[f"E{i+1}" for i in range(n_sensors)],
        fault_policy=FaultPolicy(),
    )
    sink = VotingSinkNode(
        sim, "sink", engine, roster=engine.roster, deadline=deadline
    )
    nodes = []
    for i in range(n_sensors):
        sensor = Sensor(f"E{i+1}", ConstantSignal(level + i))
        node = SensorNode(sim, sensor, collector="sink", interval=interval,
                          rounds=rounds)
        wire(sim, node, sink, latency=0.001, loss_probability=loss, seed=i)
        nodes.append(node)
    return nodes, sink, engine


class TestNodeBasics:
    def test_send_without_link_raises(self):
        sim = Simulator()
        node = Node(sim, "lonely")
        with pytest.raises(SimulationError, match="no link"):
            node.send("nowhere", "reading", None)

    def test_received_count(self):
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        wire(sim, a, b)
        a.send("b", "x", 1)
        sim.run()
        assert b.received_count == 1


class TestSensorToSink:
    def test_all_rounds_voted(self):
        sim = Simulator()
        nodes, sink, _ = build_pipeline(sim, rounds=5)
        for node in nodes:
            node.start()
        sim.run(until=10.0)
        sink.flush()
        assert len(sink.results) == 5
        assert all(r.ok for r in sink.results)
        # Mean of 18, 19, 20.
        assert sink.results[0].value == pytest.approx(19.0)

    def test_round_voted_when_all_arrive_before_deadline(self):
        sim = Simulator()
        nodes, sink, _ = build_pipeline(sim, rounds=1, deadline=10.0)
        for node in nodes:
            node.start()
        sim.run(until=0.5)
        # Vote happened long before the 10 s deadline.
        assert len(sink.results) == 1

    def test_lost_reading_becomes_missing_value(self):
        sim = Simulator()
        engine = FusionEngine(
            MeanVoter(), roster=["E1", "E2", "E3"], fault_policy=FaultPolicy()
        )
        sink = VotingSinkNode(sim, "sink", engine, roster=engine.roster,
                              deadline=0.05)
        sensors = [Sensor(f"E{i+1}", ConstantSignal(10.0)) for i in range(3)]
        for i, sensor in enumerate(sensors):
            node = SensorNode(sim, sensor, "sink", interval=1.0, rounds=1)
            # E3's link drops everything.
            loss = 1.0 if i == 2 else 0.0
            wire(sim, node, sink, loss_probability=loss)
            node.start()
        sim.run(until=2.0)
        sink.flush()
        assert len(sink.results) == 1
        outcome = sink.results[0].outcome
        assert "E3" not in outcome.agreement  # voted with 2 of 3 values
        assert sink.results[0].value == pytest.approx(10.0)

    def test_late_reading_for_voted_round_ignored(self):
        sim = Simulator()
        engine = FusionEngine(MeanVoter(), roster=["E1", "E2"])
        sink = VotingSinkNode(sim, "sink", engine, roster=["E1", "E2"],
                              deadline=0.01)
        fast = SensorNode(sim, Sensor("E1", ConstantSignal(1.0)), "sink",
                          interval=1.0, rounds=1)
        slow = SensorNode(sim, Sensor("E2", ConstantSignal(3.0)), "sink",
                          interval=1.0, rounds=1)
        wire(sim, fast, sink, latency=0.001)
        wire(sim, slow, sink, latency=0.5)  # arrives after the deadline
        fast.start()
        slow.start()
        sim.run(until=2.0)
        assert len(sink.results) == 1
        # Voted on E1 alone at the deadline; E2's late packet ignored.
        assert sink.results[0].value == 1.0


class TestHub:
    def test_hub_forwards(self):
        sim = Simulator()
        engine = FusionEngine(MeanVoter(), roster=["E1"])
        sink = VotingSinkNode(sim, "sink", engine, roster=["E1"], deadline=0.05)
        hub = HubNode(sim, "hub", sink="sink")
        wire(sim, hub, sink)
        node = SensorNode(sim, Sensor("E1", ConstantSignal(7.0)), "hub",
                          interval=1.0, rounds=2)
        wire(sim, node, hub)
        node.start()
        sim.run(until=3.0)
        sink.flush()
        assert hub.forwarded == 2
        assert [r.value for r in sink.results] == [7.0, 7.0]
