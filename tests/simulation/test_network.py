"""Tests for simulated network links."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.events import Simulator
from repro.simulation.messages import Message
from repro.simulation.network import Link


class Receiver:
    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def receive(self, message):
        self.received.append((self.sim.now, message))


def msg(payload="x"):
    return Message(sender="a", recipient="b", kind="reading", payload=payload)


class TestDelivery:
    def test_latency_applied(self):
        sim = Simulator()
        dst = Receiver(sim)
        link = Link(sim, latency=0.25)
        link.transmit(msg(), dst)
        sim.run()
        assert dst.received[0][0] == pytest.approx(0.25)

    def test_jitter_bounded(self):
        sim = Simulator()
        dst = Receiver(sim)
        link = Link(sim, latency=0.1, jitter=0.05, seed=3)
        for _ in range(50):
            link.transmit(msg(), dst)
        sim.run()
        times = [t for t, _ in dst.received]
        assert min(times) >= 0.1
        assert max(times) <= 0.15 + 1e-9

    def test_lossless_by_default(self):
        sim = Simulator()
        dst = Receiver(sim)
        link = Link(sim)
        for _ in range(20):
            assert link.transmit(msg(), dst)
        sim.run()
        assert len(dst.received) == 20
        assert link.loss_rate == 0.0

    def test_loss_rate_approximates_probability(self):
        sim = Simulator()
        dst = Receiver(sim)
        link = Link(sim, loss_probability=0.3, seed=5)
        for _ in range(2000):
            link.transmit(msg(), dst)
        sim.run()
        assert 0.25 < link.loss_rate < 0.35
        assert len(dst.received) == link.delivered

    def test_total_loss(self):
        sim = Simulator()
        dst = Receiver(sim)
        link = Link(sim, loss_probability=1.0)
        assert not link.transmit(msg(), dst)
        sim.run()
        assert dst.received == []


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            Link(Simulator(), latency=-1.0)

    def test_bad_loss_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            Link(Simulator(), loss_probability=2.0)
