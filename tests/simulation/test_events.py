"""Tests for the discrete-event simulation core."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("late"))
        sim.schedule(1.0, lambda: log.append("early"))
        sim.run()
        assert log == ["early", "late"]

    def test_equal_times_fire_in_scheduling_order(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(1.0, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 2.0)]


class TestRunControl:
    def test_until_stops_and_advances_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now == 5.0
        sim.run()  # remaining event still fires later
        assert log == [1, 10]

    def test_cancellation(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append("cancelled"))
        sim.schedule(2.0, lambda: log.append("kept"))
        handle.cancel()
        sim.run()
        assert log == ["kept"]
        assert handle.cancelled

    def test_pending_counts_uncancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending() == 1

    def test_runaway_loop_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.1, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 3
