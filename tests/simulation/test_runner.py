"""Tests for the end-to-end simulation runners and topologies."""

from __future__ import annotations

import numpy as np

from repro.datasets.ble_uc2 import UC2Config
from repro.datasets.light_uc1 import UC1Config, build_uc1_array
from repro.fusion.engine import FusionEngine
from repro.simulation.runner import run_uc1_simulation, run_uc2_simulation
from repro.simulation.topology import build_uc1_topology, build_uc2_topology
from repro.voting.stateless import MeanVoter


class TestUc1Topology:
    def test_fig1_wiring(self):
        array = build_uc1_array(UC1Config(n_rounds=10))
        engine = FusionEngine(MeanVoter(), roster=array.module_names)
        topology = build_uc1_topology(array, engine, rounds=10)
        assert topology.hub is not None
        assert "wifi" in topology.links
        assert sum(1 for name in topology.links if name.startswith("eth-")) == 5
        assert len(topology.sensor_nodes) == 5


class TestUc1Simulation:
    def test_outputs_match_round_count(self):
        report = run_uc1_simulation(algorithm="average", rounds=50)
        assert report.n_rounds == 50
        assert report.outputs.shape == (50,)

    def test_outputs_in_light_band(self):
        report = run_uc1_simulation(algorithm="avoc", rounds=50)
        finite = report.outputs[~np.isnan(report.outputs)]
        assert np.all(finite > 16.0) and np.all(finite < 21.0)

    def test_wifi_loss_observed(self):
        report = run_uc1_simulation(algorithm="average", rounds=300,
                                    wifi_loss=0.05)
        assert 0.02 < report.link_stats["wifi"]["loss_rate"] < 0.09

    def test_lossless_run_has_no_degraded_rounds(self):
        report = run_uc1_simulation(algorithm="average", rounds=50,
                                    wifi_loss=0.0)
        assert report.rounds_degraded == 0

    def test_heavy_loss_degrades_rounds(self):
        report = run_uc1_simulation(algorithm="average", rounds=100,
                                    wifi_loss=0.6)
        assert report.rounds_degraded > 0


class TestUc2PositioningSimulation:
    def test_end_to_end_positioning(self):
        from repro.simulation.runner import run_uc2_positioning_simulation

        report = run_uc2_positioning_simulation(algorithm="average")
        assert report.calls.shape == report.truth.shape
        assert report.accuracy > 0.85
        assert report.unstable_calls < 297 / 2
        # The trajectory starts at stack A and ends at stack B.
        assert report.calls[0] == "A"
        assert report.calls[-1] == "B"

    def test_transport_loss_degrades_accuracy_gracefully(self):
        from repro.simulation.runner import run_uc2_positioning_simulation

        lossless = run_uc2_positioning_simulation("average", ble_loss=0.0)
        lossy = run_uc2_positioning_simulation("average", ble_loss=0.4)
        # Heavy transport loss costs a little accuracy but does not
        # break the application (redundancy absorbs it).
        assert lossy.accuracy > 0.75
        assert lossless.accuracy >= lossy.accuracy - 0.05


class TestUc2Simulation:
    def test_full_traverse(self):
        report = run_uc2_simulation(algorithm="average", stack="A")
        assert report.n_rounds == 297

    def test_stack_a_weakens_along_track(self):
        report = run_uc2_simulation(algorithm="average", stack="A")
        start = np.nanmean(report.outputs[:30])
        end = np.nanmean(report.outputs[-30:])
        assert start > end

    def test_stack_b_strengthens_along_track(self):
        report = run_uc2_simulation(algorithm="average", stack="B")
        assert np.nanmean(report.outputs[-30:]) > np.nanmean(report.outputs[:30])

    def test_uc2_topology_is_hubless(self):
        config = UC2Config()
        from repro.datasets.ble_uc2 import build_uc2_stack

        array = build_uc2_stack(config, "A")
        engine = FusionEngine(MeanVoter(), roster=array.module_names)
        topology = build_uc2_topology(array, engine, sample_interval=0.5,
                                      rounds=5)
        assert topology.hub is None
        assert len(topology.links) == 9
