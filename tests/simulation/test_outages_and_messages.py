"""Tests for node outages and message types."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.fusion.engine import FusionEngine
from repro.fusion.faults import FaultPolicy
from repro.sensors.base import Sensor
from repro.sensors.signal import ConstantSignal
from repro.simulation.events import Simulator
from repro.simulation.messages import Message, ReadingPayload
from repro.simulation.network import Link
from repro.simulation.nodes import SensorNode, VotingSinkNode
from repro.voting.stateless import MeanVoter


class TestMessages:
    def test_reading_payload_fields(self):
        payload = ReadingPayload(module="E1", round_id=3, value=18.0,
                                 sampled_at=0.375)
        assert payload.module == "E1"
        assert payload.round_id == 3

    def test_message_defaults(self):
        message = Message(sender="a", recipient="b", kind="reading", payload=None)
        assert message.headers == {}
        assert message.sent_at == 0.0

    def test_messages_are_immutable(self):
        message = Message(sender="a", recipient="b", kind="x", payload=1)
        with pytest.raises(AttributeError):
            message.kind = "y"


class TestSensorOutages:
    def _build(self, outages):
        sim = Simulator()
        engine = FusionEngine(
            MeanVoter(), roster=["E1", "E2"],
            fault_policy=FaultPolicy(on_missing_majority="skip",
                                     missing_tolerance=0.6),
        )
        sink = VotingSinkNode(sim, "sink", engine, roster=["E1", "E2"],
                              deadline=0.05)
        steady = SensorNode(sim, Sensor("E1", ConstantSignal(10.0)), "sink",
                            interval=1.0, rounds=6)
        flaky = SensorNode(sim, Sensor("E2", ConstantSignal(20.0)), "sink",
                           interval=1.0, rounds=6, outages=outages)
        for node in (steady, flaky):
            link = Link(sim, latency=0.001)
            node.connect(sink, link)
            node.start()
        sim.run(until=10.0)
        sink.flush()
        return sink, flaky

    def test_outage_window_suppresses_readings(self):
        sink, flaky = self._build(outages=[(2.0, 4.0)])
        assert flaky.rounds_skipped == 2  # ticks at t=2 and t=3
        values = [r.value for r in sink.results]
        # During the outage only E1 reports: fused value is 10, not 15.
        assert values[0] == pytest.approx(15.0)
        assert values[2] == pytest.approx(10.0)
        assert values[3] == pytest.approx(10.0)
        assert values[5] == pytest.approx(15.0)

    def test_no_outage_by_default(self):
        sink, flaky = self._build(outages=[])
        assert flaky.rounds_skipped == 0
        assert all(r.value == pytest.approx(15.0) for r in sink.results)

    def test_inverted_window_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="inverted"):
            SensorNode(sim, Sensor("E1", ConstantSignal(1.0)), "sink",
                       interval=1.0, outages=[(5.0, 2.0)])

    def test_in_outage_boundaries(self):
        sim = Simulator()
        node = SensorNode(sim, Sensor("E1", ConstantSignal(1.0)), "sink",
                          interval=1.0, outages=[(1.0, 2.0)])
        assert not node.in_outage(0.99)
        assert node.in_outage(1.0)
        assert node.in_outage(1.99)
        assert not node.in_outage(2.0)
