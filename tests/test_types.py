"""Tests for the core value types."""

from __future__ import annotations


import pytest

from repro.exceptions import EmptyRoundError
from repro.types import MISSING, Reading, Round, Series, VoteOutcome, is_missing


class TestIsMissing:
    def test_none_is_missing(self):
        assert is_missing(None)

    def test_nan_is_missing(self):
        assert is_missing(float("nan"))
        assert is_missing(MISSING)

    def test_zero_is_present(self):
        assert not is_missing(0.0)
        assert not is_missing(0)

    def test_empty_string_is_present(self):
        assert not is_missing("")

    def test_regular_values_are_present(self):
        assert not is_missing(18.5)
        assert not is_missing("open")


class TestReading:
    def test_missing_property(self):
        assert Reading("E1", None).missing
        assert Reading("E1", float("nan")).missing
        assert not Reading("E1", 18.0).missing

    def test_frozen(self):
        reading = Reading("E1", 18.0)
        with pytest.raises(AttributeError):
            reading.value = 19.0


class TestRound:
    def test_from_values_names_modules(self):
        r = Round.from_values(3, [1.0, 2.0, 3.0])
        assert r.modules == ("E1", "E2", "E3")
        assert r.number == 3

    def test_from_values_custom_prefix(self):
        r = Round.from_values(0, [1.0, 2.0], prefix="A", start=5)
        assert r.modules == ("A5", "A6")

    def test_from_mapping(self):
        r = Round.from_mapping(1, {"a": 1.0, "b": None}, timestamp=2.5)
        assert r.value_of("a") == 1.0
        assert r.value_of("b") is None
        assert r.readings[0].timestamp == 2.5

    def test_duplicate_module_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Round(0, (Reading("E1", 1.0), Reading("E1", 2.0)))

    def test_present_filters_missing(self):
        r = Round.from_mapping(0, {"a": 1.0, "b": None, "c": float("nan")})
        assert [x.module for x in r.present] == ["a"]
        assert r.submitted_count == 1

    def test_value_of_unknown_module(self):
        r = Round.from_values(0, [1.0])
        with pytest.raises(KeyError):
            r.value_of("nope")

    def test_require_nonempty_raises_on_all_missing(self):
        r = Round.from_mapping(0, {"a": None, "b": None})
        with pytest.raises(EmptyRoundError):
            r.require_nonempty()

    def test_require_nonempty_passes_with_one_value(self):
        r = Round.from_mapping(0, {"a": 1.0, "b": None})
        r.require_nonempty()


class TestVoteOutcome:
    def test_defaults(self):
        o = VoteOutcome(round_number=0, value=1.0)
        assert o.quorum_reached
        assert not o.used_bootstrap
        assert o.eliminated == ()

    def test_carries_diagnostics(self):
        o = VoteOutcome(round_number=1, value=2.0, diagnostics={"k": 3})
        assert o.diagnostics["k"] == 3


class TestSeries:
    def test_append_and_index(self):
        s = Series("out")
        s.append(1.0)
        s.append(2.0)
        assert len(s) == 2
        assert s[1] == 2.0
