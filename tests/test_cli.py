"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.vdx.examples import LISTING_1


class TestAlgorithms:
    def test_lists_all(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("avoc", "hybrid", "standard", "clustering"):
            assert name in out


class TestCompare:
    def test_default_algorithms(self, capsys):
        assert main(["compare", "--values", "18.0,18.1,17.9,24.0,18.05"]) == 0
        out = capsys.readouterr().out
        assert "avoc" in out
        assert "E4" in out  # eliminated column

    def test_algorithm_subset(self, capsys):
        assert main(
            ["compare", "--values", "1,2,3", "--algorithms", "average,median"]
        ) == 0
        out = capsys.readouterr().out
        assert "average" in out and "avoc" not in out


class TestFig6:
    def test_small_run(self, capsys):
        assert main(["fig6", "--rounds", "120"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6-a" in out
        assert "Fig. 6-f" in out
        assert "convergence boost" in out.lower()

    def test_export_writes_csvs(self, tmp_path, capsys):
        assert main(
            ["fig6", "--rounds", "80", "--export", str(tmp_path / "out")]
        ) == 0
        written = sorted(p.name for p in (tmp_path / "out").glob("*.csv"))
        assert "fig6a_raw.csv" in written
        assert "fig6e_diffs.csv" in written
        header = (tmp_path / "out" / "fig6e_diffs.csv").read_text().splitlines()[0]
        assert header.startswith("round,")
        assert "avoc" in header


class TestFig7:
    def test_full_run(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7-a" in out
        assert "unstable calls" in out

    def test_export_writes_csvs(self, tmp_path, capsys):
        assert main(["fig7", "--export", str(tmp_path / "out")]) == 0
        written = sorted(p.name for p in (tmp_path / "out").glob("*.csv"))
        assert "fig7_single_beacon.csv" in written
        assert "fig7_avoc_voting.csv" in written


class TestDiagnose:
    def test_flags_faulty_sensor(self, tmp_path, uc1_small_faulty, capsys):
        from repro.datasets.loader import save_csv

        path = tmp_path / "faulty.csv"
        save_csv(uc1_small_faulty.slice(0, 80), path)
        assert main(["diagnose", str(path)]) == 0
        out = capsys.readouterr().out
        assert "offset" in out
        assert "attention: E4" in out

    def test_healthy_dataset(self, tmp_path, uc1_small, capsys):
        from repro.datasets.loader import save_csv

        path = tmp_path / "healthy.csv"
        save_csv(uc1_small.slice(0, 80), path)
        assert main(["diagnose", str(path)]) == 0
        assert "all modules healthy" in capsys.readouterr().out


class TestVdx:
    def test_describe(self, capsys):
        assert main(["vdx", "--describe"]) == 0
        assert "algorithm_name" in capsys.readouterr().out

    def test_validate_good_file(self, tmp_path, capsys):
        path = tmp_path / "avoc.json"
        path.write_text(json.dumps(LISTING_1))
        assert main(["vdx", str(path)]) == 0
        out = capsys.readouterr().out
        assert "VALID" in out
        assert "AvocVoter" in out

    def test_validate_bad_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"algorithm_name": "x", "history": "WRONG"}))
        assert main(["vdx", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_no_file_no_describe_errors(self, capsys):
        assert main(["vdx"]) == 2


class TestSimulate:
    def test_uc1(self, capsys):
        assert main(["simulate", "uc1", "--rounds", "40"]) == 0
        out = capsys.readouterr().out
        assert "wifi" in out
        assert "rounds: 40" in out


class TestAdversarial:
    def test_markdown_to_stdout(self, capsys):
        assert main([
            "adversarial", "--scenarios", "symbol_burst",
            "--rounds", "80", "--severities", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "### Categorical scenarios" in out
        assert "probabilistic" in out

    def test_json_to_file(self, tmp_path, capsys):
        target = tmp_path / "ranking.json"
        assert main([
            "adversarial", "--scenarios", "symbol_burst",
            "--algorithms", "categorical_majority,probabilistic",
            "--rounds", "80", "--severities", "3",
            "--format", "json", "--output", str(target),
        ]) == 0
        assert "wrote adversarial ranking" in capsys.readouterr().out
        payload = json.loads(target.read_text())
        assert payload["winners"]["symbol_burst"] == "probabilistic"


class TestLatency:
    def test_reports_microseconds(self, capsys):
        assert main(["latency", "--iterations", "50"]) == 0
        out = capsys.readouterr().out
        assert "µs / round" in out
        assert "avoc" in out


class TestServe:
    def test_once_binds_and_exits(self, capsys):
        assert main(["serve", "--once"]) == 0
        out = capsys.readouterr().out
        assert "listening on 127.0.0.1:" in out
        assert "AVOC" in out

    def test_custom_spec(self, tmp_path, capsys):
        from repro.vdx.examples import STANDARD_SPEC

        path = tmp_path / "standard.json"
        STANDARD_SPEC.save(path)
        assert main(["serve", "--once", "--spec", str(path)]) == 0
        assert "Standard" in capsys.readouterr().out


class TestFuse:
    @pytest.fixture()
    def csv_path(self, tmp_path, uc1_small):
        from repro.datasets.loader import save_csv

        path = tmp_path / "uc1.csv"
        save_csv(uc1_small.slice(0, 20), path)
        return path

    def test_fuse_to_stdout(self, csv_path, capsys):
        assert main(["fuse", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("round,value,status,excluded")
        assert out.count("\n") == 21  # header + 20 rounds

    def test_fuse_to_file(self, csv_path, tmp_path, capsys):
        out_path = tmp_path / "fused.csv"
        assert main(["fuse", str(csv_path), "--output", str(out_path)]) == 0
        assert out_path.exists()
        lines = out_path.read_text().splitlines()
        assert len(lines) == 21

    def test_fuse_with_spec(self, csv_path, tmp_path, capsys):
        from repro.vdx.examples import STANDARD_SPEC

        spec_path = tmp_path / "standard.json"
        STANDARD_SPEC.save(spec_path)
        assert main(["fuse", str(csv_path), "--spec", str(spec_path)]) == 0
        assert "ok" in capsys.readouterr().out


class TestShelf:
    def test_default_run(self, capsys):
        assert main(["shelf", "--rounds", "150"]) == 0
        out = capsys.readouterr().out
        assert "fused occupancy accuracy" in out
        assert "DEFECTIVE" in out

    def test_stateless_history_mode(self, capsys):
        assert main(["shelf", "--rounds", "80", "--history", "none"]) == 0
        out = capsys.readouterr().out
        assert "history=none" in out


class TestTune:
    def test_grid_tune_prints_leaderboard(self, capsys):
        assert main(["tune", "--rounds", "80", "--points", "2"]) == 0
        out = capsys.readouterr().out
        assert "evaluated" in out
        assert "best:" in out

    def test_random_method_is_seeded(self, capsys):
        args = ["tune", "--rounds", "60", "--method", "random",
                "--trials", "3", "--seed", "5"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_live_tune_against_a_cluster(self, capsys):
        from repro.cluster.supervisor import FusionCluster
        from repro.vdx.examples import AVOC_SPEC

        with FusionCluster(
            AVOC_SPEC, n_shards=2, replicas=2, mode="thread",
            auto_restart=False,
        ) as cluster:
            address = "%s:%d" % cluster.address
            assert main(
                ["tune", "--live", address, "--method", "random",
                 "--trials", "8", "--rounds", "60"]
            ) == 0
        out = capsys.readouterr().out
        assert "live against " + address in out
        assert "cache hits" in out
        assert "best:" in out

    def test_live_rejects_a_malformed_address(self, capsys):
        assert main(["tune", "--live", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().out


class TestDashboard:
    def test_once_boots_cluster_and_exits(self, capsys):
        assert main(["dashboard", "--once", "--mode", "thread"]) == 0
        out = capsys.readouterr().out
        assert "operations dashboard at http://127.0.0.1:" in out
        assert "/api/stream" in out
        assert "shards-down" in out

    def test_attach_to_running_gateway(self, capsys):
        from repro.cluster.supervisor import FusionCluster
        from repro.vdx.examples import AVOC_SPEC

        with FusionCluster(
            AVOC_SPEC, n_shards=2, replicas=1, mode="thread",
            auto_restart=False,
        ) as cluster:
            address = "%s:%d" % cluster.address
            assert main(
                ["dashboard", "--once", "--gateway", address]
            ) == 0
        out = capsys.readouterr().out
        assert f"(cluster: {address})" in out
        # Remote topology unknown: no shards-down rule.
        assert "shards-down" not in out

    def test_rules_file_overrides_the_stock_set(self, tmp_path, capsys):
        rules = [{"name": "my-rule", "metric": "cluster_backends_alive",
                  "op": "<", "threshold": 1.0}]
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(rules))
        assert main(
            ["dashboard", "--once", "--mode", "thread",
             "--rules", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "alert rules: my-rule" in out

    def test_gateway_rejects_a_malformed_address(self, capsys):
        assert main(["dashboard", "--once", "--gateway", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().out

    def test_metrics_flag_prints_per_shard_sections(self, capsys):
        assert main(
            ["--metrics", "dashboard", "--once", "--mode", "thread",
             "--shards", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "== shard metrics [b0] ==" in out
        assert "== shard metrics [b1] ==" in out


class TestClusterMetrics:
    def test_metrics_flag_prints_per_shard_sections(self, capsys):
        assert main(
            ["--metrics", "cluster", "--once", "--mode", "thread",
             "--shards", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "== shard metrics [b0] ==" in out
        assert "== shard metrics [b1] ==" in out
        assert "== metrics ==" in out  # the local registry still prints
