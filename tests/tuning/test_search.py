"""Tests for grid and genetic search."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.tuning.genetic import genetic_search
from repro.tuning.search import grid_search
from repro.tuning.space import Choice, Continuous, ParameterSpace


def quadratic_objective(target_error=0.1, preferred="MEDIAN"):
    """Synthetic bowl: minimum at error=target, collation=preferred."""

    def evaluate(params):
        penalty = 0.0 if params.collation == preferred else 1.0
        return (params.error - target_error) ** 2 * 100 + penalty

    return evaluate


def space():
    return ParameterSpace(
        {
            "error": Continuous(0.01, 0.3),
            "collation": Choice(["MEAN", "MEDIAN", "MEAN_NEAREST_NEIGHBOR"]),
        }
    )


class TestGridSearch:
    def test_finds_grid_optimum(self):
        result = grid_search(quadratic_objective(), space(), points_per_dimension=30)
        assert result.best_assignment["collation"] == "MEDIAN"
        assert result.best_assignment["error"] == pytest.approx(0.1, abs=0.01)
        assert result.n_trials == 30 * 3

    def test_best_params_are_valid_voterparams(self):
        result = grid_search(quadratic_objective(), space(), points_per_dimension=5)
        assert result.best_params.error == result.best_assignment["error"]

    def test_max_trials_truncates(self):
        result = grid_search(
            quadratic_objective(), space(), points_per_dimension=30, max_trials=10
        )
        assert result.n_trials == 10

    def test_top_sorted(self):
        result = grid_search(quadratic_objective(), space(), points_per_dimension=5)
        top = result.top(3)
        assert top[0].score <= top[1].score <= top[2].score
        assert top[0].score == result.best_score

    def test_nan_scores_treated_as_infinite(self):
        def nan_objective(params):
            return float("nan") if params.collation == "MEAN" else params.error

        result = grid_search(nan_objective, space(), points_per_dimension=3)
        assert result.best_assignment["collation"] != "MEAN"

    def test_invalid_grid_corners_skipped(self):
        # learning_rate=0 is invalid; the grid must skip it, not crash.
        bad_space = ParameterSpace({"learning_rate": Continuous(0.0, 1.0)})
        result = grid_search(lambda p: p.learning_rate, bad_space, 5)
        assert result.best_assignment["learning_rate"] > 0.0


class TestGeneticSearch:
    def test_converges_to_optimum_region(self):
        result = genetic_search(
            quadratic_objective(),
            space(),
            population_size=20,
            generations=15,
            seed=3,
        )
        assert result.best_assignment["collation"] == "MEDIAN"
        assert result.best_assignment["error"] == pytest.approx(0.1, abs=0.03)

    def test_deterministic_per_seed(self):
        a = genetic_search(quadratic_objective(), space(), seed=7)
        b = genetic_search(quadratic_objective(), space(), seed=7)
        assert a.best_assignment == b.best_assignment
        assert a.best_score == b.best_score

    def test_beats_random_first_generation(self):
        result = genetic_search(
            quadratic_objective(), space(), population_size=12, generations=10,
            seed=1,
        )
        first_generation = result.trials[:12]
        assert result.best_score <= min(t.score for t in first_generation)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            genetic_search(quadratic_objective(), space(), population_size=2)
        with pytest.raises(ConfigurationError):
            genetic_search(quadratic_objective(), space(), generations=0)

    def test_trials_count(self):
        result = genetic_search(
            quadratic_objective(), space(), population_size=8, generations=4,
        )
        assert result.n_trials == 8 * 4


class TestRandomSearch:
    def test_finds_optimum_region(self):
        from repro.tuning.random_search import random_search

        result = random_search(quadratic_objective(), space(), n_trials=200,
                               seed=11)
        assert result.best_assignment["collation"] == "MEDIAN"
        assert result.best_assignment["error"] == pytest.approx(0.1, abs=0.03)

    def test_deterministic_per_seed(self):
        from repro.tuning.random_search import random_search

        a = random_search(quadratic_objective(), space(), n_trials=30, seed=5)
        b = random_search(quadratic_objective(), space(), n_trials=30, seed=5)
        assert a.best_assignment == b.best_assignment

    def test_trial_budget_respected(self):
        from repro.tuning.random_search import random_search

        result = random_search(quadratic_objective(), space(), n_trials=17)
        assert result.n_trials == 17

    def test_validation(self):
        from repro.tuning.random_search import random_search

        with pytest.raises(ConfigurationError):
            random_search(quadratic_objective(), space(), n_trials=0)

    def test_genetic_beats_random_at_equal_budget(self):
        from repro.tuning.genetic import genetic_search
        from repro.tuning.random_search import random_search

        budget = 80  # 8 individuals x 10 generations
        genetic = genetic_search(
            quadratic_objective(), space(), population_size=8,
            generations=10, seed=2,
        )
        random = random_search(quadratic_objective(), space(),
                               n_trials=budget, seed=2)
        assert genetic.n_trials == budget
        assert genetic.best_score <= random.best_score + 0.05


class TestRealObjectives:
    def test_uc1_objective_prefers_working_configuration(self, uc1_small,
                                                          uc1_small_faulty):
        from repro.tuning.objective import uc1_fault_recovery_objective

        objective = uc1_fault_recovery_objective(
            uc1_small.slice(0, 120), uc1_small_faulty.slice(0, 120)
        )
        sane = space().to_params({"error": 0.05, "collation": "MEAN"})
        # A 1 % threshold cannot even see the sensors agree: everything
        # disagrees, output quality collapses.
        absurd = space().to_params({"error": 0.01, "collation": "MEAN"})
        assert objective(sane) < objective(absurd)

    def test_uc2_objective_scores_instability(self, uc2_dataset):
        from repro.tuning.objective import uc2_stability_objective

        objective = uc2_stability_objective(uc2_dataset, algorithm="avoc")
        mean_params = space().to_params({"error": 0.10, "collation": "MEAN"})
        score = objective(mean_params)
        assert 0 <= score <= 297
