"""Tests for parameter search spaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.tuning.space import Choice, Continuous, ParameterSpace
from repro.voting.base import VoterParams


class TestDimensions:
    def test_continuous_sample_in_range(self):
        dim = Continuous(0.01, 0.2)
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert 0.01 <= dim.sample(rng) <= 0.2

    def test_continuous_clip(self):
        dim = Continuous(0.0, 1.0)
        assert dim.clip(-5.0) == 0.0
        assert dim.clip(5.0) == 1.0
        assert dim.clip(0.5) == 0.5

    def test_continuous_grid(self):
        assert Continuous(0.0, 1.0).grid(3) == [0.0, 0.5, 1.0]
        assert Continuous(0.0, 1.0).grid(1) == [0.5]

    def test_continuous_validation(self):
        with pytest.raises(ConfigurationError):
            Continuous(1.0, 1.0)

    def test_choice_sample_and_grid(self):
        dim = Choice(["a", "b"])
        rng = np.random.default_rng(0)
        assert dim.sample(rng) in ("a", "b")
        assert dim.grid(99) == ["a", "b"]

    def test_choice_validation(self):
        with pytest.raises(ConfigurationError):
            Choice([])


class TestParameterSpace:
    def space(self):
        return ParameterSpace(
            {
                "error": Continuous(0.01, 0.2),
                "collation": Choice(["MEAN", "MEDIAN"]),
            }
        )

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown VoterParams field"):
            ParameterSpace({"errror": Continuous(0.0, 1.0)})

    def test_empty_space_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterSpace({})

    def test_non_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterSpace({"error": [0.01, 0.05]})

    def test_grid_is_cartesian(self):
        assignments = list(self.space().grid(points_per_dimension=3))
        assert len(assignments) == 3 * 2
        assert {a["collation"] for a in assignments} == {"MEAN", "MEDIAN"}

    def test_sample_covers_dimensions(self):
        assignment = self.space().sample(np.random.default_rng(1))
        assert set(assignment) == {"error", "collation"}

    def test_to_params_layers_over_base(self):
        base = VoterParams(soft_threshold=4.0)
        space = ParameterSpace({"error": Continuous(0.01, 0.2)}, base=base)
        params = space.to_params({"error": 0.1})
        assert params.error == 0.1
        assert params.soft_threshold == 4.0

    def test_to_params_validates(self):
        space = ParameterSpace({"learning_rate": Continuous(0.0, 2.0)})
        with pytest.raises(ConfigurationError):
            space.to_params({"learning_rate": 1.5})

    def test_clip_only_touches_continuous(self):
        clipped = self.space().clip({"error": 9.0, "collation": "MEAN"})
        assert clipped["error"] == 0.2
        assert clipped["collation"] == "MEAN"
