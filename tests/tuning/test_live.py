"""Live tuning: bit-identical rankings, memoization, spec round-trips.

The headline contract: a live search against a running cluster returns
trial scores **bit-identical** to the offline objective, at any shard
count, because every trial's spec round-trips to the exact
:class:`VoterParams` being scored and the cluster replay path equals a
direct in-process fuse.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster.supervisor import FusionCluster
from repro.datasets.injection import offset_fault
from repro.datasets.light_uc1 import UC1Config, generate_uc1_dataset
from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry
from repro.tuning import (
    Choice,
    LiveObjective,
    ParameterSpace,
    live_base_params,
    live_grid_search,
    live_random_search,
    random_search,
    spec_for_params,
    uc1_fault_recovery_objective,
)
from repro.tuning.search import grid_search
from repro.vdx.examples import AVOC_SPEC
from repro.vdx.factory import build_voter
from repro.voting.base import VoterParams

ROUNDS = 80


@pytest.fixture(scope="module")
def scenario():
    clean = generate_uc1_dataset(UC1Config(n_rounds=ROUNDS))
    return clean, offset_fault(clean, "E4", 6.0)


@pytest.fixture(scope="module")
def cluster():
    with FusionCluster(
        AVOC_SPEC, n_shards=2, replicas=2, mode="thread", auto_restart=False
    ) as running:
        yield running


def small_space(algorithm="avoc"):
    return ParameterSpace(
        {
            "error": Choice([0.03, 0.06, 0.12]),
            "collation": Choice(["MEAN", "MEDIAN"]),
        },
        base=live_base_params(algorithm),
    )


class TestSpecRoundTrip:
    @pytest.mark.parametrize(
        "algorithm", ["avoc", "hybrid", "standard", "me", "sdt"]
    )
    def test_base_params_survive_for_every_algorithm(self, algorithm):
        base = live_base_params(algorithm)
        spec = spec_for_params(algorithm, base)
        assert build_voter(spec).params == base

    def test_schema_carried_fields_round_trip(self):
        params = replace(
            live_base_params("avoc"),
            error=0.11, soft_threshold=3.5, collation="MEDIAN",
            reward=0.2, penalty=0.4, learning_rate=0.15,
        )
        spec = spec_for_params("avoc", params)
        assert build_voter(spec).params == params

    def test_inexpressible_params_fail_loudly(self):
        params = replace(live_base_params("avoc"), min_margin=0.5)
        with pytest.raises(ConfigurationError, match="min_margin"):
            spec_for_params("avoc", params)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot express"):
            live_base_params("average")


class TestLiveObjective:
    def test_dataset_length_mismatch_rejected(self, scenario, cluster):
        clean, _ = scenario
        shorter = generate_uc1_dataset(UC1Config(n_rounds=ROUNDS // 2))
        with pytest.raises(ConfigurationError, match="equal length"):
            LiveObjective(cluster.gateway.dispatch, clean, shorter)

    def test_unsupported_algorithm_fails_before_any_trial(
        self, scenario, cluster
    ):
        clean, faulty = scenario
        with pytest.raises(ConfigurationError, match="cannot express"):
            LiveObjective(
                cluster.gateway.dispatch, clean, faulty, algorithm="average"
            )

    def test_memoization_skips_repeat_cluster_trips(self, scenario, cluster):
        clean, faulty = scenario
        objective = LiveObjective(
            cluster.gateway.dispatch, clean, faulty,
            registry=MetricsRegistry(),
        )
        params = live_base_params("avoc")
        first = objective(params)
        second = objective(params)
        assert second == first
        assert objective.trials == 1
        assert objective.cache_hits == 1

    def test_tuning_counters_are_exported(self, scenario, cluster):
        clean, faulty = scenario
        registry = MetricsRegistry()
        objective = LiveObjective(
            cluster.gateway.dispatch, clean, faulty, registry=registry
        )
        params = live_base_params("avoc")
        objective(params)
        objective(params)
        snapshot = registry.snapshot()
        assert snapshot["ops_tuning_trials_total"]["samples"][""] == 1.0
        assert snapshot["ops_tuning_cache_hits_total"]["samples"][""] == 1.0


class TestBitIdentity:
    def test_random_search_ranking_matches_offline(self, scenario, cluster):
        clean, faulty = scenario
        space = small_space()
        offline = random_search(
            uc1_fault_recovery_objective(clean, faulty, algorithm="avoc"),
            space, n_trials=8, seed=7,
        )
        live = live_random_search(
            LiveObjective(
                cluster.gateway.dispatch, clean, faulty,
                registry=MetricsRegistry(),
            ),
            space, n_trials=8, seed=7,
        )
        assert [t.assignment for t in live.trials] == [
            t.assignment for t in offline.trials
        ]
        # Bit-identical scores, not approximately equal ones.
        assert [t.score for t in live.trials] == [
            t.score for t in offline.trials
        ]
        assert live.best_assignment == offline.best_assignment
        # 8 draws over 6 distinct configs must repeat at least twice.
        assert live.cache_hits > 0

    def test_grid_search_matches_offline(self, scenario, cluster):
        clean, faulty = scenario
        space = small_space()
        offline = grid_search(
            uc1_fault_recovery_objective(clean, faulty, algorithm="avoc"),
            space, points_per_dimension=2,
        )
        live = live_grid_search(
            LiveObjective(
                cluster.gateway.dispatch, clean, faulty,
                registry=MetricsRegistry(),
            ),
            space, points_per_dimension=2,
        )
        assert [t.score for t in live.trials] == [
            t.score for t in offline.trials
        ]

    def test_ranking_is_identical_at_any_shard_count(self, scenario):
        clean, faulty = scenario
        space = small_space()
        rankings = []
        for n_shards in (1, 2):
            with FusionCluster(
                AVOC_SPEC, n_shards=n_shards, replicas=1, mode="thread",
                auto_restart=False,
            ) as sized:
                result = live_random_search(
                    LiveObjective(
                        sized.gateway.dispatch, clean, faulty,
                        registry=MetricsRegistry(),
                    ),
                    space, n_trials=6, seed=3,
                )
                rankings.append(
                    [(t.assignment, t.score) for t in result.trials]
                )
        assert rankings[0] == rankings[1]

    def test_remote_dispatch_matches_in_process(self, scenario, cluster):
        """The same search through a TCP client gives the same answer."""
        clean, faulty = scenario
        space = small_space()
        with cluster.client() as client:
            over_wire = live_random_search(
                LiveObjective(
                    client.request, clean, faulty, registry=MetricsRegistry()
                ),
                space, n_trials=4, seed=11,
            )
        in_process = live_random_search(
            LiveObjective(
                cluster.gateway.dispatch, clean, faulty,
                registry=MetricsRegistry(),
            ),
            space, n_trials=4, seed=11,
        )
        assert [t.score for t in over_wire.trials] == [
            t.score for t in in_process.trials
        ]


def test_voterparams_is_frozen_and_hashable():
    # Memoization keys trials on the params value itself.
    assert hash(VoterParams()) == hash(VoterParams())
    assert replace(VoterParams(), error=0.1).error == 0.1
