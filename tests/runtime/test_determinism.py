"""Worker-count invariance of every parallel entry point.

The runtime's contract: ``workers=4`` returns results bit-identical to
``workers=1`` — trial values, trial *ordering*, best assignment, fused
series, statuses — because assignments are drawn from the sequential
RNG stream in the parent and results are reassembled in input order.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.pool import fork_available
from repro.tuning.genetic import genetic_search
from repro.tuning.random_search import random_search
from repro.tuning.search import grid_search
from repro.tuning.space import Choice, Continuous, ParameterSpace

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="needs fork start method"
)


def make_space():
    return ParameterSpace(
        {
            "error": Continuous(0.01, 0.2),
            "soft_threshold": Continuous(1.0, 3.0),
            "collation": Choice(("MEAN", "MEDIAN")),
        }
    )


def objective(params):
    # Deterministic, cheap, with a unique optimum.
    return abs(params.error - 0.07) + abs(params.soft_threshold - 1.8)


def crashing_objective(params):
    if params.error > 0.15:
        raise RuntimeError("objective exploded on purpose")
    return params.error


def assert_results_equal(a, b):
    assert a.trials == b.trials  # values AND ordering
    assert a.best_assignment == b.best_assignment
    assert a.best_score == b.best_score
    assert a.best_params == b.best_params
    assert a.cache_hits == b.cache_hits


class TestRandomSearch:
    def test_workers_1_vs_4(self):
        space = make_space()
        assert_results_equal(
            random_search(objective, space, n_trials=24, seed=9, workers=1),
            random_search(objective, space, n_trials=24, seed=9, workers=4),
        )

    def test_different_seeds_still_differ(self):
        space = make_space()
        a = random_search(objective, space, n_trials=10, seed=1, workers=4)
        b = random_search(objective, space, n_trials=10, seed=2, workers=4)
        assert a.trials != b.trials


class TestGeneticSearch:
    def test_workers_1_vs_4(self):
        space = make_space()
        kwargs = dict(population_size=8, generations=5, seed=4)
        assert_results_equal(
            genetic_search(objective, space, workers=1, **kwargs),
            genetic_search(objective, space, workers=4, **kwargs),
        )

    def test_memoization_counts_elitism_rescoring(self):
        space = make_space()
        result = genetic_search(
            objective, space, population_size=8, generations=5, seed=4
        )
        # Elitism copies the best survivor verbatim into each of the 4
        # follow-up generations, so at least those are cache hits.
        assert result.cache_hits >= 4
        assert result.n_trials == 8 * 5


class TestGridSearch:
    def test_workers_1_vs_4(self):
        space = make_space()
        assert_results_equal(
            grid_search(objective, space, points_per_dimension=3, workers=1),
            grid_search(objective, space, points_per_dimension=3, workers=4),
        )


class TestCrashPropagation:
    def test_objective_crash_surfaces_cleanly(self):
        space = make_space()
        with pytest.raises(RuntimeError, match="objective exploded"):
            random_search(
                crashing_objective, space, n_trials=30, seed=0, workers=4
            )

    def test_invalid_space_still_raises_configuration_error(self):
        space = ParameterSpace({"learning_rate": Continuous(-0.9, -0.1)})
        with pytest.raises(ConfigurationError):
            random_search(objective, space, n_trials=5, seed=0, workers=4)
