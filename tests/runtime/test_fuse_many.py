"""fuse_many: the batch-of-batches API over shared memory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FusionError
from repro.fusion.batch import fuse
from repro.runtime import fuse_many
from repro.runtime.pool import fork_available
from repro.voting.registry import create_voter


def matrices(seed=0, n=6):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        matrix = rng.normal(18.0, 0.5, size=(30 + 5 * i, 5))
        matrix[rng.random(matrix.shape) < 0.1] = np.nan
        out.append(matrix)
    return out


def test_matches_per_matrix_fuse():
    mats = matrices()
    together = fuse_many(mats, "avoc")
    for matrix, result in zip(mats, together):
        alone = fuse(matrix, "avoc")
        np.testing.assert_array_equal(alone.values, result.values)
        np.testing.assert_array_equal(alone.statuses, result.statuses)


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_workers_do_not_change_results():
    mats = matrices(seed=3)
    sequential = fuse_many(mats, "avoc", workers=1)
    parallel = fuse_many(mats, "avoc", workers=4)
    for a, b in zip(sequential, parallel):
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.statuses, b.statuses)
        assert a.modules == b.modules


def test_voter_instance_is_not_mutated():
    voter = create_voter("avoc")
    fuse_many(matrices(n=3), voter, workers=1)
    # Each series must fuse through a deep copy: the caller's instance
    # keeps a pristine history.
    assert voter.history.update_count == 0


def test_one_dimensional_entry_is_one_round():
    out = fuse_many([[1.0, 1.1, 0.9]], "average")
    assert out[0].values.shape == (1,)
    assert out[0].values[0] == pytest.approx(1.0)


def test_empty_input():
    assert fuse_many([], "average") == []


def test_column_count_validated_against_modules():
    with pytest.raises(FusionError, match="columns"):
        fuse_many([np.ones((3, 4))], "average", modules=["a", "b", "c"])


def test_rejects_higher_dimensional_input():
    with pytest.raises(FusionError, match="2-D"):
        fuse_many([np.ones((2, 2, 2))], "average")


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_diagnostics_survive_the_pool():
    mats = matrices(n=3)
    results = fuse_many(mats, "avoc", diagnostics=True, workers=2)
    for matrix, result in zip(mats, results):
        assert result.weights is not None
        assert result.weights.shape == matrix.shape
        assert result.results is not None
