"""SharedMatrix: zero-copy transfer, pickling, and lifecycle."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.runtime.sharedmem import SharedMatrix


def test_roundtrip_preserves_bits():
    matrix = np.random.default_rng(0).normal(size=(17, 5))
    matrix[3, 2] = np.nan
    with SharedMatrix.from_array(matrix) as shared:
        np.testing.assert_array_equal(shared.asarray(), matrix)
        assert shared.asarray().dtype == matrix.dtype
        assert shared.nbytes == matrix.nbytes


def test_pickle_ships_name_not_bytes():
    matrix = np.arange(12.0).reshape(3, 4)
    with SharedMatrix.from_array(matrix) as shared:
        blob = pickle.dumps(shared)
        assert len(blob) < 500  # the handle, not the data
        clone = pickle.loads(blob)
        try:
            assert clone.name == shared.name
            np.testing.assert_array_equal(clone.asarray(), matrix)
            # The clone maps the same pages: writes are visible.
            clone.asarray()[0, 0] = 99.0
            assert shared.asarray()[0, 0] == 99.0
        finally:
            clone.close()


def test_unlink_is_owner_only_and_idempotent():
    shared = SharedMatrix.from_array(np.ones((2, 2)))
    clone = pickle.loads(pickle.dumps(shared))
    clone.close()
    clone.unlink()  # non-owner: a no-op
    shared.unlink()
    shared.unlink()  # idempotent
    shared.close()
    with pytest.raises(FileNotFoundError):
        SharedMatrix(shared.name, (2, 2), "<f8").asarray()


def test_context_manager_unlinks_owner():
    with SharedMatrix.from_array(np.zeros((4, 3))) as shared:
        name = shared.name
        shared.asarray()
    with pytest.raises(FileNotFoundError):
        SharedMatrix(name, (4, 3), "<f8").asarray()


def test_non_contiguous_and_int_inputs():
    base = np.arange(24.0).reshape(4, 6)
    with SharedMatrix.from_array(base[:, ::2]) as shared:
        np.testing.assert_array_equal(shared.asarray(), base[:, ::2])
    with SharedMatrix.from_array(np.arange(6).reshape(2, 3)) as shared:
        assert shared.asarray().dtype == np.dtype(int)
