"""WorkerPool: ordering, payload convention, fallback, crash handling."""

from __future__ import annotations

import os

import pytest

from repro.runtime.pool import (
    WorkerPool,
    fork_available,
    parallel_map,
    resolve_workers,
)
from repro.runtime import pool as pool_module


def square(x):
    return x * x


def scaled(payload, x):
    return payload["scale"] * x


def boom(x):
    if x == 13:
        raise ValueError("worker exploded on purpose")
    return x


def boom_with_payload(payload, x):
    return boom(x)


def whoami(x):
    return os.getpid()


class TestResolveWorkers:
    def test_none_means_cpu_count(self):
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_passthrough_and_floor(self):
        assert resolve_workers(3) == 3
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestInProcess:
    def test_workers_1_runs_without_executor(self):
        with WorkerPool(workers=1) as pool:
            assert pool.in_process
            assert pool._executor is None
            assert pool.map(square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_payload_convention(self):
        with WorkerPool(workers=1, payload={"scale": 3}) as pool:
            assert pool.map(scaled, [1, 2, 3]) == [3, 6, 9]

    def test_empty_items(self):
        with WorkerPool(workers=1) as pool:
            assert pool.map(square, []) == []


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestProcessPool:
    def test_ordered_results_any_chunking(self):
        items = list(range(37))
        expected = [x * x for x in items]
        for chunk_size in (1, 3, 50, None):
            with WorkerPool(workers=3, chunk_size=chunk_size) as pool:
                assert pool.map(square, items) == expected

    def test_payload_reaches_workers_by_inheritance(self):
        # A lambda in the payload would not survive pickling; fork
        # inheritance must carry it anyway.
        payload = {"scale": 7, "fn": lambda: None}
        with WorkerPool(workers=2, payload=payload) as pool:
            assert pool.map(scaled, [1, 2]) == [7, 14]
        assert pool._token not in pool_module._PAYLOADS

    def test_work_actually_leaves_the_parent(self):
        with WorkerPool(workers=2, chunk_size=1) as pool:
            pids = set(pool.map(whoami, range(8)))
        assert os.getpid() not in pids

    def test_pool_is_reusable_across_maps(self):
        with WorkerPool(workers=2) as pool:
            first = pool.map(square, range(5))
            second = pool.map(square, range(5, 10))
        assert first == [0, 1, 4, 9, 16]
        assert second == [25, 36, 49, 64, 81]

    def test_crash_in_worker_raises_cleanly(self):
        # The pool must surface the task's exception (not hang) and
        # shut its executor down.
        pool = WorkerPool(workers=2, chunk_size=1)
        with pytest.raises(ValueError, match="worker exploded"):
            pool.map(boom, range(20))
        assert pool._executor is None
        pool.close()  # idempotent after a crash

    def test_payload_table_cleared_after_crash(self):
        pool = WorkerPool(workers=2, payload={"scale": 1}, chunk_size=1)
        token = pool._token
        with pytest.raises(ValueError):
            pool.map(boom_with_payload, range(20))
        assert token not in pool_module._PAYLOADS


def test_parallel_map_one_shot():
    assert parallel_map(square, range(4), workers=1) == [0, 1, 4, 9]
    if fork_available():
        assert parallel_map(square, range(4), workers=2) == [0, 1, 4, 9]


def test_parallel_map_reuses_given_pool():
    with WorkerPool(workers=1) as pool:
        out = parallel_map(square, range(3), pool=pool)
    assert out == [0, 1, 4]
