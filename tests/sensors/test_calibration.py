"""Tests for internal-ground-truth sensor calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.diff import run_voter_series
from repro.datasets.dataset import Dataset
from repro.sensors.calibration import (
    Calibration,
    apply_calibration,
    estimate_calibration,
)
from repro.voting.registry import create_voter


def synthetic_dataset(n=300, seed=0):
    """Known truth with strong excitation, known gain/bias, small noise.

    The reference must actually move for a gain to be identifiable —
    with a near-constant reference the estimator deliberately falls
    back to bias-only calibration (see the parsimony guard).
    """
    rng = np.random.default_rng(seed)
    truth = 18.0 + np.cumsum(rng.normal(0, 0.25, n))
    gains = [1.0, 1.05, 0.97]
    biases = [0.0, -0.4, 0.3]
    matrix = np.column_stack(
        [g * truth + b + rng.normal(0, 0.02, n) for g, b in zip(gains, biases)]
    )
    ds = Dataset("synthetic", ["S1", "S2", "S3"], matrix)
    return ds, truth, gains, biases


class TestEstimation:
    def test_recovers_known_gain_and_bias(self):
        ds, truth, gains, biases = synthetic_dataset()
        calibrations = estimate_calibration(ds, truth)
        for module, gain, bias in zip(ds.modules, gains, biases):
            cal = calibrations[module]
            assert cal.gain == pytest.approx(gain, abs=0.01)
            assert cal.bias == pytest.approx(bias, abs=0.2)
            assert cal.residual_std < 0.05

    def test_correct_inverts_model(self):
        cal = Calibration("S", gain=1.1, bias=-0.5, residual_std=0.0, samples=10)
        reading = 1.1 * 18.0 - 0.5
        assert cal.correct(reading) == pytest.approx(18.0)

    def test_too_few_samples_gives_identity(self):
        ds, truth, _, _ = synthetic_dataset(n=300)
        sparse = ds.matrix.copy()
        sparse[5:, 0] = np.nan  # S1 has only 5 usable samples
        sparse_ds = ds.with_matrix(sparse, suffix="sparse")
        calibrations = estimate_calibration(sparse_ds, truth)
        assert calibrations["S1"].gain == 1.0
        assert calibrations["S1"].bias == 0.0

    def test_constant_reference_gives_identity(self):
        ds, truth, _, _ = synthetic_dataset()
        calibrations = estimate_calibration(ds, np.full_like(truth, 18.0))
        assert all(c.gain == 1.0 and c.bias == 0.0 for c in calibrations.values())

    def test_length_mismatch_rejected(self):
        ds, truth, _, _ = synthetic_dataset()
        with pytest.raises(ValueError):
            estimate_calibration(ds, truth[:-1])


class TestApplication:
    def test_corrected_columns_converge(self):
        ds, truth, _, _ = synthetic_dataset()
        corrected = apply_calibration(ds, estimate_calibration(ds, truth))
        spread_before = (ds.matrix.max(axis=1) - ds.matrix.min(axis=1)).mean()
        spread_after = (
            corrected.matrix.max(axis=1) - corrected.matrix.min(axis=1)
        ).mean()
        assert spread_after < spread_before / 3

    def test_missing_values_stay_missing(self):
        ds, truth, _, _ = synthetic_dataset()
        holey = ds.matrix.copy()
        holey[10, 1] = np.nan
        holey_ds = ds.with_matrix(holey, suffix="holey")
        corrected = apply_calibration(holey_ds, estimate_calibration(holey_ds, truth))
        assert np.isnan(corrected.matrix[10, 1])

    def test_unknown_modules_pass_through(self):
        ds, truth, _, _ = synthetic_dataset()
        corrected = apply_calibration(ds, {})
        assert np.array_equal(corrected.matrix, ds.matrix)


class TestClosedLoopWithVoting:
    def test_calibrating_on_fused_output_reduces_spread(self, uc1_small):
        """The paper's internal-ground-truth premise, closed loop: vote,
        calibrate on the fused output, re-vote on corrected data."""
        dataset = uc1_small.slice(0, 300)
        fused = run_voter_series(create_voter("avoc"), dataset)
        calibrations = estimate_calibration(dataset, fused)
        # The known generator biases must be visible in the fits
        # (E3 is the low outlier at -0.45 relative to the pack).
        assert calibrations["E3"].bias < calibrations["E5"].bias - 0.3
        corrected = apply_calibration(dataset, calibrations)
        spread_before = (dataset.matrix.max(1) - dataset.matrix.min(1)).mean()
        spread_after = (corrected.matrix.max(1) - corrected.matrix.min(1)).mean()
        assert spread_after < spread_before * 0.6
