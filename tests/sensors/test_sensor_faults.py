"""Tests for sensor fault injectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sensors.base import Sensor
from repro.sensors.faults import (
    DriftFault,
    DropoutFault,
    FaultySensor,
    NoiseFault,
    OffsetFault,
    SpikeFault,
    StuckAtFault,
)
from repro.sensors.signal import ConstantSignal
from repro.types import is_missing


def healthy(name="s", level=18.0):
    return Sensor(name, ConstantSignal(level))


class TestWindowing:
    def test_inactive_before_start(self):
        fault = OffsetFault(healthy(), offset=6.0, start=10.0)
        assert fault.sample(5.0) == 18.0
        assert fault.sample(10.0) == 24.0

    def test_inactive_after_end(self):
        fault = OffsetFault(healthy(), offset=6.0, start=0.0, end=10.0)
        assert fault.sample(9.9) == 24.0
        assert fault.sample(10.0) == 18.0

    def test_end_before_start_rejected(self):
        with pytest.raises(ConfigurationError):
            OffsetFault(healthy(), offset=1.0, start=10.0, end=5.0)

    def test_name_delegates(self):
        assert OffsetFault(healthy("E4"), 6.0).name == "E4"

    def test_missing_values_not_corrupted(self):
        base = Sensor("s", ConstantSignal(1.0), dropout_probability=1.0)
        fault = OffsetFault(base, offset=6.0)
        assert is_missing(fault.sample(0.0))


class TestFaultTypes:
    def test_offset(self):
        assert OffsetFault(healthy(), 6.0).sample(0.0) == 24.0

    def test_stuck_at(self):
        fault = StuckAtFault(healthy(), stuck_value=-1.0)
        assert fault.sample(0.0) == -1.0
        assert fault.sample(99.0) == -1.0

    def test_drift_grows_linearly(self):
        fault = DriftFault(healthy(), rate=0.1, start=10.0)
        assert fault.sample(10.0) == pytest.approx(18.0)
        assert fault.sample(20.0) == pytest.approx(19.0)

    def test_spikes_at_given_rate(self):
        fault = SpikeFault(healthy(), magnitude=50.0, probability=0.5, seed=1)
        samples = fault.sample_many(np.zeros(1000))
        spike_rate = (np.abs(samples - 18.0) > 10).mean()
        assert 0.4 < spike_rate < 0.6

    def test_spike_probability_validated(self):
        with pytest.raises(ConfigurationError):
            SpikeFault(healthy(), magnitude=1.0, probability=2.0)

    def test_noise_fault_adds_spread(self):
        fault = NoiseFault(healthy(), noise_std=3.0, seed=2)
        samples = fault.sample_many(np.zeros(2000))
        assert np.std(samples) == pytest.approx(3.0, rel=0.15)

    def test_dropout_fault(self):
        fault = DropoutFault(healthy(), probability=1.0)
        assert is_missing(fault.sample(0.0))

    def test_base_wrapper_is_identity(self):
        assert FaultySensor(healthy()).sample(0.0) == 18.0
