"""Tests for the light-sensor and BLE beacon models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sensors.ble import BleBeacon, rssi_at_distance
from repro.sensors.light import LightSensor
from repro.sensors.signal import ConstantSignal


class TestLightSensor:
    def test_reads_in_kilolumen_band(self):
        sensor = LightSensor("E1", ConstantSignal(18.3), seed=1)
        samples = sensor.sample_many(np.zeros(100))
        assert 17.5 < np.nanmean(samples) < 19.0

    def test_never_negative(self):
        sensor = LightSensor("E1", ConstantSignal(0.01), noise_std=1.0, seed=2)
        samples = sensor.sample_many(np.zeros(500))
        assert np.nanmin(samples) >= 0.0

    def test_bias_shifts_mean(self):
        biased = LightSensor("E1", ConstantSignal(18.0), bias=0.5, noise_std=0.0)
        assert biased.sample(0.0) == pytest.approx(18.5)


class TestRssiModel:
    def test_reference_distance_value(self):
        assert rssi_at_distance(1.0, tx_power=-59.0) == -59.0

    def test_ten_meters_with_exponent_two(self):
        # 10 * 2 * log10(10) = 20 dB of path loss.
        assert rssi_at_distance(10.0, tx_power=-59.0, path_loss_exponent=2.0) == -79.0

    def test_monotonically_decreasing(self):
        values = [rssi_at_distance(d) for d in (1.0, 2.0, 5.0, 10.0, 15.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_distances_below_reference_clamped(self):
        assert rssi_at_distance(0.1) == rssi_at_distance(1.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            rssi_at_distance(-1.0)


class TestBleBeacon:
    def test_noise_free_matches_model(self):
        beacon = BleBeacon(
            "A1",
            distance_fn=lambda t: 10.0,
            noise_std=0.0,
            dropout_probability=0.0,
        )
        assert beacon.sample(0.0) == pytest.approx(-79.0)

    def test_rssi_is_whole_dbm(self):
        beacon = BleBeacon("A1", distance_fn=lambda t: 5.0, seed=4)
        for t in range(20):
            value = beacon.sample(float(t))
            if not np.isnan(value):
                assert value == int(value)

    def test_moving_receiver_weakens_signal(self):
        beacon = BleBeacon(
            "A1",
            distance_fn=lambda t: 1.0 + t,
            noise_std=0.0,
            dropout_probability=0.0,
        )
        assert beacon.sample(0.0) > beacon.sample(14.0)

    def test_dropouts_occur(self):
        beacon = BleBeacon(
            "A1", distance_fn=lambda t: 5.0, dropout_probability=0.3, seed=5
        )
        samples = beacon.sample_many(np.zeros(1000))
        assert 0.2 < np.isnan(samples).mean() < 0.4

    def test_saturation_floor(self):
        beacon = BleBeacon(
            "A1",
            distance_fn=lambda t: 10_000.0,
            noise_std=0.0,
            dropout_probability=0.0,
        )
        assert beacon.sample(0.0) == -110.0
