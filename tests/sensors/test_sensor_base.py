"""Tests for the sensor model base class."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sensors.base import Sensor
from repro.sensors.signal import ConstantSignal, RampSignal
from repro.types import is_missing


class TestTransduction:
    def test_perfect_sensor_reports_truth(self):
        sensor = Sensor("s", ConstantSignal(18.0))
        assert sensor.sample(0.0) == 18.0

    def test_gain_and_bias(self):
        sensor = Sensor("s", ConstantSignal(10.0), gain=1.1, bias=-0.5)
        assert sensor.sample(0.0) == pytest.approx(10.5)

    def test_noise_is_seeded(self):
        a = Sensor("s", ConstantSignal(10.0), noise_std=1.0, seed=9)
        b = Sensor("s", ConstantSignal(10.0), noise_std=1.0, seed=9)
        assert a.sample(0.0) == b.sample(0.0)

    def test_noise_spread_matches_std(self):
        sensor = Sensor("s", ConstantSignal(0.0), noise_std=2.0, seed=0)
        samples = sensor.sample_many(np.zeros(4000))
        assert np.std(samples) == pytest.approx(2.0, rel=0.1)

    def test_quantisation(self):
        sensor = Sensor("s", ConstantSignal(10.123456), resolution=0.01)
        assert sensor.sample(0.0) == pytest.approx(10.12)

    def test_saturation(self):
        sensor = Sensor("s", RampSignal(0.0, 10.0), saturation=(0.0, 50.0))
        assert sensor.sample(100.0) == 50.0

    def test_follows_time_varying_signal(self):
        sensor = Sensor("s", RampSignal(0.0, 1.0))
        assert sensor.sample(3.0) == 3.0


class TestDropout:
    def test_dropout_produces_missing(self):
        sensor = Sensor("s", ConstantSignal(1.0), dropout_probability=1.0)
        assert is_missing(sensor.sample(0.0))

    def test_dropout_rate_approximates_probability(self):
        sensor = Sensor("s", ConstantSignal(1.0), dropout_probability=0.25, seed=3)
        samples = sensor.sample_many(np.zeros(4000))
        rate = np.isnan(samples).mean()
        assert rate == pytest.approx(0.25, abs=0.03)
        assert sensor.samples_dropped > 0

    def test_counters(self):
        sensor = Sensor("s", ConstantSignal(1.0))
        sensor.sample_many(np.zeros(10))
        assert sensor.samples_taken == 10
        assert sensor.samples_dropped == 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"noise_std": -1.0},
            {"resolution": -0.1},
            {"dropout_probability": 1.5},
            {"saturation": (5.0, 1.0)},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            Sensor("s", ConstantSignal(0.0), **kwargs)
