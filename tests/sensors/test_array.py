"""Tests for sensor arrays."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sensors.array import SensorArray
from repro.sensors.base import Sensor
from repro.sensors.faults import OffsetFault
from repro.sensors.signal import ConstantSignal


def make_array(n=3):
    sensors = [Sensor(f"E{i+1}", ConstantSignal(10.0 + i)) for i in range(n)]
    return SensorArray(sensors, name="test")


class TestConstruction:
    def test_module_names(self):
        assert make_array().module_names == ["E1", "E2", "E3"]

    def test_duplicate_names_rejected(self):
        s = Sensor("X", ConstantSignal(1.0))
        with pytest.raises(ConfigurationError):
            SensorArray([s, Sensor("X", ConstantSignal(2.0))])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorArray([])

    def test_len(self):
        assert len(make_array(4)) == 4


class TestSampling:
    def test_sample_round(self):
        array = make_array()
        r = array.sample_round(7, t=0.0)
        assert r.number == 7
        assert r.value_of("E1") == 10.0
        assert r.value_of("E3") == 12.0

    def test_sample_round_missing_becomes_none(self):
        dead = Sensor("E1", ConstantSignal(1.0), dropout_probability=1.0)
        array = SensorArray([dead, Sensor("E2", ConstantSignal(2.0))])
        r = array.sample_round(0, 0.0)
        assert r.value_of("E1") is None
        assert r.submitted_count == 1

    def test_sample_matrix_shape(self):
        matrix = make_array().sample_matrix([0.0, 1.0, 2.0])
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix[:, 0], 10.0)


class TestReplace:
    def test_replace_injects_fault(self):
        array = make_array()
        faulty = array.replace("E2", OffsetFault(array.sensors[1].__class__(
            "E2", ConstantSignal(11.0)), offset=6.0))
        r = faulty.sample_round(0, 0.0)
        assert r.value_of("E2") == 17.0
        # Original array untouched.
        assert array.sample_round(0, 0.0).value_of("E2") == 11.0

    def test_replace_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_array().replace("E9", Sensor("E9", ConstantSignal(0.0)))
