"""Property-based tests for sensors and fault wrappers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensors.base import Sensor
from repro.sensors.faults import DriftFault, OffsetFault, StuckAtFault
from repro.sensors.signal import ConstantSignal, RampSignal
from repro.types import is_missing

levels = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestSensorProperties:
    @settings(max_examples=50)
    @given(level=levels, seed=seeds, t=times)
    def test_same_seed_same_sample_sequence(self, level, seed, t):
        a = Sensor("s", ConstantSignal(level), noise_std=1.0, seed=seed)
        b = Sensor("s", ConstantSignal(level), noise_std=1.0, seed=seed)
        assert a.sample(t) == b.sample(t)
        assert a.sample(t) == b.sample(t)  # second draw matches too

    @settings(max_examples=50)
    @given(level=levels, gain=st.floats(min_value=0.5, max_value=2.0),
           bias=st.floats(min_value=-10, max_value=10))
    def test_noiseless_sensor_is_affine(self, level, gain, bias):
        sensor = Sensor("s", ConstantSignal(level), gain=gain, bias=bias)
        assert sensor.sample(0.0) == gain * level + bias

    @settings(max_examples=50)
    @given(level=levels, resolution=st.floats(min_value=0.001, max_value=10.0))
    def test_quantised_output_on_grid(self, level, resolution):
        sensor = Sensor("s", ConstantSignal(level), resolution=resolution)
        value = sensor.sample(0.0)
        steps = value / resolution
        assert abs(steps - round(steps)) < 1e-6


class TestFaultWindowProperties:
    @settings(max_examples=50)
    @given(
        start=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        width=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        offset=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
        t=st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
    )
    def test_offset_applied_exactly_inside_window(self, start, width, offset, t):
        base = Sensor("s", ConstantSignal(10.0))
        fault = OffsetFault(base, offset=offset, start=start, end=start + width)
        value = fault.sample(t)
        if start <= t < start + width:
            assert value == 10.0 + offset
        else:
            assert value == 10.0

    @settings(max_examples=50)
    @given(stuck=levels, t=times)
    def test_stuck_value_ignores_signal(self, stuck, t):
        base = Sensor("s", RampSignal(0.0, 3.0))
        fault = StuckAtFault(base, stuck_value=stuck)
        assert fault.sample(t) == stuck

    @settings(max_examples=50)
    @given(rate=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
           t=st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    def test_drift_grows_linearly_from_start(self, rate, t):
        base = Sensor("s", ConstantSignal(0.0))
        fault = DriftFault(base, rate=rate, start=0.0)
        assert fault.sample(t) == rate * t

    @settings(max_examples=30)
    @given(seed=seeds)
    def test_dropouts_never_leak_values(self, seed):
        sensor = Sensor("s", ConstantSignal(1.0), dropout_probability=0.5,
                        seed=seed)
        samples = sensor.sample_many(np.zeros(100))
        for v in samples:
            assert is_missing(v) or v == 1.0
