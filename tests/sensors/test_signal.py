"""Tests for ground-truth signal generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sensors.signal import (
    CompositeSignal,
    ConstantSignal,
    DiurnalSignal,
    PiecewiseSignal,
    RampSignal,
    RandomWalkSignal,
)


class TestSimpleSignals:
    def test_constant(self):
        assert ConstantSignal(18.0).value(123.4) == 18.0

    def test_ramp(self):
        ramp = RampSignal(start=10.0, rate=0.5)
        assert ramp.value(0.0) == 10.0
        assert ramp.value(4.0) == 12.0

    def test_diurnal_period_and_amplitude(self):
        sig = DiurnalSignal(base=18.0, amplitude=2.0, period=100.0)
        assert sig.value(0.0) == pytest.approx(18.0)
        assert sig.value(25.0) == pytest.approx(20.0)
        assert sig.value(75.0) == pytest.approx(16.0)
        assert sig.value(100.0) == pytest.approx(18.0, abs=1e-9)

    def test_diurnal_invalid_period(self):
        with pytest.raises(ConfigurationError):
            DiurnalSignal(18.0, 1.0, period=0.0)

    def test_sample_vectorised(self):
        sig = RampSignal(0.0, 1.0)
        assert np.allclose(sig.sample([0.0, 1.0, 2.0]), [0.0, 1.0, 2.0])


class TestRandomWalk:
    def test_deterministic_per_seed(self):
        a = RandomWalkSignal(step_std=1.0, seed=5)
        b = RandomWalkSignal(step_std=1.0, seed=5)
        times = [0.0, 0.5, 3.7, 10.0]
        assert [a.value(t) for t in times] == [b.value(t) for t in times]

    def test_repeated_queries_stable(self):
        sig = RandomWalkSignal(step_std=1.0, seed=1)
        first = sig.value(7.3)
        sig.value(100.0)  # extend the walk
        assert sig.value(7.3) == first

    def test_starts_at_zero(self):
        assert RandomWalkSignal(step_std=1.0, seed=0).value(0.0) == 0.0

    def test_clamp_respected(self):
        sig = RandomWalkSignal(step_std=10.0, seed=2, clamp=(-1.0, 1.0))
        values = [sig.value(t) for t in np.linspace(0, 50, 200)]
        assert min(values) >= -1.0
        assert max(values) <= 1.0

    def test_interpolation_between_grid_points(self):
        sig = RandomWalkSignal(step_std=1.0, step_interval=1.0, seed=3)
        v0, v1 = sig.value(4.0), sig.value(5.0)
        mid = sig.value(4.5)
        assert min(v0, v1) - 1e-9 <= mid <= max(v0, v1) + 1e-9

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomWalkSignal(step_std=1.0).value(-1.0)


class TestCompositeAndPiecewise:
    def test_composite_sums(self):
        sig = CompositeSignal([ConstantSignal(10.0), RampSignal(0.0, 1.0)])
        assert sig.value(5.0) == 15.0

    def test_composite_requires_components(self):
        with pytest.raises(ConfigurationError):
            CompositeSignal([])

    def test_piecewise_switches(self):
        sig = PiecewiseSignal({0.0: ConstantSignal(1.0), 10.0: ConstantSignal(2.0)})
        assert sig.value(5.0) == 1.0
        assert sig.value(10.0) == 2.0
        assert sig.value(50.0) == 2.0

    def test_piecewise_must_start_at_zero(self):
        with pytest.raises(ConfigurationError):
            PiecewiseSignal({5.0: ConstantSignal(1.0)})
