"""Tests for X-means (BIC-driven cluster count estimation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.xmeans import xmeans


class TestClusterCountEstimation:
    def test_finds_two_blobs(self):
        rng = np.random.default_rng(0)
        data = np.concatenate(
            [rng.normal(0.0, 0.3, 60), rng.normal(10.0, 0.3, 60)]
        )
        result = xmeans(data, k_min=1, k_max=6, seed=0)
        assert result.k == 2

    def test_single_blob_stays_single(self):
        rng = np.random.default_rng(1)
        data = rng.normal(5.0, 0.5, 80)
        result = xmeans(data, k_min=1, k_max=6, seed=0)
        assert result.k <= 2  # BIC may allow one split on heavy tails

    def test_three_blobs_two_dimensional(self):
        rng = np.random.default_rng(2)
        data = np.vstack(
            [
                rng.normal([0, 0], 0.2, (40, 2)),
                rng.normal([6, 0], 0.2, (40, 2)),
                rng.normal([3, 6], 0.2, (40, 2)),
            ]
        )
        result = xmeans(data, k_min=1, k_max=8, seed=0)
        assert result.k == 3

    def test_k_max_caps_growth(self):
        rng = np.random.default_rng(3)
        data = np.concatenate([rng.normal(c, 0.1, 20) for c in range(8)])
        result = xmeans(data, k_min=1, k_max=3, seed=0)
        assert result.k <= 3

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            xmeans([1.0, 2.0], k_min=3, k_max=2)
