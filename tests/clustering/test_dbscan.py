"""Tests for the from-scratch DBSCAN implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import NOISE, dbscan


class TestOneDimensional:
    def test_two_blobs(self):
        data = [1.0, 1.1, 1.2, 9.0, 9.1, 9.2]
        result = dbscan(data, eps=0.5, min_samples=2)
        assert result.n_clusters == 2
        assert result.labels[0] == result.labels[1] == result.labels[2]
        assert result.labels[3] == result.labels[4] == result.labels[5]
        assert result.labels[0] != result.labels[3]

    def test_isolated_point_is_noise(self):
        data = [1.0, 1.1, 1.2, 50.0]
        result = dbscan(data, eps=0.5, min_samples=2)
        assert result.labels[3] == NOISE

    def test_min_samples_one_makes_everything_core(self):
        result = dbscan([1.0, 100.0], eps=0.5, min_samples=1)
        assert result.n_clusters == 2
        assert NOISE not in result.labels


class TestTwoDimensional:
    def test_euclidean_blobs(self):
        rng = np.random.default_rng(0)
        blob_a = rng.normal([0, 0], 0.1, size=(20, 2))
        blob_b = rng.normal([5, 5], 0.1, size=(20, 2))
        data = np.vstack([blob_a, blob_b])
        result = dbscan(data, eps=0.5, min_samples=3)
        assert result.n_clusters == 2

    def test_border_points_join_cluster(self):
        # A chain: dense core plus one border point within eps of a core.
        data = [[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [0.55, 0.0]]
        result = dbscan(data, eps=0.4, min_samples=3)
        assert result.labels[3] == result.labels[0]
        assert not result.core_mask[3]


class TestValidationAndAccessors:
    def test_empty_input(self):
        result = dbscan([], eps=1.0)
        assert result.labels == ()
        assert result.n_clusters == 0

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            dbscan([1.0], eps=0.0)

    def test_invalid_min_samples(self):
        with pytest.raises(ValueError):
            dbscan([1.0], eps=1.0, min_samples=0)

    def test_clusters_accessor_sorted_by_size(self):
        data = [1.0, 1.1, 1.2, 9.0, 9.1]
        result = dbscan(data, eps=0.5, min_samples=2)
        groups = result.clusters()
        assert len(groups[0]) >= len(groups[1])

    def test_matches_agreement_clustering_on_voting_data(self):
        # AVOC's grouping is "similar to DBSCAN": with the equivalent
        # eps the two agree on the winning group.
        from repro.clustering.agreement_clustering import cluster_by_agreement

        values = [18.0, 18.1, 17.9, 24.0, 18.05]
        agreement = cluster_by_agreement(values, error=0.05, soft_threshold=2.0)
        db = dbscan(values, eps=agreement.margin, min_samples=1)
        assert set(db.clusters()[0]) == set(agreement.largest)
