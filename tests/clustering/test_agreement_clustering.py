"""Tests for the AVOC agreement-clustering step."""

from __future__ import annotations

import pytest

from repro.clustering.agreement_clustering import (
    cluster_by_agreement,
    largest_cluster,
)


class TestBasicGrouping:
    def test_single_tight_group(self):
        result = cluster_by_agreement([18.0, 18.1, 17.9])
        assert len(result.clusters) == 1
        assert result.largest == (0, 1, 2)

    def test_outlier_forms_own_cluster(self):
        result = cluster_by_agreement([18.0, 18.1, 17.9, 24.0, 18.05])
        assert result.largest == (0, 1, 2, 4)
        assert (3,) in result.clusters

    def test_clusters_sorted_largest_first(self):
        result = cluster_by_agreement([1.0, 1.0, 1.0, 100.0, 100.0])
        sizes = [len(c) for c in result.clusters]
        assert sizes == sorted(sizes, reverse=True)

    def test_empty_input(self):
        result = cluster_by_agreement([])
        assert result.clusters == ()
        assert result.largest == ()

    def test_singleton(self):
        result = cluster_by_agreement([5.0])
        assert result.largest == (0,)


class TestMarginBehaviour:
    def test_margin_mirrors_voting_parameters(self):
        # margin = error * |median| * soft_threshold
        result = cluster_by_agreement([100.0, 100.0], error=0.05, soft_threshold=2.0)
        assert result.margin == pytest.approx(10.0)

    def test_self_calibration_on_negative_values(self):
        # RSSI-style data: the margin derives from |median|.
        result = cluster_by_agreement([-70.0, -71.0, -69.0, -100.0], error=0.05)
        assert sorted(result.largest) == [0, 1, 2]

    def test_chained_agreement_merges_transitively(self):
        # 0 agrees with 1, 1 with 2, but 0 not directly with 2:
        # connected components still group them (DBSCAN-like chaining).
        result = cluster_by_agreement(
            [10.0, 10.9, 11.8], error=0.05, soft_threshold=2.0
        )
        # margin = 0.05 * 10.9 * 2 = 1.09: 0-1 and 1-2 within, 0-2 not.
        assert result.largest == (0, 1, 2)

    def test_rejects_multidimensional_input(self):
        with pytest.raises(ValueError):
            cluster_by_agreement([[1.0, 2.0], [3.0, 4.0]])


class TestResultAccessors:
    def test_outliers_complement_largest(self):
        result = cluster_by_agreement([18.0, 18.1, 24.0])
        assert result.outliers == (2,)

    def test_membership_labels(self):
        result = cluster_by_agreement([18.0, 18.1, 24.0])
        labels = result.membership()
        assert labels[0] == labels[1] == 0
        assert labels[2] == 1

    def test_largest_cluster_helper(self):
        assert largest_cluster([18.0, 18.1, 24.0]) == (0, 1)


class TestTieBreaking:
    def test_equal_sized_groups_pick_lowest_first_index(self):
        result = cluster_by_agreement([1.0, 1.0, 50.0, 50.0])
        assert result.largest == (0, 1)
