"""Tests for the from-scratch k-means implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.kmeans import kmeans


class TestBasics:
    def test_two_clear_blobs(self):
        data = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2]
        result = kmeans(data, k=2, seed=0)
        assert result.k == 2
        labels = np.asarray(result.labels)
        assert len(set(labels[:3])) == 1
        assert len(set(labels[3:])) == 1
        assert labels[0] != labels[3]
        centroids = sorted(float(c) for c in result.centroids[:, 0])
        assert centroids[0] == pytest.approx(0.1, abs=0.01)
        assert centroids[1] == pytest.approx(10.1, abs=0.01)

    def test_k_equals_n_gives_zero_inertia(self):
        result = kmeans([1.0, 5.0, 9.0], k=3, seed=0)
        assert result.inertia == pytest.approx(0.0)

    def test_k_one_centroid_is_mean(self):
        result = kmeans([1.0, 2.0, 3.0], k=1)
        assert float(result.centroids[0, 0]) == pytest.approx(2.0)

    def test_two_dimensional(self):
        rng = np.random.default_rng(1)
        data = np.vstack(
            [rng.normal([0, 0], 0.2, (30, 2)), rng.normal([4, 4], 0.2, (30, 2))]
        )
        result = kmeans(data, k=2, seed=1)
        assert result.inertia < 20.0


class TestDeterminismAndValidation:
    def test_deterministic_given_seed(self):
        data = list(np.random.default_rng(3).normal(0, 1, 50))
        a = kmeans(data, k=3, seed=42)
        b = kmeans(data, k=3, seed=42)
        assert a.labels == b.labels
        assert a.inertia == b.inertia

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans([1.0, 2.0], k=3)
        with pytest.raises(ValueError):
            kmeans([1.0, 2.0], k=0)

    def test_labels_cover_all_points(self):
        data = list(range(10))
        result = kmeans(data, k=2, seed=0)
        assert len(result.labels) == 10

    def test_inertia_decreases_with_more_clusters(self):
        data = list(np.random.default_rng(7).normal(0, 1, 60))
        inertias = [kmeans(data, k=k, seed=0).inertia for k in (1, 2, 4, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))
