"""Tests for cluster quality metrics."""

from __future__ import annotations

import pytest

from repro.clustering.metrics import inertia, silhouette_score


class TestInertia:
    def test_perfect_clusters_zero_inertia(self):
        assert inertia([1.0, 1.0, 9.0, 9.0], [0, 0, 1, 1]) == 0.0

    def test_spread_increases_inertia(self):
        tight = inertia([1.0, 1.1, 9.0, 9.1], [0, 0, 1, 1])
        loose = inertia([1.0, 2.0, 9.0, 10.0], [0, 0, 1, 1])
        assert loose > tight

    def test_noise_labels_ignored(self):
        with_noise = inertia([1.0, 1.0, 100.0], [0, 0, -1])
        assert with_noise == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            inertia([1.0, 2.0], [0])


class TestSilhouette:
    def test_well_separated_near_one(self):
        data = [0.0, 0.1, 10.0, 10.1]
        score = silhouette_score(data, [0, 0, 1, 1])
        assert score > 0.9

    def test_bad_clustering_scores_low(self):
        data = [0.0, 10.0, 0.1, 10.1]
        good = silhouette_score(data, [0, 1, 0, 1])
        bad = silhouette_score(data, [0, 0, 1, 1])
        assert bad < good

    def test_single_cluster_returns_zero(self):
        assert silhouette_score([1.0, 2.0, 3.0], [0, 0, 0]) == 0.0

    def test_noise_points_excluded(self):
        data = [0.0, 0.1, 10.0, 10.1, 500.0]
        score = silhouette_score(data, [0, 0, 1, 1, -1])
        assert score > 0.9

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            silhouette_score([1.0], [0, 1])
