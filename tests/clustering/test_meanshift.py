"""Tests for the mean-shift implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.meanshift import mean_shift


class TestModeSeeking:
    def test_two_modes(self):
        rng = np.random.default_rng(0)
        data = np.concatenate([rng.normal(0.0, 0.2, 40), rng.normal(8.0, 0.2, 40)])
        result = mean_shift(data, bandwidth=1.0)
        assert result.n_clusters == 2
        modes = sorted(float(m) for m in result.modes[:, 0])
        assert modes[0] == pytest.approx(0.0, abs=0.3)
        assert modes[1] == pytest.approx(8.0, abs=0.3)

    def test_labels_consistent_with_modes(self):
        data = [0.0, 0.1, 8.0, 8.1]
        result = mean_shift(data, bandwidth=0.5)
        assert result.labels[0] == result.labels[1]
        assert result.labels[2] == result.labels[3]
        assert result.labels[0] != result.labels[2]

    def test_modes_sorted_by_cluster_size(self):
        data = [0.0, 0.1, 0.2, 9.0]
        result = mean_shift(data, bandwidth=0.5)
        groups = result.clusters()
        assert len(groups[0]) >= len(groups[-1])
        assert result.labels[0] == 0  # biggest cluster gets label 0

    def test_two_dimensional(self):
        rng = np.random.default_rng(1)
        data = np.vstack(
            [rng.normal([0, 0], 0.2, (30, 2)), rng.normal([5, 5], 0.2, (30, 2))]
        )
        result = mean_shift(data, bandwidth=1.0)
        assert result.n_clusters == 2

    def test_empty_input(self):
        result = mean_shift([], bandwidth=1.0)
        assert result.n_clusters == 0
        assert result.labels == ()

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            mean_shift([1.0], bandwidth=0.0)

    def test_wide_bandwidth_merges_everything(self):
        data = [0.0, 1.0, 2.0, 3.0]
        result = mean_shift(data, bandwidth=50.0)
        assert result.n_clusters == 1
