"""Property-based tests for the clustering substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.agreement_clustering import cluster_by_agreement
from repro.clustering.dbscan import dbscan
from repro.clustering.kmeans import kmeans

values_strategy = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=15,
)


class TestAgreementClusteringProperties:
    @given(values=values_strategy)
    def test_clusters_partition_the_indices(self, values):
        result = cluster_by_agreement(values)
        seen = sorted(i for cluster in result.clusters for i in cluster)
        assert seen == list(range(len(values)))

    @given(values=values_strategy)
    def test_largest_is_genuinely_largest(self, values):
        result = cluster_by_agreement(values)
        assert all(len(result.largest) >= len(c) for c in result.clusters)

    @given(values=values_strategy, error=st.floats(min_value=0.01, max_value=0.5))
    def test_wider_error_never_splits_clusters_finer(self, values, error):
        narrow = cluster_by_agreement(values, error=error)
        wide = cluster_by_agreement(values, error=error * 2)
        assert len(wide.clusters) <= len(narrow.clusters)


class TestDbscanProperties:
    @given(
        values=values_strategy,
        eps=st.floats(min_value=0.01, max_value=100.0),
        min_samples=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50)
    def test_labels_complete_and_noise_only_noncore(self, values, eps, min_samples):
        result = dbscan(values, eps=eps, min_samples=min_samples)
        assert len(result.labels) == len(values)
        if min_samples == 1:
            assert -1 not in result.labels


class TestKMeansProperties:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_every_point_assigned_to_nearest_centroid(self, data):
        values = data.draw(
            st.lists(
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                min_size=3,
                max_size=12,
            )
        )
        k = data.draw(st.integers(min_value=1, max_value=len(values)))
        result = kmeans(values, k=k, seed=0)
        points = np.asarray(values)[:, None]
        for i, label in enumerate(result.labels):
            own = float(((points[i] - result.centroids[label]) ** 2).sum())
            for j in range(result.k):
                other = float(((points[i] - result.centroids[j]) ** 2).sum())
                assert own <= other + 1e-9
