"""The bench-regression gate fails on regressions and passes clean runs."""

from __future__ import annotations

import json

import pytest

from benchmarks.compare_baselines import (
    compare_cluster,
    compare_dirs,
    compare_ingest,
    compare_latency,
    compare_parallel,
    compare_store,
    main,
)

COMMITTED_LATENCY = {
    "average": {"speedup": 28.87, "floor": 5.0},
    "avoc": {"speedup": 30.72, "floor": 20.0},
}

COMMITTED_PARALLEL = {
    "cpu_count": 1,
    "ragged_kernel": {
        "enforced": True,
        "floor": 2.0,
        "algorithms": {
            "average": {"speedup": 110.19},
            "avoc": {"speedup": 3.97},
        },
    },
    "sweep_random_search_64": {
        "enforced": False,
        "floor": 2.5,
        "speedup": 1.5,
    },
}


COMMITTED_CLUSTER = {
    "cpu_count": 4,
    "throughput": {"speedup": 2.4, "floor": 2.0, "enforced": True},
    "failover": {
        "rounds": 500,
        "answered": 500,
        "bit_identical": True,
        "enforced": True,
    },
}


def _write(directory, latency, parallel=None):
    directory.mkdir(exist_ok=True)
    (directory / "BENCH_latency.json").write_text(json.dumps(latency))
    if parallel is not None:
        (directory / "BENCH_parallel.json").write_text(json.dumps(parallel))


class TestCompareLatency:
    def test_clean_run_has_no_failures(self):
        assert compare_latency(COMMITTED_LATENCY, COMMITTED_LATENCY) == []

    def test_small_wobble_is_tolerated(self):
        fresh = {
            "average": {"speedup": 24.0, "floor": 5.0},  # -17%: fine
            "avoc": {"speedup": 28.0, "floor": 20.0},
        }
        assert compare_latency(COMMITTED_LATENCY, fresh) == []

    def test_speedup_below_floor_fails(self):
        fresh = {
            "average": {"speedup": 28.9, "floor": 5.0},
            "avoc": {"speedup": 15.0, "floor": 20.0},
        }
        failures = compare_latency(COMMITTED_LATENCY, fresh)
        # 15x trips both rules: below the 20x floor and >30% off 30.72x.
        assert len(failures) == 2
        assert any("below the recorded floor" in f for f in failures)
        assert all("avoc" in f for f in failures)

    def test_regression_over_30_percent_fails(self):
        fresh = {
            "average": {"speedup": 12.0, "floor": 5.0},  # -58% vs 28.87
            "avoc": {"speedup": 30.0, "floor": 20.0},
        }
        failures = compare_latency(COMMITTED_LATENCY, fresh)
        assert len(failures) == 1
        assert "regressed" in failures[0]

    def test_hardcoded_history_floor_overrides_stale_committed_floor(self):
        """A regenerated baseline cannot sneak the history floor back down."""
        committed = {"avoc": {"speedup": 5.44, "floor": 2.0}}
        fresh = {"avoc": {"speedup": 5.44, "floor": 2.0}}
        failures = compare_latency(committed, fresh)
        assert any("below the recorded floor 20.00x" in f for f in failures)

    def test_missing_algorithm_fails(self):
        fresh = {"average": {"speedup": 28.9, "floor": 5.0}}
        failures = compare_latency(COMMITTED_LATENCY, fresh)
        assert failures and "missing" in failures[0]


class TestCompareParallel:
    def test_clean_run_has_no_failures(self):
        assert compare_parallel(COMMITTED_PARALLEL, COMMITTED_PARALLEL) == []

    def test_ragged_algorithm_regression_fails(self):
        fresh = json.loads(json.dumps(COMMITTED_PARALLEL))
        fresh["ragged_kernel"]["algorithms"]["avoc"]["speedup"] = 1.0
        failures = compare_parallel(COMMITTED_PARALLEL, fresh)
        assert len(failures) == 2  # below floor AND >30% regression
        assert all("avoc" in f for f in failures)

    def test_unenforced_section_never_fails(self):
        fresh = json.loads(json.dumps(COMMITTED_PARALLEL))
        fresh["sweep_random_search_64"]["speedup"] = 0.1
        assert compare_parallel(COMMITTED_PARALLEL, fresh) == []


class TestCompareCluster:
    def test_clean_run_has_no_failures(self):
        assert compare_cluster(COMMITTED_CLUSTER, COMMITTED_CLUSTER) == []

    def test_enforced_throughput_below_floor_fails(self):
        fresh = json.loads(json.dumps(COMMITTED_CLUSTER))
        fresh["throughput"]["speedup"] = 1.1
        failures = compare_cluster(COMMITTED_CLUSTER, fresh)
        assert failures and "below the recorded floor" in failures[0]

    def test_unenforced_throughput_is_reported_not_failed(self, capsys):
        committed = json.loads(json.dumps(COMMITTED_CLUSTER))
        committed["throughput"]["enforced"] = False
        committed["throughput"]["speedup"] = 0.93  # single-CPU runner
        fresh = json.loads(json.dumps(committed))
        fresh["throughput"]["speedup"] = 0.5
        assert compare_cluster(committed, fresh) == []
        assert "[not enforced]" in capsys.readouterr().out

    def test_lost_rounds_fail(self):
        fresh = json.loads(json.dumps(COMMITTED_CLUSTER))
        fresh["failover"]["answered"] = 499
        failures = compare_cluster(COMMITTED_CLUSTER, fresh)
        assert failures == [
            "cluster/failover: rounds were lost (499 of 500 answered)"
        ]

    def test_diverged_outputs_fail(self):
        fresh = json.loads(json.dumps(COMMITTED_CLUSTER))
        fresh["failover"]["bit_identical"] = False
        failures = compare_cluster(COMMITTED_CLUSTER, fresh)
        assert failures and "diverged" in failures[0]

    def test_missing_fresh_sections_fail(self):
        failures = compare_cluster(COMMITTED_CLUSTER, {})
        assert len(failures) == 2
        assert any("throughput" in f for f in failures)
        assert any("failover" in f for f in failures)


COMMITTED_INGEST = {
    "cpu_count": 4,
    "roundtrip": {
        "ratio_v3_over_v2": 0.6,
        "ceiling": 0.7,
        "enforced": True,
    },
    "fan_in": {
        "total_rounds": 2400,
        "answered": 2400,
        "bit_identical": True,
        "enforced": True,
    },
}


class TestCompareIngest:
    def test_clean_run_has_no_failures(self):
        assert compare_ingest(COMMITTED_INGEST, COMMITTED_INGEST) == []

    def test_enforced_ratio_above_ceiling_fails(self):
        fresh = json.loads(json.dumps(COMMITTED_INGEST))
        fresh["roundtrip"]["ratio_v3_over_v2"] = 0.9
        failures = compare_ingest(COMMITTED_INGEST, fresh)
        assert failures and "above the 0.70 ceiling" in failures[0]

    def test_ratio_regression_over_tolerance_fails(self):
        committed = json.loads(json.dumps(COMMITTED_INGEST))
        committed["roundtrip"]["ratio_v3_over_v2"] = 0.4
        committed["roundtrip"]["ceiling"] = None
        fresh = json.loads(json.dumps(committed))
        fresh["roundtrip"]["ratio_v3_over_v2"] = 0.65
        failures = compare_ingest(committed, fresh)
        assert failures and "regressed" in failures[0]

    def test_unenforced_ratio_is_reported_not_failed(self, capsys):
        committed = json.loads(json.dumps(COMMITTED_INGEST))
        committed["roundtrip"]["enforced"] = False
        committed["roundtrip"]["ratio_v3_over_v2"] = 0.9  # 1-CPU runner
        fresh = json.loads(json.dumps(committed))
        fresh["roundtrip"]["ratio_v3_over_v2"] = 1.4
        assert compare_ingest(committed, fresh) == []
        assert "[not enforced]" in capsys.readouterr().out

    def test_lost_rounds_fail(self):
        fresh = json.loads(json.dumps(COMMITTED_INGEST))
        fresh["fan_in"]["answered"] = 2399
        failures = compare_ingest(COMMITTED_INGEST, fresh)
        assert failures == [
            "ingest/fan_in: rounds were lost (2399 of 2400 answered)"
        ]

    def test_diverged_outputs_fail(self):
        fresh = json.loads(json.dumps(COMMITTED_INGEST))
        fresh["fan_in"]["bit_identical"] = False
        failures = compare_ingest(COMMITTED_INGEST, fresh)
        assert failures and "diverged" in failures[0]

    def test_missing_fresh_sections_fail(self):
        failures = compare_ingest(COMMITTED_INGEST, {})
        assert len(failures) == 2
        assert any("roundtrip" in f for f in failures)
        assert any("fan_in" in f for f in failures)


COMMITTED_STORE = {
    "cold_start": {
        "n_series": 100_000,
        "speedup": 9.0,
        "floor": 5.0,
        "enforced": True,
    },
    "residency": {
        "hot_bound": 1024,
        "hot_within_bound": True,
        "bounded_under_unbounded": True,
        "enforced": True,
    },
    "identity": {"bit_identical": True},
}


class TestCompareStore:
    def test_clean_run_has_no_failures(self):
        assert compare_store(COMMITTED_STORE, COMMITTED_STORE) == []

    def test_cold_start_below_floor_fails(self):
        fresh = json.loads(json.dumps(COMMITTED_STORE))
        fresh["cold_start"]["speedup"] = 3.0
        failures = compare_store(COMMITTED_STORE, fresh)
        assert failures and any(
            "below the recorded floor" in f for f in failures
        )

    def test_cold_start_regression_over_tolerance_fails(self):
        committed = json.loads(json.dumps(COMMITTED_STORE))
        committed["cold_start"]["floor"] = None
        fresh = json.loads(json.dumps(committed))
        fresh["cold_start"]["speedup"] = 5.5  # -39% vs 9.0
        failures = compare_store(committed, fresh)
        assert failures and "regressed" in failures[0]

    def test_unenforced_cold_start_is_reported_not_failed(self, capsys):
        fresh = json.loads(json.dumps(COMMITTED_STORE))
        fresh["cold_start"]["speedup"] = 1.0
        fresh["cold_start"]["enforced"] = False  # small-series smoke run
        assert compare_store(COMMITTED_STORE, fresh) == []
        assert "[not enforced]" in capsys.readouterr().out

    def test_hot_set_over_bound_fails_even_unenforced(self):
        fresh = json.loads(json.dumps(COMMITTED_STORE))
        fresh["residency"]["hot_within_bound"] = False
        fresh["residency"]["enforced"] = False
        failures = compare_store(COMMITTED_STORE, fresh)
        assert failures and "exceeded its configured bound" in failures[0]

    def test_unenforced_heap_comparison_is_reported_not_failed(self, capsys):
        fresh = json.loads(json.dumps(COMMITTED_STORE))
        fresh["residency"]["bounded_under_unbounded"] = False
        fresh["residency"]["enforced"] = False
        assert compare_store(COMMITTED_STORE, fresh) == []
        assert "[not enforced]" in capsys.readouterr().out

    def test_enforced_heap_comparison_fails(self):
        fresh = json.loads(json.dumps(COMMITTED_STORE))
        fresh["residency"]["bounded_under_unbounded"] = False
        failures = compare_store(COMMITTED_STORE, fresh)
        assert failures and "did not hold less heap" in failures[0]

    def test_identity_divergence_always_fails(self):
        fresh = json.loads(json.dumps(COMMITTED_STORE))
        fresh["identity"]["bit_identical"] = False
        failures = compare_store(COMMITTED_STORE, fresh)
        assert failures == [
            "store/identity: evict/rehydrate states diverged from the "
            "always-resident reference"
        ]

    def test_missing_fresh_sections_fail(self):
        failures = compare_store(COMMITTED_STORE, {})
        assert len(failures) == 3
        assert any("cold_start" in f for f in failures)
        assert any("residency" in f for f in failures)
        assert any("identity" in f for f in failures)


class TestCli:
    def test_exits_zero_on_clean_baseline(self, tmp_path, capsys):
        committed, fresh = tmp_path / "committed", tmp_path / "fresh"
        _write(committed, COMMITTED_LATENCY, COMMITTED_PARALLEL)
        _write(fresh, COMMITTED_LATENCY, COMMITTED_PARALLEL)
        assert (
            main(["--committed-dir", str(committed), "--fresh-dir", str(fresh)])
            == 0
        )
        assert "passed" in capsys.readouterr().out

    def test_exits_nonzero_on_synthetic_regression(self, tmp_path, capsys):
        """The acceptance case: a regressed baseline must fail the gate."""
        committed, fresh = tmp_path / "committed", tmp_path / "fresh"
        _write(committed, COMMITTED_LATENCY)
        regressed = {
            "average": {"speedup": 3.0, "floor": 5.0},
            "avoc": {"speedup": 30.0, "floor": 20.0},
        }
        _write(fresh, regressed)
        assert (
            main(["--committed-dir", str(committed), "--fresh-dir", str(fresh)])
            == 1
        )
        err = capsys.readouterr().err
        assert "FAILED" in err
        assert "[bench-reset]" in err

    def test_exits_nonzero_when_fresh_file_missing(self, tmp_path):
        committed, fresh = tmp_path / "committed", tmp_path / "fresh"
        _write(committed, COMMITTED_LATENCY)
        fresh.mkdir()
        assert (
            main(["--committed-dir", str(committed), "--fresh-dir", str(fresh)])
            == 1
        )

    def test_nothing_gated_is_a_failure(self, tmp_path):
        committed, fresh = tmp_path / "committed", tmp_path / "fresh"
        committed.mkdir()
        fresh.mkdir()
        failures = compare_dirs(committed, fresh)
        assert failures and "nothing gated" in failures[0]

    def test_gate_accepts_the_repo_committed_baselines(self, capsys):
        """Sanity: the real committed files gate against themselves."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        if not (root / "BENCH_latency.json").is_file():
            pytest.skip("no committed baselines in this checkout")
        assert compare_dirs(root, root) == []
