"""Tests for the smart-shelf experiment driver."""

from __future__ import annotations

import pytest

from repro.datasets.shelf import ShelfConfig
from repro.experiments.shelf import HISTORY_MODES, run_shelf_experiment


@pytest.fixture(scope="module")
def shelf():
    return run_shelf_experiment(ShelfConfig(n_rounds=300))


class TestStructure:
    def test_all_modes_evaluated(self, shelf):
        assert set(shelf.fused_accuracy) == set(HISTORY_MODES)

    def test_sensor_accuracies_cover_roster(self, shelf):
        assert len(shelf.sensor_accuracy) == 24
        assert all(0.0 <= a <= 1.0 for a in shelf.sensor_accuracy.values())


class TestClaims:
    def test_fusion_beats_best_single_sensor(self, shelf):
        for mode in HISTORY_MODES:
            assert shelf.fused_accuracy[mode] > shelf.best_single

    def test_history_modes_at_least_match_stateless(self, shelf):
        # With a defective minority, record-weighted modes must not be
        # worse than plain majority.
        assert shelf.fused_accuracy["me"] >= shelf.fused_accuracy["none"] - 0.01
        assert shelf.fused_accuracy["standard"] >= shelf.fused_accuracy["none"] - 0.01

    def test_defective_sensors_are_the_worst(self, shelf):
        defective = set(shelf.dataset.config.defective_modules())
        worst_three = sorted(
            shelf.sensor_accuracy, key=shelf.sensor_accuracy.get
        )[:3]
        assert set(worst_three) == defective
