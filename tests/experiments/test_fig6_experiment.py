"""Tests for the UC-1 (Fig. 6) experiment driver.

These assert the *shape* of the paper's published results on a reduced
round count (the benchmarks run the full 10'000 rounds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.light_uc1 import UC1Config
from repro.experiments import FIG6_ALGORITHMS, run_fig6


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(UC1Config(n_rounds=400))


class TestStructure:
    def test_all_six_variants_present(self, fig6):
        assert set(fig6.diffs) == set(FIG6_ALGORITHMS)
        assert len(FIG6_ALGORITHMS) == 6

    def test_series_lengths(self, fig6):
        for alg in FIG6_ALGORITHMS:
            assert fig6.clean_outputs[alg].shape == (400,)
            assert fig6.diffs[alg].shape == (400,)

    def test_fault_dataset_metadata(self, fig6):
        assert fig6.faulty.metadata["fault"]["module"] == "E4"
        assert fig6.faulty.metadata["fault"]["delta"] == 6.0


class TestFig6bAllVariantsAgreeOnCleanData:
    def test_outputs_match_almost_completely(self, fig6):
        # "all 6 variants performed equally well, with outputs matching
        # almost completely" — cross-variant spread well under the
        # sensor spread itself.
        outputs = np.array([fig6.clean_outputs[a] for a in FIG6_ALGORITHMS])
        spread = outputs.max(axis=0) - outputs.min(axis=0)
        assert float(spread.mean()) < 0.3

    def test_outputs_in_18_19_band(self, fig6):
        for alg in FIG6_ALGORITHMS:
            mean = float(np.nanmean(fig6.clean_outputs[alg]))
            assert 17.5 < mean < 19.5


class TestFig6eShapes:
    def test_average_keeps_full_skew(self, fig6):
        assert np.allclose(fig6.diffs["average"], 1.2, atol=0.01)

    def test_standard_decays_slowly_without_recovering(self, fig6):
        diff = fig6.diffs["standard"]
        assert diff[0] == pytest.approx(1.2, abs=0.05)
        assert diff[-1] < diff[0]
        assert diff[-1] > 0.5  # nowhere near recovered in 400 rounds

    def test_me_recovers_at_round_two(self, fig6):
        assert fig6.exclusion_rounds["me"] == 1
        assert abs(fig6.diffs["me"][0]) > 1.0  # startup spike
        assert np.mean(np.abs(fig6.diffs["me"][2:])) < 0.2

    def test_hybrid_diff_near_zero_after_transient(self, fig6):
        tail = fig6.diffs["hybrid"][10:]
        assert np.mean(np.abs(tail)) < 0.2

    def test_clustering_excludes_fault_from_round_one(self, fig6):
        assert fig6.exclusion_rounds["clustering"] == 0
        assert abs(fig6.diffs["clustering"][0]) < 0.2

    def test_history_voters_spike_at_startup_avoc_does_not(self, fig6):
        # "history-based algorithms experience a spike on startup ...
        # [AVOC's] initial spike is quickly pruned".
        assert abs(fig6.diffs["standard"][0]) > 1.0
        assert abs(fig6.diffs["me"][0]) > 1.0
        assert abs(fig6.diffs["avoc"][0]) < 0.2


class TestHeadlineBoost:
    def test_avoc_bootstraps_exclusion_to_round_zero(self, fig6):
        assert fig6.exclusion_rounds["avoc"] == 0

    def test_hybrid_needs_several_rounds(self, fig6):
        assert 2 <= fig6.exclusion_rounds["hybrid"] <= 5

    def test_boost_about_four_x(self, fig6):
        # Abstract: "boosts the convergence of the measurements by 4×".
        assert 3.0 <= fig6.boost <= 6.0

    def test_stateless_never_excludes(self, fig6):
        assert fig6.exclusion_rounds["average"] == 400
        assert fig6.exclusion_rounds["standard"] == 400
