"""Adversarial ranking sweep: determinism, winners, worker identity."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.adversarial import (
    DEFAULT_CATEGORICAL_ALGORITHMS,
    DEFAULT_NUMERIC_ALGORITHMS,
    run_adversarial_sweep,
)

ROUNDS = 160
SEVERITIES = (3.0,)


@pytest.fixture(scope="module")
def small_sweep():
    return run_adversarial_sweep(
        scenarios=("colluding_pair", "symbol_burst"),
        algorithms=("average", "incoherence",
                    "categorical_majority", "probabilistic"),
        severities=SEVERITIES,
        rounds=ROUNDS,
    )


class TestSweepMechanics:
    def test_kind_filtering_splits_algorithms(self, small_sweep):
        assert small_sweep.algorithms["colluding_pair"] == (
            "average", "incoherence",
        )
        assert small_sweep.algorithms["symbol_burst"] == (
            "categorical_majority", "probabilistic",
        )

    def test_all_cells_filled(self, small_sweep):
        for scenario, contenders in small_sweep.algorithms.items():
            for algorithm in contenders:
                for severity in SEVERITIES:
                    value = small_sweep.metric(scenario, algorithm, severity)
                    assert value >= 0.0

    def test_deterministic_across_runs(self, small_sweep):
        again = run_adversarial_sweep(
            scenarios=("colluding_pair", "symbol_burst"),
            algorithms=("average", "incoherence",
                        "categorical_majority", "probabilistic"),
            severities=SEVERITIES,
            rounds=ROUNDS,
        )
        assert again.metrics == small_sweep.metrics

    def test_identical_at_any_worker_count(self, small_sweep):
        parallel = run_adversarial_sweep(
            scenarios=("colluding_pair", "symbol_burst"),
            algorithms=("average", "incoherence",
                        "categorical_majority", "probabilistic"),
            severities=SEVERITIES,
            rounds=ROUNDS,
            workers=2,
        )
        assert parallel.metrics == small_sweep.metrics

    def test_defaults_resolve_per_kind(self):
        result = run_adversarial_sweep(
            scenarios=("symbol_burst",), severities=(1.0,), rounds=80,
        )
        assert result.algorithms["symbol_burst"] == (
            DEFAULT_CATEGORICAL_ALGORITHMS
        )
        assert "incoherence" in DEFAULT_NUMERIC_ALGORITHMS

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="warmup"):
            run_adversarial_sweep(rounds=40, warmup=40)
        with pytest.raises(ConfigurationError, match="severity"):
            run_adversarial_sweep(severities=())
        with pytest.raises(ConfigurationError, match="unknown scenarios"):
            run_adversarial_sweep(scenarios=("nope",))
        with pytest.raises(ConfigurationError, match="unknown algorithms"):
            run_adversarial_sweep(algorithms=("nope",))
        with pytest.raises(ConfigurationError, match="no .* pairs"):
            run_adversarial_sweep(
                scenarios=("symbol_burst",), algorithms=("average",),
            )


class TestExpectedWinners:
    """The CI robustness matrix asserts one winner per threat model."""

    def test_incoherence_wins_colluding_pair(self, small_sweep):
        assert small_sweep.winner("colluding_pair") == "incoherence"
        ranking = dict(small_sweep.ranking("colluding_pair"))
        assert ranking["incoherence"] < ranking["average"]

    def test_probabilistic_wins_symbol_burst(self, small_sweep):
        assert small_sweep.winner("symbol_burst") == "probabilistic"
        ranking = dict(small_sweep.ranking("symbol_burst"))
        assert ranking["probabilistic"] < ranking["categorical_majority"]

    def test_incoherence_beats_average_under_flip_flop(self):
        result = run_adversarial_sweep(
            scenarios=("flip_flop",),
            algorithms=("average", "incoherence"),
            severities=SEVERITIES,
            rounds=ROUNDS,
        )
        ranking = dict(result.ranking("flip_flop"))
        assert ranking["incoherence"] < ranking["average"]


class TestReporting:
    def test_ranking_rows(self, small_sweep):
        rows = {row["scenario"]: row for row in small_sweep.ranking_rows()}
        assert rows["colluding_pair"]["kind"] == "numeric"
        assert rows["symbol_burst"]["kind"] == "categorical"
        assert rows["symbol_burst"]["winner"] == "probabilistic"

    def test_markdown_tables(self, small_sweep):
        text = small_sweep.to_markdown()
        assert "### Numeric scenarios" in text
        assert "### Categorical scenarios" in text
        assert "| colluding_pair |" in text
        # The winner's cell is bolded.
        assert "**" in text

    def test_json_round_trip(self, small_sweep):
        payload = json.loads(small_sweep.to_json())
        assert payload["rounds"] == ROUNDS
        assert payload["winners"]["colluding_pair"] == "incoherence"
        cells = {
            (c["scenario"], c["algorithm"], c["severity"]): c["metric"]
            for c in payload["cells"]
        }
        assert cells == {
            key: pytest.approx(value)
            for key, value in small_sweep.metrics.items()
        }
