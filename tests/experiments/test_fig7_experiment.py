"""Tests for the UC-2 (Fig. 7) experiment driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.ble_uc2 import UC2Config
from repro.experiments import FIG7_COLLATION_GROUPS, run_fig7


@pytest.fixture(scope="module")
def fig7():
    return run_fig7(UC2Config())


class TestStructure:
    def test_panels_cover_both_stacks(self, fig7):
        for panel in (fig7.single_beacon, fig7.nine_average, fig7.avoc_voting):
            assert set(panel) == {"A", "B"}
            assert panel["A"].shape == (297,)

    def test_collation_groups_cover_all_algorithms(self, fig7):
        grouped = [a for group in FIG7_COLLATION_GROUPS.values() for a in group]
        assert set(grouped) == set(fig7.per_algorithm)


class TestPaperShapes:
    def test_redundancy_reduces_ambiguity(self, fig7):
        # Fig. 7-a vs 7-b: averaging 9 beacons is visibly less
        # ambiguous than a single beacon per stack (both metrics).
        assert fig7.ambiguity("nine_average") < fig7.ambiguity("single_beacon")
        assert fig7.instability("nine_average") < fig7.instability("single_beacon") / 2

    def test_averaging_beats_mnn_selection(self, fig7):
        # §7: "with averaging being the better option in our experiment".
        assert fig7.instability("nine_average") < fig7.instability("avoc_voting")

    def test_redundancy_improves_accuracy(self, fig7):
        assert fig7.accuracy("nine_average") > fig7.accuracy("single_beacon")
        assert fig7.accuracy("nine_average") > 0.8

    def test_history_method_has_no_effect(self, fig7):
        # "The output of all history-based algorithms overlaps
        # completely" within a collation group.
        averaging = FIG7_COLLATION_GROUPS["averaging"]
        reference = fig7.per_algorithm[averaging[0]]
        for algorithm in averaging[1:]:
            series = fig7.per_algorithm[algorithm]
            for stack in ("A", "B"):
                delta = np.nanmean(np.abs(series[stack] - reference[stack]))
                assert delta < 1.5, algorithm

    def test_collation_method_does_have_effect(self, fig7):
        # The two groups differ visibly ("2 algorithm groups").
        avg = fig7.per_algorithm["average"]["A"]
        mnn = fig7.per_algorithm["avoc"]["A"]
        assert np.nanmean(np.abs(avg - mnn)) > 0.5

    def test_instability_by_algorithm_groups(self, fig7):
        # "2 algorithm groups ... with every algorithm in each group
        # performing identically to each other" and averaging winning.
        instability = fig7.algorithm_instability()
        averaging = [instability[a] for a in FIG7_COLLATION_GROUPS["averaging"]]
        selection = [instability[a] for a in FIG7_COLLATION_GROUPS["selection"]]
        assert max(averaging) < min(selection)
        # Within-group spread is small relative to the between-group gap.
        assert max(averaging) - min(averaging) <= 5
        assert max(selection) - min(selection) <= 5
