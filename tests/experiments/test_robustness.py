"""Tests for the fault-magnitude robustness sweep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.robustness import (
    DEFAULT_ALGORITHMS,
    run_robustness_sweep,
)


@pytest.fixture(scope="module")
def sweep(uc1_small):
    return run_robustness_sweep(
        uc1_small.slice(0, 150), deltas=(0.25, 1.0, 6.0)
    )


class TestStructure:
    def test_all_algorithms_and_deltas_present(self, sweep):
        assert sweep.algorithms == DEFAULT_ALGORITHMS
        for algorithm in sweep.algorithms:
            assert len(sweep.residual[algorithm]) == 3

    def test_series_accessor(self, sweep):
        series = sweep.series("avoc")
        assert series.shape == (3,)
        assert np.all(series >= 0)


class TestRegimes:
    def test_sub_margin_faults_undetectable_by_all(self, sweep):
        # 0.25 klm is deep inside the 0.9 klm margin: residual ≈ Δ/5.
        for algorithm in sweep.algorithms:
            assert sweep.residual[algorithm][0] == pytest.approx(0.05, abs=0.03)

    def test_super_margin_faults_masked_by_robust_voters(self, sweep):
        for algorithm in ("me", "hybrid", "clustering", "avoc"):
            assert sweep.residual[algorithm][2] < 0.15

    def test_average_error_grows_linearly(self, sweep):
        avg = sweep.series("average")
        assert avg[2] == pytest.approx(6.0 / 5.0, abs=0.05)

    def test_breakdown_delta(self, sweep):
        assert sweep.breakdown_delta("average") == 6.0  # never recovers
        assert sweep.breakdown_delta("me") <= 1.0
