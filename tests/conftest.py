"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets.ble_uc2 import UC2Config, generate_uc2_dataset
from repro.datasets.injection import offset_fault
from repro.datasets.light_uc1 import UC1Config, generate_uc1_dataset
from repro.types import Round


@pytest.fixture(scope="session")
def uc1_small():
    """A 400-round UC-1 dataset (fast enough for unit tests)."""
    return generate_uc1_dataset(UC1Config(n_rounds=400))


@pytest.fixture(scope="session")
def uc1_small_faulty(uc1_small):
    """UC-1 small dataset with the paper's +6 kilolumen fault on E4."""
    return offset_fault(uc1_small, "E4", 6.0)


@pytest.fixture(scope="session")
def uc2_dataset():
    """The full 297-round UC-2 BLE dataset."""
    return generate_uc2_dataset(UC2Config())


@pytest.fixture
def clean_round():
    """One agreeing 5-sensor round around 18 kilolumen."""
    return Round.from_values(0, [18.0, 18.1, 17.9, 18.15, 18.05])


@pytest.fixture
def outlier_round():
    """One round where E4 carries the +6 fault."""
    return Round.from_values(0, [18.0, 18.1, 17.9, 24.1, 18.05])
