"""Tests for dataset error injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.injection import drop_values, offset_fault, spike_fault, stuck_fault
from repro.exceptions import DatasetError


class TestOffsetFault:
    def test_paper_fault_adds_six(self, uc1_small):
        faulty = offset_fault(uc1_small, "E4", 6.0)
        delta = faulty.column("E4") - uc1_small.column("E4")
        assert np.allclose(delta, 6.0)

    def test_other_modules_untouched(self, uc1_small):
        faulty = offset_fault(uc1_small, "E4", 6.0)
        for module in ("E1", "E2", "E3", "E5"):
            assert np.array_equal(faulty.column(module), uc1_small.column(module))

    def test_original_not_mutated(self, uc1_small):
        before = uc1_small.matrix.copy()
        offset_fault(uc1_small, "E4", 6.0)
        assert np.array_equal(uc1_small.matrix, before)

    def test_windowed_fault(self, uc1_small):
        faulty = offset_fault(uc1_small, "E4", 6.0, start_round=100, end_round=200)
        delta = faulty.column("E4") - uc1_small.column("E4")
        assert np.allclose(delta[:100], 0.0)
        assert np.allclose(delta[100:200], 6.0)
        assert np.allclose(delta[200:], 0.0)

    def test_metadata_records_fault(self, uc1_small):
        faulty = offset_fault(uc1_small, "E4", 6.0)
        assert faulty.metadata["fault"]["type"] == "offset"
        assert faulty.metadata["fault"]["module"] == "E4"
        assert faulty.name.endswith("fault-E4")

    def test_unknown_module_rejected(self, uc1_small):
        with pytest.raises(DatasetError):
            offset_fault(uc1_small, "E9", 6.0)

    def test_bad_window_rejected(self, uc1_small):
        with pytest.raises(DatasetError):
            offset_fault(uc1_small, "E4", 6.0, start_round=10, end_round=5)

    def test_start_beyond_dataset_rejected(self, uc1_small):
        # Regression: this used to silently no-op, returning a "faulty"
        # dataset identical to the clean one.
        with pytest.raises(DatasetError, match="beyond dataset"):
            offset_fault(uc1_small, "E4", 6.0, start_round=uc1_small.n_rounds)

    def test_end_beyond_dataset_rejected(self, uc1_small):
        # Regression: this used to silently clamp to n_rounds.
        with pytest.raises(DatasetError, match="beyond dataset"):
            offset_fault(uc1_small, "E4", 6.0, end_round=uc1_small.n_rounds + 1)

    def test_negative_start_rejected(self, uc1_small):
        with pytest.raises(DatasetError, match="non-negative"):
            offset_fault(uc1_small, "E4", 6.0, start_round=-1)

    def test_every_injector_validates_windows(self, uc1_small):
        from repro.datasets import drop_values, spike_fault, stuck_fault

        bad = uc1_small.n_rounds + 10
        for inject in (
            lambda: stuck_fault(uc1_small, "E4", 1.0, start_round=bad),
            lambda: spike_fault(uc1_small, "E4", 5.0, end_round=bad),
            lambda: drop_values(uc1_small, "E4", 0.5, start_round=bad),
        ):
            with pytest.raises(DatasetError, match="beyond dataset"):
                inject()


class TestOtherInjectors:
    def test_stuck(self, uc1_small):
        stuck = stuck_fault(uc1_small, "E1", 0.0)
        assert np.allclose(stuck.column("E1"), 0.0)

    def test_spikes_hit_expected_fraction(self, uc1_small):
        spiked = spike_fault(uc1_small, "E2", magnitude=50.0, probability=0.2, seed=1)
        hit = np.abs(spiked.column("E2") - uc1_small.column("E2")) > 1.0
        assert 0.1 < hit.mean() < 0.3

    def test_spike_probability_validated(self, uc1_small):
        with pytest.raises(DatasetError):
            spike_fault(uc1_small, "E2", magnitude=1.0, probability=1.5)

    def test_drop_values(self, uc1_small):
        dropped = drop_values(uc1_small, "E3", probability=0.5, seed=2)
        frac = np.isnan(dropped.column("E3")).mean()
        assert 0.4 < frac < 0.6
        assert not np.isnan(dropped.column("E1")).any()

    def test_drop_everything(self, uc1_small):
        dropped = drop_values(uc1_small, "E3", probability=1.0)
        assert np.isnan(dropped.column("E3")).all()
