"""Tests for dataset CSV/JSON persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.dataset import Dataset
from repro.datasets.loader import load_csv, load_json, save_csv, save_json
from repro.exceptions import DatasetError


def sample_dataset():
    return Dataset(
        name="sample",
        modules=["a", "b"],
        matrix=np.array([[1.0, 2.0], [np.nan, 4.0]]),
        times=np.array([0.0, 0.125]),
        metadata={"unit": "klm", "seed": 7},
    )


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "d.csv"
        original = sample_dataset()
        save_csv(original, path)
        loaded = load_csv(path)
        assert loaded.modules == original.modules
        assert np.array_equal(loaded.matrix, original.matrix, equal_nan=True)
        assert np.allclose(loaded.times, original.times)

    def test_round_trip_without_times(self, tmp_path):
        ds = Dataset("x", ["m"], np.array([[1.5]]))
        path = tmp_path / "d.csv"
        save_csv(ds, path)
        loaded = load_csv(path)
        assert loaded.times is None
        assert loaded.matrix[0, 0] == 1.5

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mydata.csv"
        save_csv(sample_dataset(), path)
        assert load_csv(path).name == "mydata"

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_csv(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            load_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1.0\n")
        with pytest.raises(DatasetError, match="expected 2 cells"):
            load_csv(path)

    def test_values_survive_exactly(self, tmp_path):
        ds = Dataset("x", ["m"], np.array([[0.1234567890123]]))
        path = tmp_path / "precise.csv"
        save_csv(ds, path)
        assert load_csv(path).matrix[0, 0] == ds.matrix[0, 0]


class TestJson:
    def test_round_trip_with_metadata(self, tmp_path):
        path = tmp_path / "d.json"
        original = sample_dataset()
        save_json(original, path)
        loaded = load_json(path)
        assert loaded.name == "sample"
        assert loaded.metadata == {"unit": "klm", "seed": 7}
        assert np.array_equal(loaded.matrix, original.matrix, equal_nan=True)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(DatasetError, match="invalid dataset JSON"):
            load_json(path)

    def test_missing_keys(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text('{"name": "x"}')
        with pytest.raises(DatasetError, match="missing key"):
            load_json(path)

    def test_uc1_round_trip(self, tmp_path, uc1_small):
        path = tmp_path / "uc1.json"
        save_json(uc1_small, path)
        loaded = load_json(path)
        assert np.allclose(loaded.matrix, uc1_small.matrix)
