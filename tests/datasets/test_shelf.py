"""Tests for the smart-shelf categorical scenario."""

from __future__ import annotations

import pytest

from repro.datasets.shelf import (
    STATES,
    ShelfConfig,
    generate_shelf_dataset,
)
from repro.exceptions import DatasetError
from repro.types import Round
from repro.voting.categorical import CategoricalMajorityVoter


class TestGenerator:
    def test_shapes(self):
        ds = generate_shelf_dataset(ShelfConfig(n_rounds=100, n_sensors=12))
        assert ds.n_rounds == 100
        assert len(ds.modules) == 12
        assert len(ds.readings[0]) == 12
        assert len(ds.truth) == 100

    def test_values_are_known_states_or_missing(self):
        ds = generate_shelf_dataset(ShelfConfig(n_rounds=50))
        for row in ds.readings:
            for value in row:
                assert value is None or value in STATES

    def test_deterministic_per_seed(self):
        a = generate_shelf_dataset(ShelfConfig(n_rounds=50))
        b = generate_shelf_dataset(ShelfConfig(n_rounds=50))
        assert a.readings == b.readings
        assert a.truth == b.truth

    def test_truth_flips_occasionally(self):
        ds = generate_shelf_dataset(ShelfConfig(n_rounds=500))
        flips = sum(1 for a, b in zip(ds.truth, ds.truth[1:]) if a != b)
        assert flips > 0

    def test_defective_sensors_are_less_accurate(self):
        config = ShelfConfig(n_rounds=500)
        ds = generate_shelf_dataset(config)
        defective = set(config.defective_modules())

        def accuracy(module):
            idx = ds.modules.index(module)
            pairs = [
                (row[idx], true)
                for row, true in zip(ds.readings, ds.truth)
                if row[idx] is not None
            ]
            return sum(1 for r, t in pairs if r == t) / len(pairs)

        worst_healthy = min(
            accuracy(m) for m in ds.modules if m not in defective
        )
        best_defective = max(accuracy(m) for m in defective)
        assert best_defective < worst_healthy

    def test_defective_majority_rejected(self):
        with pytest.raises(DatasetError, match="minority"):
            ShelfConfig(n_sensors=6, n_defective=3)

    def test_bad_probability_rejected(self):
        with pytest.raises(DatasetError):
            ShelfConfig(healthy_accuracy=1.5)

    def test_accuracy_of_validates_length(self):
        ds = generate_shelf_dataset(ShelfConfig(n_rounds=10))
        with pytest.raises(DatasetError):
            ds.accuracy_of(["present"] * 5)


class TestCategoricalVotingOnShelf:
    def run_voter(self, ds, voter):
        outputs = []
        for number in range(ds.n_rounds):
            voting_round = Round.from_mapping(number, ds.round_values(number))
            outputs.append(voter.vote(voting_round).value)
        return outputs

    def test_majority_voting_beats_single_sensor(self):
        config = ShelfConfig(n_rounds=400)
        ds = generate_shelf_dataset(config)
        voter = CategoricalMajorityVoter(history_mode="standard")
        fused_accuracy = ds.accuracy_of(self.run_voter(ds, voter))
        # A single healthy sensor is right ~95 % of the time; 24-way
        # majority should be essentially always right.
        assert fused_accuracy > 0.99

    def test_me_mode_eliminates_defective_sensors(self):
        config = ShelfConfig(n_rounds=400)
        ds = generate_shelf_dataset(config)
        voter = CategoricalMajorityVoter(history_mode="me")
        self.run_voter(ds, voter)
        defective = set(config.defective_modules())
        records = voter.history.snapshot()
        worst_healthy = min(
            v for m, v in records.items() if m not in defective
        )
        best_defective = max(records[m] for m in defective)
        assert best_defective < worst_healthy
