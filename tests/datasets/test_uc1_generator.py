"""Tests for the UC-1 light dataset generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.light_uc1 import (
    DEFAULT_BIASES,
    UC1Config,
    build_uc1_array,
    generate_uc1_dataset,
)


class TestPaperParameters:
    def test_default_config_matches_section3(self):
        config = UC1Config()
        assert config.n_rounds == 10_000
        assert config.sample_rate_hz == 8.0
        assert config.n_sensors == 5
        assert config.duration_seconds == pytest.approx(1250.0)

    def test_module_names(self):
        assert UC1Config().module_names() == ("E1", "E2", "E3", "E4", "E5")


class TestGeneratedData:
    def test_shape(self, uc1_small):
        assert uc1_small.matrix.shape == (400, 5)
        assert uc1_small.times[1] - uc1_small.times[0] == pytest.approx(1 / 8)

    def test_values_in_figure_band(self, uc1_small):
        # Fig. 6-a: roughly the 17-20 kilolumen band.
        assert uc1_small.matrix.min() > 16.0
        assert uc1_small.matrix.max() < 21.0

    def test_sensors_share_the_signal(self):
        # All sensors track the same ground truth: over a window long
        # enough for the sunlight level to actually move, deviations
        # from each sensor's mean must correlate strongly.
        ds = generate_uc1_dataset(UC1Config(n_rounds=4000))
        a = ds.column("E1") - ds.column("E1").mean()
        b = ds.column("E5") - ds.column("E5").mean()
        corr = float(np.corrcoef(a, b)[0, 1])
        assert corr > 0.5

    def test_biases_visible_in_column_means(self, uc1_small):
        means = [uc1_small.column(m).mean() for m in uc1_small.modules]
        # E3 carries the lowest bias by construction.
        assert np.argmin(means) == 2
        spreads = np.asarray(means) - np.mean(means)
        expected = np.asarray(DEFAULT_BIASES) - np.mean(DEFAULT_BIASES)
        assert np.allclose(spreads, expected, atol=0.05)

    def test_deterministic_per_seed(self):
        a = generate_uc1_dataset(UC1Config(n_rounds=50))
        b = generate_uc1_dataset(UC1Config(n_rounds=50))
        assert np.array_equal(a.matrix, b.matrix)

    def test_different_seeds_differ(self):
        a = generate_uc1_dataset(UC1Config(n_rounds=50, seed=1))
        b = generate_uc1_dataset(UC1Config(n_rounds=50, seed=2))
        assert not np.array_equal(a.matrix, b.matrix)

    def test_no_missing_values(self, uc1_small):
        assert uc1_small.missing_fraction() == 0.0

    def test_metadata_provenance(self, uc1_small):
        assert uc1_small.metadata["unit"] == "kilolumen"
        assert uc1_small.metadata["seed"] == 1202

    def test_agreement_within_voting_margin(self, uc1_small):
        # The paper's Fig. 6-b requires healthy sensors to agree at the
        # 5 % threshold nearly always: count pairwise agreements.
        margin = 0.05 * np.median(uc1_small.matrix)
        matrix = uc1_small.matrix
        agreements = []
        for i in range(matrix.shape[1]):
            for j in range(i + 1, matrix.shape[1]):
                agreements.append(np.abs(matrix[:, i] - matrix[:, j]) <= margin)
        assert np.mean(agreements) > 0.9


class TestArrayBuilder:
    def test_array_names(self):
        array = build_uc1_array(UC1Config())
        assert array.module_names == ["E1", "E2", "E3", "E4", "E5"]

    def test_too_few_sensors_rejected(self):
        from repro.exceptions import DatasetError

        with pytest.raises(DatasetError):
            build_uc1_array(UC1Config(biases=(0.0,)))
