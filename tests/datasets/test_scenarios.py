"""Adversarial scenario generators: validation and seeded determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.light_uc1 import UC1Config, generate_uc1_dataset
from repro.datasets.scenarios import (
    available_scenarios,
    build_scenario,
    colluding_offset_fault,
    drift_fault,
    flapping_fault,
    flip_flop_fault,
    generate_multirate_dataset,
    generate_symbol_burst,
    scenario_kind,
)
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def base():
    return generate_uc1_dataset(UC1Config(n_rounds=120))


class TestCompositeInjectors:
    def test_colluding_pair_applies_same_offset(self, base):
        faulty = colluding_offset_fault(base, ("E1", "E2"), 3.0, start_round=10)
        diff = faulty.matrix - base.matrix
        assert np.allclose(np.nan_to_num(diff[10:, 0]), 3.0)
        assert np.allclose(np.nan_to_num(diff[10:, 1]), 3.0)
        assert np.all(np.nan_to_num(diff[:, 2:]) == 0.0)
        assert np.all(np.nan_to_num(diff[:10]) == 0.0)

    def test_collusion_needs_two_distinct_minority_modules(self, base):
        with pytest.raises(DatasetError, match="at least two"):
            colluding_offset_fault(base, ("E1",), 3.0)
        with pytest.raises(DatasetError, match="distinct"):
            colluding_offset_fault(base, ("E1", "E1"), 3.0)
        with pytest.raises(DatasetError, match="minority"):
            colluding_offset_fault(base, ("E1", "E2", "E3"), 3.0)

    def test_flip_flop_alternates_offset(self, base):
        faulty = flip_flop_fault(base, "E1", 2.0, period=5)
        diff = np.nan_to_num(faulty.matrix - base.matrix)[:, 0]
        assert np.allclose(diff[0:5], 2.0)
        assert np.allclose(diff[5:10], 0.0)
        assert np.allclose(diff[10:15], 2.0)

    def test_flip_flop_rejects_bad_period(self, base):
        with pytest.raises(DatasetError, match="period"):
            flip_flop_fault(base, "E1", 2.0, period=0)

    def test_drift_ramps_linearly(self, base):
        faulty = drift_fault(base, "E3", 4.0)
        diff = np.nan_to_num(faulty.matrix - base.matrix)[:, 2]
        assert diff[0] == pytest.approx(0.0)
        assert diff[-1] == pytest.approx(4.0)
        assert np.all(np.diff(diff) >= -1e-9)

    def test_drift_needs_two_rounds(self, base):
        with pytest.raises(DatasetError, match="two rounds"):
            drift_fault(base, "E3", 4.0, start_round=base.n_rounds - 1)

    def test_flapping_cycles_outage_and_bias(self, base):
        faulty = flapping_fault(base, "E2", outage=4, uptime=6, delta=1.5)
        column = faulty.matrix[:, 1]
        assert np.all(np.isnan(column[0:4]))
        rejoined = column[4:10] - base.matrix[4:10, 1]
        assert np.allclose(rejoined[~np.isnan(rejoined)], 1.5)
        assert np.all(np.isnan(column[10:14]))

    def test_flapping_rejects_bad_cycle(self, base):
        with pytest.raises(DatasetError, match="outage and uptime"):
            flapping_fault(base, "E2", outage=0, uptime=5)

    def test_injector_windows_are_validated(self, base):
        with pytest.raises(DatasetError, match="beyond dataset"):
            colluding_offset_fault(
                base, ("E1", "E2"), 3.0, start_round=base.n_rounds
            )
        with pytest.raises(DatasetError, match="beyond dataset"):
            flip_flop_fault(base, "E1", 2.0, end_round=base.n_rounds + 1)


class TestMultirateWorkload:
    def test_modalities_and_cadence(self):
        data = generate_multirate_dataset(rounds=60, seed=7)
        assert data.modules == ["F1", "F2", "M1", "M2", "S1", "S2"]
        slow = data.matrix[:, 4]
        off_tick = [i for i in range(60) if i % 5 != 0]
        assert np.all(np.isnan(slow[off_tick]))
        meta = data.metadata["modalities"]
        assert meta["F1"]["unit"] != meta["M1"]["unit"] != meta["S1"]["unit"]

    def test_normalized_to_common_unit(self):
        data = generate_multirate_dataset(rounds=60, seed=7)
        # All modalities track the same latent kilolumen signal, so the
        # per-module means agree despite the native-unit quantization.
        means = [np.nanmean(data.matrix[:, i]) for i in range(6)]
        assert max(means) - min(means) < 1.0

    def test_rejects_short_runs_and_short_base(self, base):
        with pytest.raises(DatasetError, match="at least 10"):
            generate_multirate_dataset(rounds=5)
        with pytest.raises(DatasetError, match="need 500"):
            generate_multirate_dataset(rounds=500, base=base)

    def test_seeded_determinism(self):
        a = generate_multirate_dataset(rounds=40, seed=11)
        b = generate_multirate_dataset(rounds=40, seed=11)
        c = generate_multirate_dataset(rounds=40, seed=12)
        assert np.array_equal(a.matrix, b.matrix, equal_nan=True)
        assert not np.array_equal(a.matrix, c.matrix, equal_nan=True)


class TestSymbolBurst:
    def test_clean_and_attacked_share_truth_and_healthy_noise(self):
        clean, attacked = generate_symbol_burst(rounds=80, severity=2.0)
        assert clean.truth == attacked.truth
        assert clean.modules == attacked.modules
        colluders = set(attacked.metadata["colluders"])
        burst_every = attacked.metadata["burst_every"]
        burst_length = attacked.metadata["burst_length"]
        for number in range(80):
            in_burst = number % burst_every < burst_length
            for i, module in enumerate(clean.modules):
                if module in colluders or in_burst:
                    continue
                # Outside bursts the healthy streams are identical.
                assert clean.readings[number][i] == attacked.readings[number][i]

    def test_colluders_emit_wrong_symbol_in_bursts(self):
        clean, attacked = generate_symbol_burst(rounds=80, severity=1.0)
        colluders = set(attacked.metadata["colluders"])
        for number in range(attacked.metadata["burst_length"]):
            truth = attacked.truth[number]
            for i, module in enumerate(attacked.modules):
                if module in colluders:
                    value = attacked.readings[number][i]
                    assert value is not None and value != truth

    def test_severity_scales_burst_dropout(self):
        _, mild = generate_symbol_burst(rounds=80, severity=1.0)
        _, harsh = generate_symbol_burst(rounds=80, severity=6.0)
        assert harsh.metadata["burst_dropout"] > mild.metadata["burst_dropout"]

    def test_validation(self):
        with pytest.raises(DatasetError, match="minority"):
            generate_symbol_burst(rounds=80, n_sensors=6, n_colluders=3)
        with pytest.raises(DatasetError, match="severity"):
            generate_symbol_burst(rounds=80, severity=0.0)
        with pytest.raises(DatasetError, match="rounds"):
            generate_symbol_burst(rounds=10)

    def test_flip_probability_enables_regime_changes(self):
        clean, _ = generate_symbol_burst(
            rounds=400, seed=7, flip_probability=0.05
        )
        assert len(set(clean.truth)) == 2


class TestScenarioRegistry:
    def test_available_and_kinds(self):
        names = available_scenarios()
        assert names == tuple(sorted(names))
        assert set(names) == {
            "colluding_pair", "flip_flop", "slow_drift", "flapping",
            "multirate", "symbol_burst",
        }
        assert scenario_kind("symbol_burst") == "categorical"
        assert scenario_kind("colluding_pair") == "numeric"
        with pytest.raises(DatasetError, match="unknown scenario"):
            scenario_kind("nope")

    def test_build_validation(self):
        with pytest.raises(DatasetError, match="at least 16"):
            build_scenario("flip_flop", rounds=8)
        with pytest.raises(DatasetError, match="severity"):
            build_scenario("flip_flop", rounds=40, severity=-1.0)
        with pytest.raises(DatasetError, match="unknown scenario"):
            build_scenario("nope", rounds=40)

    @pytest.mark.parametrize("name", sorted(
        ("colluding_pair", "flip_flop", "slow_drift", "flapping",
         "multirate", "symbol_burst")
    ))
    def test_every_scenario_is_seed_deterministic(self, name):
        a = build_scenario(name, rounds=64, severity=2.0, seed=9)
        b = build_scenario(name, rounds=64, severity=2.0, seed=9)
        assert a.kind == b.kind
        assert a.faulty_modules == b.faulty_modules
        if a.kind == "numeric":
            assert np.array_equal(
                a.faulty.matrix, b.faulty.matrix, equal_nan=True
            )
            assert np.array_equal(
                a.clean.matrix, b.clean.matrix, equal_nan=True
            )
        else:
            assert a.faulty.readings == b.faulty.readings
            assert a.faulty.truth == b.faulty.truth

    def test_base_is_sliced_and_checked(self, base):
        data = build_scenario(
            "colluding_pair", rounds=64, severity=1.0, base=base
        )
        assert data.clean.n_rounds == 64
        with pytest.raises(DatasetError, match="need 200"):
            build_scenario("colluding_pair", rounds=200, base=base)
