"""Tests for the Dataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.dataset import Dataset
from repro.exceptions import DatasetError


def make_dataset():
    return Dataset(
        name="d",
        modules=["a", "b"],
        matrix=np.array([[1.0, 2.0], [3.0, np.nan], [5.0, 6.0]]),
        times=np.array([0.0, 0.5, 1.0]),
        metadata={"unit": "x"},
    )


class TestConstruction:
    def test_shapes_validated(self):
        with pytest.raises(DatasetError):
            Dataset("d", ["a"], np.ones((2, 2)))
        with pytest.raises(DatasetError):
            Dataset("d", ["a"], np.ones(3))
        with pytest.raises(DatasetError):
            Dataset("d", ["a"], np.ones((2, 1)), times=np.zeros(3))

    def test_properties(self):
        ds = make_dataset()
        assert ds.n_rounds == 3
        assert ds.n_modules == 2


class TestAccess:
    def test_column(self):
        assert np.allclose(make_dataset().column("a"), [1.0, 3.0, 5.0])

    def test_column_unknown_module(self):
        with pytest.raises(DatasetError):
            make_dataset().column("z")

    def test_rounds_iteration(self):
        rounds = list(make_dataset().rounds())
        assert len(rounds) == 3
        assert rounds[1].value_of("b") is None
        assert rounds[1].readings[0].timestamp == 0.5

    def test_missing_fraction(self):
        assert make_dataset().missing_fraction() == pytest.approx(1 / 6)


class TestDerivation:
    def test_slice(self):
        ds = make_dataset().slice(1, 3)
        assert ds.n_rounds == 2
        assert np.allclose(ds.times, [0.5, 1.0])

    def test_slice_is_a_copy(self):
        original = make_dataset()
        sliced = original.slice(0, 1)
        sliced.matrix[0, 0] = 99.0
        assert original.matrix[0, 0] == 1.0

    def test_with_matrix(self):
        ds = make_dataset()
        derived = ds.with_matrix(ds.matrix * 2, suffix="x2", note="doubled")
        assert derived.name == "d-x2"
        assert derived.metadata["unit"] == "x"
        assert derived.metadata["note"] == "doubled"
        assert derived.matrix[0, 0] == 2.0
