"""Tests for the UC-2 BLE dataset generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.ble_uc2 import UC2Config, build_uc2_stack, generate_uc2_dataset
from repro.exceptions import DatasetError


class TestPaperParameters:
    def test_defaults_match_section3(self):
        config = UC2Config()
        assert config.n_rounds == 297
        assert config.track_length_m == 15.0
        assert config.robot_speed_mps == 0.09
        assert config.beacons_per_stack == 9
        assert config.duration_seconds == pytest.approx(166.67, abs=0.1)

    def test_module_names(self):
        config = UC2Config()
        assert config.module_names("A")[0] == "A1"
        assert config.module_names("B")[-1] == "B9"


class TestGeneratedData:
    def test_shapes(self, uc2_dataset):
        assert uc2_dataset.stack_a.matrix.shape == (297, 9)
        assert uc2_dataset.stack_b.matrix.shape == (297, 9)
        assert uc2_dataset.positions_m.shape == (297,)

    def test_missing_values_present(self, uc2_dataset):
        # §7: "The resulting data lacks several values" — the missing-
        # value fault scenario must actually occur.
        assert uc2_dataset.stack_a.missing_fraction() > 0.02
        assert uc2_dataset.stack_b.missing_fraction() > 0.02

    def test_rssi_crossover_along_track(self, uc2_dataset):
        # Stack A starts strong and fades; stack B the reverse.
        a = uc2_dataset.stack_a.matrix
        b = uc2_dataset.stack_b.matrix
        a_start, a_end = np.nanmean(a[:30]), np.nanmean(a[-30:])
        b_start, b_end = np.nanmean(b[:30]), np.nanmean(b[-30:])
        assert a_start > a_end
        assert b_end > b_start
        assert a_start > b_start
        assert b_end > a_end

    def test_rssi_within_physical_range(self, uc2_dataset):
        for ds in (uc2_dataset.stack_a, uc2_dataset.stack_b):
            values = ds.matrix[~np.isnan(ds.matrix)]
            assert values.min() >= -110.0
            assert values.max() <= -20.0

    def test_true_closest_flips_mid_track(self, uc2_dataset):
        truth = uc2_dataset.true_closest()
        assert truth[0] == "A"
        assert truth[-1] == "B"
        flips = (truth[:-1] != truth[1:]).sum()
        assert flips == 1

    def test_deterministic_per_seed(self):
        a = generate_uc2_dataset(UC2Config())
        b = generate_uc2_dataset(UC2Config())
        assert np.array_equal(a.stack_a.matrix, b.stack_a.matrix, equal_nan=True)

    def test_per_beacon_bias_spread(self, uc2_dataset):
        # "mismatched readings in each stack": beacon means must differ.
        means = np.nanmean(uc2_dataset.stack_a.matrix, axis=0)
        assert means.std() > 0.5


class TestStackBuilder:
    def test_unknown_stack_rejected(self):
        with pytest.raises(DatasetError):
            build_uc2_stack(UC2Config(), "C")

    def test_stack_b_beacons_near_far_end(self):
        config = UC2Config()
        array = build_uc2_stack(config, "B")
        # At t=0 the robot is 15 m from stack B.
        values = [b.signal.value(0.0) for b in array.sensors]
        assert np.mean(values) < -75.0
