"""Protocol v3: binary framing, negotiation, and mixed-version fleets."""

from __future__ import annotations

import math
import socket
import struct

import pytest

from repro.service.client import ServiceError, VoterClient
from repro.service.facade import FusionClient, connect
from repro.service.protocol import (
    FRAME_HEADER,
    FRAME_MAGIC,
    MAX_FRAME_BYTES,
    ErrorCode,
    ProtocolError,
    VersionMismatchError,
    decode_frame,
    decode_frame_header,
    decode_frame_payload,
    encode_frame,
    encode_message,
    ok_response,
)
from repro.service.server import VoterServer
from repro.vdx.examples import AVOC_SPEC

FAULTY = {"E1": 18.0, "E2": 18.1, "E3": 17.9, "E4": 24.0, "E5": 18.05}


@pytest.fixture()
def server():
    with VoterServer(AVOC_SPEC) as srv:
        yield srv


class LegacyVoterServer(VoterServer):
    """A frozen-in-time v2 peer: JSON only, no capability flags."""

    def _op_hello(self, request):
        version = request["version"]
        if version != 2:
            raise VersionMismatchError(
                f"protocol version mismatch: peer speaks {version}, "
                "this server speaks 2"
            )
        return ok_response(version=2, server=type(self).__name__)


@pytest.fixture()
def legacy_server():
    with LegacyVoterServer(AVOC_SPEC) as srv:
        yield srv


class TestCodecRoundTrips:
    def round_trip(self, message):
        return decode_frame(encode_frame(message))

    def test_flat_message(self):
        message = {"op": "vote", "round": 1, "values": {"E1": 18.0, "E2": None}}
        assert self.round_trip(message) == message

    def test_nested_structures(self):
        message = {
            "a": [1, 2.5, "x", None, True, False],
            "b": {"inner": {"deep": [[], {}]}},
            "empty": "",
        }
        assert self.round_trip(message) == message

    def test_scalar_nan_becomes_null(self):
        # JSON parity: encode_message maps NaN to null, the frame
        # codec must agree or the two framings diverge semantically.
        assert self.round_trip({"value": float("nan")}) == {"value": None}

    def test_f64_row_with_gaps(self):
        message = {"rows": [[18.0, None, 17.9], [1.5, 2.5, 3.5]]}
        assert self.round_trip(message) == message

    def test_f64_row_nan_cell_becomes_null(self):
        decoded = self.round_trip({"rows": [[1.0, float("nan")]]})
        assert decoded == {"rows": [[1.0, None]]}

    def test_int_lists_keep_int_type(self):
        decoded = self.round_trip({"rounds": [0, 1, 2]})
        assert decoded["rounds"] == [0, 1, 2]
        assert all(type(n) is int for n in decoded["rounds"])

    def test_float_rows_keep_float_type(self):
        decoded = self.round_trip({"rows": [[1.0, 2.0]]})
        assert all(type(v) is float for v in decoded["rows"][0])

    def test_unicode_strings(self):
        message = {"série": "température ✓", "s": "ß" * 100}
        assert self.round_trip(message) == message

    def test_large_batch_round_trips(self):
        rows = [[float(i) + j / 10 for j in range(5)] for i in range(500)]
        message = {
            "op": "vote_batch",
            "batches": [
                {
                    "series": "s0",
                    "rounds": list(range(500)),
                    "modules": ["E1", "E2", "E3", "E4", "E5"],
                    "rows": rows,
                }
            ],
        }
        assert self.round_trip(message) == message

    def test_binary_smaller_than_json_for_batches(self):
        # Full-precision sensor floats cost ~18 JSON characters each
        # but a fixed 8 bytes in a packed f64 row.
        rows = [[i / 3.0 + j / 7.0 for j in range(5)] for i in range(200)]
        message = {"rows": rows}
        assert len(encode_frame(message)) < len(encode_message(message))


class TestFrameRejection:
    def test_truncated_header(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame_header(bytes([FRAME_MAGIC, 1]))
        assert excinfo.value.code == ErrorCode.MALFORMED_FRAME

    def test_bad_magic(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame_header(struct.pack("!BBHI", 0x00, 1, 0, 4))
        assert excinfo.value.code == ErrorCode.MALFORMED_FRAME

    def test_oversized_frame(self):
        header = struct.pack("!BBHI", FRAME_MAGIC, 1, 0, MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame_header(header)
        assert excinfo.value.code == ErrorCode.FRAME_TOO_LARGE

    def test_truncated_payload(self):
        frame = encode_frame({"op": "ping"})
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(frame[:-2])
        assert excinfo.value.code == ErrorCode.MALFORMED_FRAME

    def test_trailing_garbage(self):
        frame = encode_frame({"op": "ping"})
        header = FRAME_HEADER.pack(
            FRAME_MAGIC, 1, 0, len(frame) - FRAME_HEADER.size + 3
        )
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(header + frame[FRAME_HEADER.size:] + b"\x00\x00\x00")
        assert excinfo.value.code == ErrorCode.MALFORMED_FRAME

    def test_unknown_type_tag(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame_payload(b"\xff")
        assert excinfo.value.code == ErrorCode.MALFORMED_FRAME

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame_payload(b"\x00")  # a bare null, not a message
        assert excinfo.value.code == ErrorCode.MALFORMED_FRAME

    def test_depth_bomb_rejected(self):
        nested: dict = {"x": None}
        for _ in range(64):
            nested = {"x": nested}
        with pytest.raises(ProtocolError) as excinfo:
            encode_frame(nested)
        assert excinfo.value.code == ErrorCode.MALFORMED_FRAME


class TestDualStackServer:
    def test_binary_request_binary_response(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(encode_frame({"op": "ping"}))
            header = sock.recv(FRAME_HEADER.size, socket.MSG_WAITALL)
            length = decode_frame_header(header)
            payload = sock.recv(length, socket.MSG_WAITALL)
            assert decode_frame_payload(payload) == {
                "ok": True, "pong": True
            }

    def test_json_request_json_response(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(encode_message({"op": "ping"}))
            first = sock.recv(1)
            assert first != bytes([FRAME_MAGIC])

    def test_framings_interleave_on_one_connection(self, server):
        host, port = server.address
        with VoterClient(host, port) as client:
            client.negotiate("binary")
            assert client.vote(0, FAULTY)["status"] == "ok"
            client._binary = False  # drop back to JSON mid-connection
            assert client.vote(1, FAULTY)["status"] == "ok"
            client._binary = True
            assert client.stats()["rounds_processed"] == 2

    def test_malformed_frame_answers_then_disconnects(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(struct.pack("!BBHI", FRAME_MAGIC, 9, 0, 0))
            header = sock.recv(FRAME_HEADER.size, socket.MSG_WAITALL)
            length = decode_frame_header(header)
            response = decode_frame_payload(
                sock.recv(length, socket.MSG_WAITALL)
            )
            assert response["ok"] is False
            assert response["code"] == str(ErrorCode.MALFORMED_FRAME.value)
            assert sock.recv(1) == b""  # server hung up

    def test_oversized_frame_rejected_and_disconnected(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(
                struct.pack("!BBHI", FRAME_MAGIC, 1, 0, MAX_FRAME_BYTES + 1)
            )
            header = sock.recv(FRAME_HEADER.size, socket.MSG_WAITALL)
            length = decode_frame_header(header)
            response = decode_frame_payload(
                sock.recv(length, socket.MSG_WAITALL)
            )
            assert response["code"] == str(ErrorCode.FRAME_TOO_LARGE.value)
            assert sock.recv(1) == b""

    def test_binary_vote_matches_json_vote(self, server):
        host, port = server.address
        with VoterClient(host, port) as binary_client:
            binary_client.negotiate("binary")
            binary_result = binary_client.vote(0, FAULTY)
        with VoterClient(host, port) as json_client:
            json_client.negotiate("json")
            json_result = json_client.vote(1, FAULTY)
        assert binary_result["value"] == json_result["value"]
        assert binary_result["status"] == json_result["status"]


class TestNegotiation:
    def test_auto_upgrades_to_binary(self, server):
        host, port = server.address
        with connect((host, port)) as client:
            assert client.version == 3
            assert client.transport == "binary"
            assert client.ping()

    def test_json_pin_stays_json(self, server):
        host, port = server.address
        with connect((host, port), transport="json") as client:
            assert client.version == 2
            assert client.transport == "json"
            assert client.vote(0, FAULTY)["status"] == "ok"

    def test_v2_hello_still_accepted(self, server):
        host, port = server.address
        with VoterClient(host, port) as client:
            assert client.hello(2) == 2  # echo, not the server maximum

    def test_v3_hello_advertises_capabilities(self, server):
        host, port = server.address
        with VoterClient(host, port) as client:
            assert client.hello(3) == 3
            assert client._peer_binary_framing
            assert client._peer_max_version == 3

    def test_bad_transport_rejected(self, server):
        host, port = server.address
        with VoterClient(host, port) as client:
            with pytest.raises(ValueError):
                client.negotiate("carrier-pigeon")


class TestMixedVersionFleet:
    def test_auto_downgrades_against_legacy_server(self, legacy_server):
        host, port = legacy_server.address
        with connect((host, port)) as client:
            assert client.version == 2
            assert client.transport == "json"
            assert client.vote(0, FAULTY)["status"] == "ok"

    def test_binary_pin_fails_against_legacy_server(self, legacy_server):
        host, port = legacy_server.address
        client = VoterClient(host, port)
        client.connect()
        try:
            with pytest.raises((ServiceError, ProtocolError)):
                client.negotiate("binary")
        finally:
            client.close()

    def test_capability_downgrade_mid_fleet(self, server, legacy_server):
        # One fleet, two server generations: the same connect() call
        # lands on binary v3 against the new node and on JSON v2
        # against the old one, and votes fuse identically.
        results = {}
        for name, srv in (("new", server), ("old", legacy_server)):
            host, port = srv.address
            with connect((host, port)) as client:
                results[name] = (client.transport, client.vote(0, FAULTY))
        assert results["new"][0] == "binary"
        assert results["old"][0] == "json"
        assert results["new"][1]["value"] == results["old"][1]["value"]

    def test_future_version_rejected_with_code(self, server):
        host, port = server.address
        with VoterClient(host, port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.hello(4)
            assert excinfo.value.code == str(ErrorCode.VERSION_MISMATCH.value)


class TestErrorEnvelope:
    def test_already_voted_code_over_binary(self, server):
        host, port = server.address
        with VoterClient(host, port) as client:
            client.negotiate("binary")
            client.vote(0, FAULTY)
            with pytest.raises(ServiceError) as excinfo:
                client.vote(0, FAULTY)
            assert excinfo.value.code == str(ErrorCode.ALREADY_VOTED.value)

    def test_invalid_value_code(self, server):
        host, port = server.address
        with VoterClient(host, port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request(
                    {"op": "vote", "round": 0, "values": {"E1": "wet"}}
                )
            assert excinfo.value.code == str(ErrorCode.INVALID_VALUE.value)

    def test_legacy_envelope_leaves_code_none(self, legacy_server):
        host, port = legacy_server.address
        with VoterClient(host, port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.hello(3)
            assert excinfo.value.code == str(ErrorCode.VERSION_MISMATCH.value)


class TestFacade:
    def test_facade_surface(self, server):
        host, port = server.address
        with connect((host, port)) as client:
            assert isinstance(client, FusionClient)
            assert client.ping()
            result = client.vote(0, FAULTY)
            assert math.isclose(result["value"], 18.0, abs_tol=0.2)
            assert client.history()  # non-empty after a vote
            assert client.stats()["rounds_processed"] == 1
            assert "service_requests_total" in client.metrics()
            assert "FusionClient" in repr(client)

    def test_facade_accepts_host_port_string(self, server):
        host, port = server.address
        with connect(f"{host}:{port}") as client:
            assert client.ping()

    def test_facade_rejects_bad_address(self):
        with pytest.raises(ProtocolError):
            connect("no-port-here")

    def test_raw_escape_hatch(self, server):
        host, port = server.address
        with connect((host, port)) as client:
            assert client.raw.ping()
