"""Regression tests: malformed values must never kill a connection.

A crafted payload whose value is a string, boolean, or a bare JSON
``Infinity`` / ``NaN`` literal used to escape the numeric checks and
either raise inside the handler thread (dead connection, no response)
or produce a response ``encode_message`` could not serialise
(``allow_nan=False``).  Every case must instead yield an
``{"ok": false, ...}`` line on the same, still-usable connection.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.history.memory import MemoryHistoryStore
from repro.service.client import ServiceError, VoterClient
from repro.service.server import VoterServer
from repro.vdx.examples import AVOC_SPEC, STANDARD_SPEC

READINGS = {"E1": 18.0, "E2": 18.1, "E3": 17.9, "E4": 24.0, "E5": 18.05}


@pytest.fixture()
def server():
    with VoterServer(AVOC_SPEC) as srv:
        yield srv


def exchange(sock, payload: bytes):
    """Send one raw line, read one response line."""
    sock.sendall(payload + b"\n")
    return sock.makefile("rb").readline()


class TestMalformedValues:
    @pytest.mark.parametrize(
        "values_json",
        [
            '{"E1": "abc"}',  # string
            '{"E1": true}',  # boolean sneaks past isinstance(int) checks
            '{"E1": Infinity}',  # parses as float("inf")
            '{"E1": NaN}',  # parses as float("nan")
            '{"E1": [18.0]}',  # list
        ],
    )
    def test_vote_with_bad_value_returns_error(self, server, values_json):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            payload = (
                '{"op": "vote", "round": 0, "values": %s}' % values_json
            ).encode()
            response = json.loads(exchange(sock, payload))
            assert response["ok"] is False
            assert "error" in response
            # Same connection must still serve requests afterwards.
            pong = json.loads(exchange(sock, b'{"op": "ping"}'))
            assert pong["ok"] is True

    @pytest.mark.parametrize(
        "value_json", ['"abc"', "true", "Infinity", "NaN", "{}"]
    )
    def test_submit_with_bad_value_returns_error(self, server, value_json):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            payload = (
                '{"op": "submit", "round": 0, "module": "E1", "value": %s}'
                % value_json
            ).encode()
            response = json.loads(exchange(sock, payload))
            assert response["ok"] is False
            pong = json.loads(exchange(sock, b'{"op": "ping"}'))
            assert pong["ok"] is True

    def test_bad_value_does_not_consume_the_round(self, server):
        # A rejected vote must leave the round free to vote properly.
        host, port = server.address
        with VoterClient(host, port) as client:
            with pytest.raises(ServiceError):
                client.request(
                    {"op": "vote", "round": 0, "values": {"E1": "oops"}}
                )
            result = client.vote(0, READINGS)
            assert result["status"] == "ok"

    def test_null_values_still_accepted(self, server):
        host, port = server.address
        with VoterClient(host, port) as client:
            readings = dict(READINGS)
            readings["E5"] = None
            # AVOC_SPEC's 100 % quorum degrades the round, but the
            # null itself must be accepted, not rejected as malformed.
            result = client.vote(0, readings)
            assert result["round"] == 0
            assert result["status"] in {"ok", "held", "skipped"}


class TestConfigureKeepsHistoryStore:
    def test_store_survives_hot_swap(self):
        store = MemoryHistoryStore()
        with VoterServer(STANDARD_SPEC, history_store=store) as server:
            host, port = server.address
            with VoterClient(host, port) as client:
                client.vote(0, READINGS)
                saves_before = store.save_count
                assert saves_before > 0
                assert store.load() != {}

                assert client.configure(AVOC_SPEC.to_dict())

                # The swap cleared the old scheme's records...
                assert store.load() == {}
                # ...but kept the store attached: the new engine
                # persists its records to the same backend.
                client.vote(0, READINGS)
                assert store.save_count > saves_before
                assert store.load() != {}

    def test_swap_without_store_stays_storeless(self):
        with VoterServer(STANDARD_SPEC) as server:
            host, port = server.address
            with VoterClient(host, port) as client:
                assert client.configure(AVOC_SPEC.to_dict())
                result = client.vote(0, READINGS)
                assert result["status"] == "ok"
