"""Tests for VoterClient's opt-in reconnect-and-replay behaviour.

A drop-prone front server consumes a request and hangs up without
answering, then behaves normally — the transport failure a flaky
network or a restarting backend produces.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster.backend import ShardServer
from repro.cluster.retry import RetryPolicy
from repro.service.client import IDEMPOTENT_OPS, REPLAY_CACHED_OPS, VoterClient
from repro.service.protocol import ConnectionClosedError
from repro.service.server import VoterServer, _Handler, _ThreadingServer
from repro.vdx.examples import AVOC_SPEC

MODULES = ["E1", "E2", "E3"]


class _DropHandler(_Handler):
    """Consume one request, then close the connection unanswered."""

    def handle(self) -> None:
        if self.server.drops_remaining > 0:  # type: ignore[attr-defined]
            self.server.drops_remaining -= 1  # type: ignore[attr-defined]
            self.rfile.readline()
            return
        super().handle()


def _droppy_front(service):
    front = _ThreadingServer(("127.0.0.1", 0), _DropHandler)
    front.service = service
    front.drops_remaining = 0
    thread = threading.Thread(
        target=front.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    return front, thread


@pytest.fixture()
def droppy():
    """A front for a plain (strict, non-replaying) voter service that
    drops the first ``drops_remaining`` connections after reading the
    request."""
    service = VoterServer(AVOC_SPEC)
    front, thread = _droppy_front(service)
    try:
        yield front
    finally:
        front.shutdown()
        front.server_close()
        thread.join(timeout=5.0)
        service.stop()


@pytest.fixture()
def droppy_shard():
    """Same drop-prone front, but over a replay-caching shard server."""
    service = ShardServer(AVOC_SPEC)
    front, thread = _droppy_front(service)
    try:
        yield front
    finally:
        front.shutdown()
        front.server_close()
        thread.join(timeout=5.0)
        service.stop()


def make_client(front, **kwargs):
    host, port = front.server_address
    return VoterClient(host, port, **kwargs)


class TestReplay:
    def test_default_client_fails_fast(self, droppy):
        droppy.drops_remaining = 1
        with make_client(droppy) as client:
            with pytest.raises(ConnectionClosedError):
                client.ping()

    def test_idempotent_request_replayed_after_drop(self, droppy):
        droppy.drops_remaining = 2
        with make_client(droppy, retries=3) as client:
            assert client.ping()
        assert droppy.drops_remaining == 0

    def test_vote_replayed_against_replay_caching_peer(self, droppy_shard):
        # The shard advertises ``replays_votes`` in the hello handshake,
        # which unlocks transparent vote replay.
        with make_client(droppy_shard, retries=2) as client:
            client.hello()
            droppy_shard.drops_remaining = 1
            client.close()  # the next request opens a droppable connection
            result = client.vote(
                0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="s"
            )
            assert result["round"] == 0
        assert droppy_shard.drops_remaining == 0  # the drop really happened

    def test_vote_not_replayed_against_strict_server(self, droppy):
        # A plain VoterServer has no replay cache: a replayed vote would
        # answer "already voted", so the client must fail fast instead.
        with make_client(droppy, retries=2) as client:
            client.hello()
            droppy.drops_remaining = 1
            client.close()  # the next request opens a droppable connection
            with pytest.raises(ConnectionClosedError):
                client.vote(0, dict(zip(MODULES, [18.0, 18.1, 17.9])))
        assert droppy.drops_remaining == 0  # consumed once, no replay

    def test_vote_not_replayed_without_handshake(self, droppy_shard):
        # Without a hello the peer's capabilities are unknown: stay safe.
        droppy_shard.drops_remaining = 1
        with make_client(droppy_shard, retries=2) as client:
            with pytest.raises(ConnectionClosedError):
                client.vote(
                    0, dict(zip(MODULES, [18.0, 18.1, 17.9])), series="s"
                )

    def test_retries_exhausted_raises_transport_error(self, droppy):
        droppy.drops_remaining = 5
        with make_client(droppy, retries=2) as client:
            with pytest.raises(ConnectionClosedError):
                client.ping()

    def test_non_idempotent_ops_never_replayed(self, droppy):
        droppy.drops_remaining = 1
        with make_client(droppy, retries=3) as client:
            with pytest.raises(ConnectionClosedError):
                client.submit(0, "E1", 18.0)
        # The drop was consumed exactly once: no replay happened.
        assert droppy.drops_remaining == 0

    def test_replay_set_membership(self):
        assert "submit" not in IDEMPOTENT_OPS
        assert "close_round" not in IDEMPOTENT_OPS
        assert "configure" not in IDEMPOTENT_OPS
        # Votes replay only against peers that advertise a replay cache.
        assert "vote" not in IDEMPOTENT_OPS
        assert REPLAY_CACHED_OPS == {"vote", "vote_batch"}

    def test_backoff_schedule_is_respected(self, droppy, monkeypatch):
        delays = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", delays.append
        )
        droppy.drops_remaining = 2
        policy = RetryPolicy(max_retries=4, base_delay=0.1, multiplier=3.0,
                             max_delay=10.0)
        with make_client(droppy, retries=4, backoff=policy) as client:
            assert client.ping()
        assert delays == pytest.approx([0.1, 0.3])

    def test_reconnect_uses_a_fresh_connection(self, droppy):
        droppy.drops_remaining = 0
        with make_client(droppy, retries=1) as client:
            assert client.ping()
            # Simulate the server restarting under the client.
            droppy.close_all_connections()
            assert client.ping()  # replayed over a new connection
