"""End-to-end tests for the voter service over real sockets."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.service.client import ServiceError, VoterClient
from repro.service.server import VoterServer
from repro.vdx.examples import AVOC_SPEC, STANDARD_SPEC

FAULTY = {"E1": 18.0, "E2": 18.1, "E3": 17.9, "E4": 24.0, "E5": 18.05}


@pytest.fixture()
def server():
    with VoterServer(AVOC_SPEC) as srv:
        yield srv


@pytest.fixture()
def client(server):
    host, port = server.address
    with VoterClient(host, port) as cli:
        yield cli


class TestBasicOperations:
    def test_ping(self, client):
        assert client.ping()

    def test_spec_round_trips(self, client):
        spec = client.spec()
        assert spec["algorithm_name"] == "AVOC"
        assert spec["collation"] == "MEAN_NEAREST_NEIGHBOR"

    def test_vote_full_round(self, client):
        result = client.vote(0, FAULTY)
        assert result["status"] == "ok"
        assert result["eliminated"] == ["E4"]
        assert result["used_bootstrap"] is True
        assert result["value"] != 24.0

    def test_history_visible_after_vote(self, client):
        client.vote(0, FAULTY)
        records = client.history()
        assert records["E4"] == 0.0
        assert records["E1"] == 1.0

    def test_stats(self, client):
        client.vote(0, FAULTY)
        stats = client.stats()
        assert stats["rounds_processed"] == 1
        assert stats["algorithm"] == "AVOC"
        assert stats["last_value"] == pytest.approx(18.0, abs=0.2)

    def test_reset(self, client):
        client.vote(0, FAULTY)
        assert client.reset()
        assert client.stats()["rounds_processed"] == 0
        # After reset the records are fresh, so round 0 can vote again.
        result = client.vote(0, FAULTY)
        assert result["used_bootstrap"] is True


class TestIncrementalSubmission:
    def test_submit_completes_roster_and_votes(self, client):
        client.vote(0, FAULTY)  # establishes the roster
        for i, (module, value) in enumerate(FAULTY.items()):
            ack = client.submit(1, module, value)
            if i < len(FAULTY) - 1:
                assert ack["voted"] is False
                assert ack["pending"] == i + 1
            else:
                assert ack["voted"] is True
                assert ack["result"]["round"] == 1

    def test_close_round_respects_spec_quorum(self, client):
        # Listing 1 demands 100 % quorum: closing a 3-of-5 round is a
        # quorum failure, which the default policy turns into a skip.
        client.vote(0, FAULTY)
        client.submit(1, "E1", 18.0)
        client.submit(1, "E2", 18.1)
        client.submit(1, "E3", 17.9)
        result = client.close_round(1)
        assert result["status"] == "skipped"

    def test_close_round_votes_partial_set_without_quorum(self):
        spec = AVOC_SPEC.with_overrides(quorum="NONE")
        with VoterServer(spec) as srv:
            with VoterClient(*srv.address) as cli:
                cli.vote(0, FAULTY)
                cli.submit(1, "E1", 18.0)
                cli.submit(1, "E2", 18.1)
                cli.submit(1, "E3", 17.9)
                result = cli.close_round(1)
                assert result["status"] == "ok"
                assert result["value"] == pytest.approx(18.0, abs=0.2)

    def test_close_unknown_round_errors(self, client):
        with pytest.raises(ServiceError, match="no pending submissions"):
            client.close_round(99)

    def test_double_vote_rejected(self, client):
        client.vote(0, FAULTY)
        with pytest.raises(ServiceError, match="already voted"):
            client.vote(0, FAULTY)

    def test_submit_to_voted_round_rejected(self, client):
        client.vote(0, FAULTY)
        with pytest.raises(ServiceError, match="already voted"):
            client.submit(0, "E1", 18.0)


class TestFaultPolicyOverTheWire:
    def test_document_fault_policy_applies_to_service_rounds(self):
        # A VDX 1.1 document with hold-last-value semantics: degraded
        # rounds answered over the network carry the held value.
        spec = AVOC_SPEC.with_overrides(
            quorum="NONE",
            fault_policy={"on_missing_majority": "last_value",
                          "missing_tolerance": 0.4},
        )
        with VoterServer(spec) as server:
            with VoterClient(*server.address) as client:
                first = client.vote(0, FAULTY)
                assert first["status"] == "ok"
                degraded = client.vote(
                    1, {"E1": 18.0, "E2": None, "E3": None, "E4": None,
                        "E5": None}
                )
                assert degraded["status"] == "held"
                assert degraded["value"] == first["value"]


class TestHotReconfiguration:
    def test_configure_swaps_scheme(self, client):
        client.vote(0, FAULTY)
        from repro.vdx.examples import LISTING_1

        document = dict(LISTING_1)
        document.update({"algorithm_name": "Standard-live",
                         "history": "STANDARD", "collation": "MEAN",
                         "bootstrapping": False})
        assert client.configure(document) == "Standard-live"
        assert client.spec()["algorithm_name"] == "Standard-live"
        # State was discarded: round 0 can vote again, fresh records.
        result = client.vote(0, FAULTY)
        assert result["status"] == "ok"
        assert result["value"] == pytest.approx(19.21, abs=0.01)  # plain mean

    def test_invalid_document_rejected_and_scheme_kept(self, client):
        with pytest.raises(ServiceError, match="categorical"):
            client.configure(
                {
                    "algorithm_name": "broken",
                    "value_type": "CATEGORICAL",
                    "history": "HYBRID",
                    "collation": "MEAN",
                }
            )
        assert client.spec()["algorithm_name"] == "AVOC"

    def test_configure_requires_object(self, client):
        with pytest.raises(ServiceError, match="'spec' object"):
            client.request({"op": "configure", "spec": "AVOC"})


class TestRobustness:
    def test_malformed_line_gets_error_response(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(b"this is not json\n")
            response = sock.makefile("rb").readline()
            assert b'"ok": false' in response

    def test_connection_survives_bad_request(self, client):
        with pytest.raises(ServiceError):
            client.request({"op": "explode"})
        assert client.ping()  # same connection still usable

    def test_concurrent_clients_share_one_engine(self, server):
        host, port = server.address
        with VoterClient(host, port) as warmup:
            warmup.vote(0, FAULTY)  # roster + round 0

        errors = []

        def submit_module(module, value):
            try:
                with VoterClient(host, port) as cli:
                    cli.submit(1, module, value)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=submit_module, args=(m, v))
            for m, v in FAULTY.items()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        with VoterClient(host, port) as cli:
            stats = cli.stats()
            # All five submissions landed in one engine: round 1 voted.
            assert stats["rounds_processed"] == 2
            assert stats["pending_rounds"] == []

    def test_two_servers_do_not_interfere(self):
        with VoterServer(AVOC_SPEC) as a, VoterServer(STANDARD_SPEC) as b:
            with VoterClient(*a.address) as ca, VoterClient(*b.address) as cb:
                assert ca.spec()["algorithm_name"] == "AVOC"
                assert cb.spec()["algorithm_name"] == "Standard"
