"""Tests for the protocol-version handshake (``hello``)."""

from __future__ import annotations

import pytest

from repro.service.client import ServiceError, VoterClient
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    validate_request,
)
from repro.service.server import VoterServer
from repro.vdx.examples import AVOC_SPEC


@pytest.fixture()
def server():
    with VoterServer(AVOC_SPEC) as running:
        yield running


@pytest.fixture()
def client(server):
    with VoterClient(*server.address) as c:
        yield c


class TestHello:
    def test_matching_version_accepted(self, client):
        assert client.hello() == PROTOCOL_VERSION

    def test_response_names_the_server_class(self, client):
        response = client.request(
            {"op": "hello", "version": PROTOCOL_VERSION}
        )
        assert response["server"] == "VoterServer"

    def test_older_peer_rejected_with_clear_error(self, client):
        with pytest.raises(ServiceError, match="protocol version mismatch"):
            client.hello(version=1)

    def test_newer_peer_rejected_with_clear_error(self, client):
        with pytest.raises(
            ServiceError,
            match=f"peer speaks {PROTOCOL_VERSION + 1}, this server speaks "
                  f"{PROTOCOL_VERSION}",
        ):
            client.hello(version=PROTOCOL_VERSION + 1)

    def test_connection_survives_a_rejected_handshake(self, client):
        with pytest.raises(ServiceError):
            client.hello(version=99)
        assert client.ping()


class TestValidation:
    def test_version_field_required(self):
        with pytest.raises(ProtocolError, match="version"):
            validate_request({"op": "hello"})

    def test_version_must_be_an_integer(self):
        for bad in ("2", 2.5, True, None):
            with pytest.raises(ProtocolError):
                validate_request({"op": "hello", "version": bad})

    def test_valid_hello_passes(self):
        assert validate_request(
            {"op": "hello", "version": PROTOCOL_VERSION}
        ) == "hello"
