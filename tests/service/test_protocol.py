"""Tests for the voter-service wire protocol."""

from __future__ import annotations

import json

import pytest

from repro.service.protocol import (
    MAX_LINE_BYTES,
    ErrorCode,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    validate_request,
)


class TestEncodeDecode:
    def test_round_trip(self):
        message = {"op": "vote", "round": 1, "values": {"E1": 18.0}}
        assert decode_message(encode_message(message).strip()) == message

    def test_nan_becomes_null(self):
        data = encode_message({"value": float("nan")})
        assert json.loads(data)["value"] is None

    def test_newline_terminated(self):
        assert encode_message({"op": "ping"}).endswith(b"\n")

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            decode_message(b"{nope")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message(b"[1, 2]")

    def test_oversized_line_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_message(b"x" * (MAX_LINE_BYTES + 1))


class TestValidateRequest:
    def test_known_ops_pass(self):
        assert validate_request({"op": "ping"}) == "ping"
        assert validate_request({"op": "stats"}) == "stats"

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown or missing op"):
            validate_request({"op": "explode"})

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError):
            validate_request({})

    def test_vote_shape(self):
        validate_request({"op": "vote", "round": 0, "values": {"E1": 1.0, "E2": None}})
        with pytest.raises(ProtocolError, match="integer 'round'"):
            validate_request({"op": "vote", "round": "0", "values": {"E1": 1.0}})
        with pytest.raises(ProtocolError, match="non-empty 'values'"):
            validate_request({"op": "vote", "round": 0, "values": {}})
        with pytest.raises(ProtocolError, match="numeric or null"):
            validate_request({"op": "vote", "round": 0, "values": {"E1": "x"}})

    def test_submit_shape(self):
        validate_request({"op": "submit", "round": 0, "module": "E1", "value": 1.0})
        with pytest.raises(ProtocolError, match="string 'module'"):
            validate_request({"op": "submit", "round": 0, "module": 3, "value": 1.0})

    def test_close_round_shape(self):
        with pytest.raises(ProtocolError):
            validate_request({"op": "close_round"})


class TestResponses:
    def test_error_response(self):
        assert error_response("boom") == {
            "ok": False,
            "error": "boom",
            "code": "protocol",
        }

    def test_error_response_carries_code(self):
        response = error_response("nope", code=ErrorCode.UNSUPPORTED_OP)
        assert response["code"] == "unsupported_op"

    def test_ok_response(self):
        assert ok_response(x=1) == {"ok": True, "x": 1}
