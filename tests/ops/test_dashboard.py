"""Dashboard HTTP server: routes, SSE streaming, cluster aggregation.

The fixture uses a private registry and a long tick interval so every
snapshot in the assertions comes from an explicit :meth:`tick` call —
no timing races.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.exceptions import ReproError
from repro.obs import MetricsRegistry
from repro.ops import AlertRule, DashboardServer


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("demo_total", "demo counter").inc(3)
    return reg


@pytest.fixture()
def dash(registry):
    server = DashboardServer(
        registry=registry,
        rules=[AlertRule("demo", "demo_total", ">", 10.0, mode="value")],
        notifiers=[],
        interval=60.0,  # ticks are driven manually below
    )
    server.start()
    yield server
    server.stop()


def get(dash, path):
    conn = http.client.HTTPConnection(*dash.address, timeout=5)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.getheader("Content-Type"), response.read()
    finally:
        conn.close()


class TestRoutes:
    def test_root_serves_the_html_page(self, dash):
        status, content_type, body = get(dash, "/")
        assert status == 200
        assert content_type.startswith("text/html")
        assert b"AVOC operations" in body
        assert b"/api/stream" in body

    def test_metrics_passthrough_renders_prometheus_text(self, dash):
        status, content_type, body = get(dash, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert b"demo_total 3" in body
        assert b"ops_dashboard_requests_total" in body

    def test_snapshot_returns_the_latest_document(self, dash, registry):
        status, content_type, body = get(dash, "/api/snapshot")
        assert status == 200
        assert content_type.startswith("application/json")
        document = json.loads(body)
        assert document["local"]["demo_total"]["samples"][""] == 3.0
        assert document["flat"]["demo_total"] == 3.0
        assert document["alerts"][0]["state"] == "inactive"

    def test_alerts_endpoint_tracks_state(self, dash, registry):
        registry.counter("demo_total", "demo counter").inc(20)
        dash.tick()
        _, _, body = get(dash, "/api/alerts")
        (alert,) = json.loads(body)
        assert alert["rule"]["name"] == "demo"
        assert alert["state"] == "firing"
        assert alert["last_observed"] == 23.0

    def test_unknown_route_is_404(self, dash):
        status, _, body = get(dash, "/nope")
        assert status == 404
        assert b"no route" in body

    def test_requests_are_counted_per_path(self, dash, registry):
        get(dash, "/")
        get(dash, "/api/snapshot")
        get(dash, "/some/scanner/path")
        rendered = registry.render()
        assert 'ops_dashboard_requests_total{path="/"} 1' in rendered
        assert 'ops_dashboard_requests_total{path="/api/snapshot"} 1' in rendered
        # Unknown paths collapse onto one label so the set stays bounded.
        assert 'ops_dashboard_requests_total{path="other"} 1' in rendered


class _SSEClient:
    """A raw SSE reader with explicit close (urllib keeps sockets alive)."""

    def __init__(self, address):
        self.conn = http.client.HTTPConnection(*address, timeout=10)
        self.conn.request("GET", "/api/stream")
        self.response = self.conn.getresponse()

    def next_event(self):
        while True:
            line = self.response.readline()
            if not line:
                return None
            if line.startswith(b"data: "):
                return json.loads(line[len(b"data: "):])

    def close(self):
        # The stream is Connection: close, so http.client hands the
        # socket to the response — closing the connection alone leaves
        # the fd open and the server would never see the disconnect.
        self.response.close()
        self.conn.close()


class TestStream:
    def test_stream_pushes_latest_then_one_event_per_tick(self, dash, registry):
        client = _SSEClient(dash.address)
        try:
            first = client.next_event()  # pushed immediately on subscribe
            assert first["flat"]["demo_total"] == 3.0
            registry.counter("demo_total", "demo counter").inc()
            dash.tick()
            second = client.next_event()
            assert second["flat"]["demo_total"] == 4.0
            dash.tick()
            assert client.next_event()["flat"]["demo_total"] == 4.0
        finally:
            client.close()

    def test_disconnect_cleans_the_subscriber_up(self, dash):
        client = _SSEClient(dash.address)
        client.next_event()
        assert dash.subscriber_count() == 1
        client.close()
        # The handler notices the dead socket on the next push.
        deadline = time.time() + 5.0
        while dash.subscriber_count() > 0 and time.time() < deadline:
            dash.tick()
            time.sleep(0.02)
        assert dash.subscriber_count() == 0

    def test_stop_terminates_open_streams(self, registry):
        dash = DashboardServer(registry=registry, notifiers=[], interval=60.0)
        dash.start()
        client = _SSEClient(dash.address)
        client.next_event()
        dash.stop()  # pushes the None sentinel
        assert client.next_event() is None  # stream ended cleanly
        client.close()
        dash.stop()  # idempotent

    def test_slow_subscriber_drops_old_ticks_instead_of_blocking(
        self, dash, registry
    ):
        client = _SSEClient(dash.address)
        try:
            client.next_event()
            # 20 ticks against a queue bounded at 8: tick() must not block.
            for _ in range(20):
                dash.tick()
            assert dash.subscriber_count() == 1
        finally:
            client.close()


class TestLifecycleValidation:
    def test_non_positive_interval_rejected(self, registry):
        with pytest.raises(ReproError, match="interval"):
            DashboardServer(registry=registry, interval=0.0)

    def test_double_start_rejected(self, registry):
        dash = DashboardServer(registry=registry, notifiers=[], interval=60.0)
        dash.start()
        try:
            with pytest.raises(ReproError, match="already started"):
                dash.start()
        finally:
            dash.stop()
        with pytest.raises(ReproError, match="already stopped"):
            dash.start()


class TestClusterAggregation:
    def test_snapshot_carries_per_shard_state(self):
        from repro.cluster.supervisor import FusionCluster
        from repro.ops import default_alert_rules
        from repro.vdx.examples import AVOC_SPEC

        with FusionCluster(
            AVOC_SPEC, n_shards=2, replicas=2, mode="thread",
            auto_restart=False,
        ) as cluster:
            with cluster.client() as client:
                client.vote(
                    0, {"E1": 18.0, "E2": 18.1, "E3": 17.9}, series="agg"
                )
            dash = DashboardServer(
                registry=MetricsRegistry(),
                gateway=cluster.gateway,
                rules=default_alert_rules(2),
                notifiers=[],
                interval=60.0,
            )
            dash.start()
            try:
                _, _, body = get(dash, "/api/snapshot")
                document = json.loads(body)
                assert sorted(document["shards"]) == ["b0", "b1", "gateway"]
                statuses = {
                    bid: info["status"]
                    for bid, info in document["cluster"]["backends"].items()
                }
                assert statuses == {"b0": "alive", "b1": "alive"}
                assert document["flat"]["cluster_backends_alive"] == 2.0
                # Shard-side work is visible through the aggregation:
                # the gateway micro-batches votes, so each replica saw
                # one vote_batch request.
                assert (
                    document["flat"]["service_requests_total{op=vote_batch}"]
                    >= 2.0
                )
                states = {a["rule"]["name"]: a["state"] for a in document["alerts"]}
                assert states["shards-down"] == "inactive"
            finally:
                dash.stop()

    def test_shards_down_alert_fires_when_a_backend_dies(self):
        from repro.cluster.supervisor import FusionCluster
        from repro.ops import default_alert_rules
        from repro.vdx.examples import AVOC_SPEC

        with FusionCluster(
            AVOC_SPEC, n_shards=2, replicas=2, mode="thread",
            auto_restart=False,
        ) as cluster:
            dash = DashboardServer(
                registry=MetricsRegistry(),
                gateway=cluster.gateway,
                rules=default_alert_rules(2),
                notifiers=[],
                interval=60.0,
            )
            dash.start()
            try:
                cluster.backends["b0"].kill()
                # The link marks itself dead on its next failed exchange.
                with cluster.client() as client:
                    deadline = time.time() + 10.0
                    fired = False
                    while time.time() < deadline and not fired:
                        try:
                            client.vote(
                                0, {"E1": 18.0, "E2": 18.1}, series="doom"
                            )
                        except Exception:
                            pass
                        document = dash.tick()
                        states = {
                            a["rule"]["name"]: a["state"]
                            for a in document["alerts"]
                        }
                        fired = states["shards-down"] == "firing"
                assert fired
                assert document["flat"]["cluster_backends_alive"] == 1.0
            finally:
                dash.stop()
