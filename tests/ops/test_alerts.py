"""Alerting engine: rule validation, lifecycle, notifiers, live firing.

The lifecycle tests drive :class:`AlertManager` with an injected fake
clock, so for-duration hysteresis is exercised deterministically.  The
live test at the bottom injects a real replica disagreement into a
thread-mode cluster and watches the stock delta rule fire and resolve.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError
from repro.ops import (
    AlertManager,
    AlertRule,
    FileNotifier,
    default_alert_rules,
    flatten_metrics,
)


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now


class TestAlertRule:
    def test_unknown_operator_rejected(self):
        with pytest.raises(ReproError, match="unknown operator"):
            AlertRule("r", "m", "~", 1.0)

    def test_bad_mode_rejected(self):
        with pytest.raises(ReproError, match="mode"):
            AlertRule("r", "m", ">", 1.0, mode="rate")

    def test_negative_for_duration_rejected(self):
        with pytest.raises(ReproError, match="for_seconds"):
            AlertRule("r", "m", ">", 1.0, for_seconds=-1.0)

    def test_breached_applies_operator(self):
        rule = AlertRule("r", "m", ">=", 2.0)
        assert rule.breached(2.0)
        assert not rule.breached(1.9)

    def test_from_dict_roundtrip(self):
        rule = AlertRule(
            "r", "m{op=vote}", "<", 3.0, for_seconds=5.0,
            severity="critical", mode="delta", description="d",
        )
        assert AlertRule.from_dict(rule.to_dict()) == rule

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ReproError, match="unknown fields.*expr"):
            AlertRule.from_dict(
                {"name": "r", "metric": "m", "op": ">", "threshold": 1,
                 "expr": "m > 1"}
            )

    def test_from_dict_requires_core_fields(self):
        with pytest.raises(ReproError, match="missing 'threshold'"):
            AlertRule.from_dict({"name": "r", "metric": "m", "op": ">"})


class TestLifecycle:
    def test_fires_immediately_without_for_duration(self):
        manager = AlertManager(
            [AlertRule("r", "m", ">", 1.0)], notifiers=[], clock=FakeClock()
        )
        transitions = manager.evaluate({"m": 2.0})
        assert [(a.rule.name, t) for a, t in transitions] == [("r", "firing")]
        assert manager.alerts[0].state == "firing"

    def test_for_duration_holds_pending_then_fires(self):
        clock = FakeClock()
        manager = AlertManager(
            [AlertRule("r", "m", ">", 1.0, for_seconds=10.0)],
            notifiers=[], clock=clock,
        )
        assert manager.evaluate({"m": 2.0}) == []
        assert manager.alerts[0].state == "pending"
        clock.now = 5.0
        assert manager.evaluate({"m": 2.0}) == []
        clock.now = 10.0
        transitions = manager.evaluate({"m": 2.0})
        assert [t for _, t in transitions] == ["firing"]

    def test_pending_rearms_silently_on_a_clear_tick(self):
        clock = FakeClock()
        manager = AlertManager(
            [AlertRule("r", "m", ">", 1.0, for_seconds=10.0)],
            notifiers=[], clock=clock,
        )
        manager.evaluate({"m": 2.0})
        clock.now = 8.0
        assert manager.evaluate({"m": 0.5}) == []  # hysteresis reset
        assert manager.alerts[0].state == "inactive"
        # The breach must now hold for the full duration again.
        clock.now = 9.0
        manager.evaluate({"m": 2.0})
        clock.now = 18.0
        assert manager.alerts[0].state == "pending"
        assert manager.evaluate({"m": 2.0}) == []
        clock.now = 19.0
        assert [t for _, t in manager.evaluate({"m": 2.0})] == ["firing"]

    def test_firing_resolves_and_can_refire(self):
        manager = AlertManager(
            [AlertRule("r", "m", ">", 1.0)], notifiers=[], clock=FakeClock()
        )
        manager.evaluate({"m": 2.0})
        transitions = manager.evaluate({"m": 0.0})
        assert [t for _, t in transitions] == ["resolved"]
        assert manager.alerts[0].state == "resolved"
        assert [t for _, t in manager.evaluate({"m": 3.0})] == ["firing"]

    def test_missing_metric_is_not_a_breach(self):
        manager = AlertManager(
            [AlertRule("r", "m", ">", 1.0)], notifiers=[], clock=FakeClock()
        )
        assert manager.evaluate({}) == []
        assert manager.alerts[0].state == "inactive"
        # ... and it clears a firing alert rather than wedging it.
        manager.evaluate({"m": 2.0})
        assert [t for _, t in manager.evaluate({})] == ["resolved"]

    def test_delta_mode_tracks_per_tick_increase(self):
        manager = AlertManager(
            [AlertRule("r", "c_total", ">", 0.0, mode="delta")],
            notifiers=[], clock=FakeClock(),
        )
        # First sample only establishes the baseline.
        assert manager.evaluate({"c_total": 5.0}) == []
        # Counter moves: fires.
        assert [t for _, t in manager.evaluate({"c_total": 7.0})] == ["firing"]
        assert manager.alerts[0].last_observed == 2.0
        # Counter stops moving: resolves even though the value stays high.
        assert [t for _, t in manager.evaluate({"c_total": 7.0})] == ["resolved"]

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ReproError, match="unique"):
            AlertManager(
                [AlertRule("r", "m", ">", 1.0), AlertRule("r", "n", "<", 1.0)]
            )

    def test_firing_by_severity_counts(self):
        manager = AlertManager(
            [
                AlertRule("a", "m", ">", 1.0, severity="critical"),
                AlertRule("b", "n", ">", 1.0, severity="warning"),
                AlertRule("c", "o", ">", 1.0, severity="warning"),
            ],
            notifiers=[], clock=FakeClock(),
        )
        manager.evaluate({"m": 2.0, "n": 2.0, "o": 0.0})
        assert manager.firing_by_severity() == {"critical": 1, "warning": 1}


class TestNotifiers:
    def test_transitions_fan_out_to_notifiers(self):
        seen = []
        manager = AlertManager(
            [AlertRule("r", "m", ">", 1.0)],
            notifiers=[lambda alert, transition: seen.append(
                (alert.rule.name, transition)
            )],
            clock=FakeClock(),
        )
        manager.evaluate({"m": 2.0})
        manager.evaluate({"m": 0.0})
        assert seen == [("r", "firing"), ("r", "resolved")]

    def test_raising_notifier_does_not_break_evaluation(self):
        def explode(alert, transition):
            raise RuntimeError("pager down")

        seen = []
        manager = AlertManager(
            [AlertRule("r", "m", ">", 1.0)],
            notifiers=[explode, lambda a, t: seen.append(t)],
            clock=FakeClock(),
        )
        transitions = manager.evaluate({"m": 2.0})
        assert [t for _, t in transitions] == ["firing"]
        assert seen == ["firing"]  # the healthy notifier still ran

    def test_file_notifier_appends_json_lines(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        manager = AlertManager(
            [AlertRule("r", "m", ">", 1.0)],
            notifiers=[FileNotifier(path)], clock=FakeClock(),
        )
        manager.evaluate({"m": 2.0})
        manager.evaluate({"m": 0.0})
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["transition"] for r in records] == ["firing", "resolved"]
        assert records[0]["alert"]["rule"]["name"] == "r"


class TestDefaultRules:
    def test_counter_rules_use_delta_mode(self):
        rules = default_alert_rules()
        assert {r.name for r in rules} == {
            "replica-disagreement", "ingest-backpressure"
        }
        assert all(r.mode == "delta" for r in rules)

    def test_expected_backends_arms_shards_down(self):
        rules = default_alert_rules(3)
        assert rules[0].name == "shards-down"
        assert rules[0].severity == "critical"
        assert rules[0].metric == "cluster_backends_alive"
        assert rules[0].threshold == 3.0
        assert rules[0].mode == "value"


class TestLiveFiring:
    def test_replica_disagreement_rule_fires_and_resolves(self):
        """Inject a real replica divergence; the stock rule must fire.

        One replica is pre-voted directly with skewed values, so when
        the gateway fans the round out its replay cache answers with
        the skewed result while the other replica computes the true
        one — a genuine disagreement, counted by the gateway.  The
        delta rule fires on that tick and resolves on the next clean
        one.
        """
        from repro.cluster.supervisor import FusionCluster
        from repro.service.client import VoterClient
        from repro.vdx.examples import AVOC_SPEC

        rule = next(
            r for r in default_alert_rules()
            if r.name == "replica-disagreement"
        )
        manager = AlertManager([rule], notifiers=[])

        def tick(gateway):
            return manager.evaluate(flatten_metrics(gateway.registry.snapshot()))

        with FusionCluster(
            AVOC_SPEC, n_shards=2, replicas=2, mode="thread",
            auto_restart=False,
        ) as cluster:
            with cluster.client() as client:
                series = "diverge"
                modules = ["E1", "E2", "E3"]
                tick(cluster.gateway)  # baseline sample
                victim = client.route(series)["replicas"][0]
                skewed = dict(zip(modules, [99.0, 99.5, 98.5]))
                with VoterClient(*cluster.backends[victim].address) as direct:
                    direct.vote(0, skewed, series=series)
                client.vote(
                    0, dict(zip(modules, [18.0, 18.1, 17.9])), series=series
                )
                transitions = tick(cluster.gateway)
                assert [t for _, t in transitions] == ["firing"]
                # No further divergence: the counter stops moving and
                # the alert resolves instead of wedging firing forever.
                client.vote(
                    1, dict(zip(modules, [18.0, 18.1, 17.9])), series=series
                )
                transitions = tick(cluster.gateway)
                assert [t for _, t in transitions] == ["resolved"]
