"""Release-quality checks on the public API surface."""

from __future__ import annotations

import importlib
import inspect

import pytest

PUBLIC_MODULES = (
    "repro",
    "repro.voting",
    "repro.clustering",
    "repro.vdx",
    "repro.history",
    "repro.fusion",
    "repro.sensors",
    "repro.datasets",
    "repro.simulation",
    "repro.analysis",
    "repro.experiments",
    "repro.service",
    "repro.tuning",
)


class TestAllExportsResolve:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_every_all_entry_importable(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} has no __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_docstrings_present(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20


class TestPublicCallablesDocumented:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_exported_callables_have_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert undocumented == [], (
            f"{module_name}: undocumented exports {undocumented}"
        )


class TestVersionConsistency:
    def test_dunder_version(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_cli_version_flag(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "avoc" in capsys.readouterr().out


class TestRegistryCoverage:
    def test_every_registered_algorithm_instantiates_and_votes(self):
        from repro.exceptions import NoMajorityError
        from repro.types import Round
        from repro.voting.registry import (
            available_algorithms,
            categorical_algorithms,
            create_voter,
        )

        for name in available_algorithms():
            if name.startswith("constant42"):
                continue  # registered by another test module
            voter = create_voter(name)
            voting_round = Round.from_values(0, ["a", "a", "b"]) if (
                name in categorical_algorithms() or name == "plurality"
            ) else Round.from_values(0, [10.0, 10.05, 10.1])
            try:
                outcome = voter.vote(voting_round)
            except NoMajorityError:
                continue  # legitimate for strict voters on tiny rounds
            assert outcome.value is not None, name


class TestEngineStatistics:
    def test_statistics_summary(self):
        from repro.fusion.engine import FusionEngine
        from repro.types import Round
        from repro.voting.stateless import MeanVoter

        engine = FusionEngine(MeanVoter())
        engine.process(Round.from_values(0, [1.0, 1.0]))
        engine.process(Round.from_mapping(1, {"E1": None, "E2": None}))
        stats = engine.statistics()
        assert stats["rounds_processed"] == 2
        assert stats["rounds_degraded"] == 1
        assert stats["availability"] == 0.5
        assert stats["algorithm"] == "average"
