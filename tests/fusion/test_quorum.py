"""Tests for quorum rules."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.fusion.quorum import QuorumRule
from repro.types import Round


class TestRequiredCount:
    def test_none_requires_nothing(self):
        assert QuorumRule("NONE").required_count(5) == 0

    def test_any_requires_one(self):
        assert QuorumRule("ANY").required_count(5) == 1

    def test_until_percentage_rounds_up(self):
        assert QuorumRule("UNTIL", 50.0).required_count(5) == 3
        assert QuorumRule("UNTIL", 100.0).required_count(5) == 5
        assert QuorumRule("UNTIL", 34.0).required_count(3) == 2

    def test_case_insensitive_mode(self):
        assert QuorumRule("until", 100.0).mode == "UNTIL"


class TestSatisfied:
    def test_full_round_satisfies_until_100(self):
        rule = QuorumRule("UNTIL", 100.0)
        full = Round.from_values(0, [1.0, 2.0, 3.0])
        assert rule.satisfied(full, roster_size=3)

    def test_partial_round_fails_until_100(self):
        rule = QuorumRule("UNTIL", 100.0)
        partial = Round.from_mapping(0, {"a": 1.0, "b": None, "c": 2.0})
        assert not rule.satisfied(partial, roster_size=3)

    def test_roster_wider_than_round_counts(self):
        # A silent module that did not even send a reading still counts
        # toward the quorum denominator.
        rule = QuorumRule("UNTIL", 100.0)
        partial = Round.from_values(0, [1.0, 2.0])
        assert not rule.satisfied(partial, roster_size=3)

    def test_any_with_empty_round_fails(self):
        rule = QuorumRule("ANY")
        empty = Round.from_mapping(0, {"a": None})
        assert not rule.satisfied(empty, roster_size=1)


class TestValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            QuorumRule("SOMETIMES")

    def test_bad_percentage_rejected(self):
        with pytest.raises(ConfigurationError):
            QuorumRule("UNTIL", 120.0)
