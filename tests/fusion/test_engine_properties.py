"""Property-based tests for the fusion engine under random degradation."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion.engine import FusionEngine
from repro.fusion.faults import FaultPolicy

from repro.voting.registry import create_voter


@st.composite
def degraded_matrices(draw):
    """A small rounds × modules matrix with random NaN holes."""
    n_modules = draw(st.integers(min_value=2, max_value=6))
    n_rounds = draw(st.integers(min_value=1, max_value=12))
    values = draw(
        st.lists(
            st.lists(
                st.floats(min_value=10.0, max_value=30.0, allow_nan=False),
                min_size=n_modules,
                max_size=n_modules,
            ),
            min_size=n_rounds,
            max_size=n_rounds,
        )
    )
    matrix = np.asarray(values)
    holes = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_rounds - 1),
                st.integers(min_value=0, max_value=n_modules - 1),
            ),
            max_size=n_rounds * n_modules,
        )
    )
    for r, c in holes:
        matrix[r, c] = np.nan
    return matrix


class TestEngineNeverCrashes:
    @settings(max_examples=60, deadline=None)
    @given(
        matrix=degraded_matrices(),
        algorithm=st.sampled_from(["average", "me", "hybrid", "avoc",
                                   "clustering"]),
        policy=st.sampled_from(["last_value", "skip"]),
    )
    def test_random_missing_patterns(self, matrix, algorithm, policy):
        engine = FusionEngine(
            create_voter(algorithm),
            fault_policy=FaultPolicy(
                on_missing_majority=policy, on_conflict=policy
            ),
        )
        results = engine.run_matrix(matrix)
        assert len(results) == matrix.shape[0]
        lo, hi = np.nanmin(matrix), np.nanmax(matrix)
        for result in results:
            assert result.status in ("ok", "held", "skipped")
            if result.status == "ok":
                assert lo - 1e-9 <= result.value <= hi + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(matrix=degraded_matrices())
    def test_held_values_repeat_a_prior_ok_value(self, matrix):
        engine = FusionEngine(
            create_voter("avoc"),
            fault_policy=FaultPolicy(on_missing_majority="last_value"),
        )
        results = engine.run_matrix(matrix)
        seen_values = set()
        for result in results:
            if result.status == "ok":
                seen_values.add(result.value)
            elif result.status == "held":
                assert result.value in seen_values
