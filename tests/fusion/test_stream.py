"""Tests for the streaming tumbling-window ingest."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.fusion.engine import FusionEngine
from repro.fusion.stream import SensorEvent, StreamingFusion
from repro.voting.stateless import MeanVoter


def make_stream(window=1.0, lateness=0.0, roster=("E1", "E2")):
    engine = FusionEngine(MeanVoter(), roster=list(roster))
    return StreamingFusion(engine, window=window, allowed_lateness=lateness)


class TestWindowAssembly:
    def test_events_grouped_into_windows(self):
        stream = make_stream()
        stream.push(SensorEvent("E1", 10.0, 0.1))
        stream.push(SensorEvent("E2", 20.0, 0.9))
        voted = stream.push(SensorEvent("E1", 30.0, 1.5))  # watermark passes w0
        assert len(voted) == 1
        assert voted[0].round_number == 0
        assert voted[0].value == pytest.approx(15.0)

    def test_window_of(self):
        stream = make_stream(window=0.5)
        assert stream.window_of(0.0) == 0
        assert stream.window_of(0.49) == 0
        assert stream.window_of(0.5) == 1

    def test_latest_event_per_module_wins(self):
        stream = make_stream()
        stream.push(SensorEvent("E1", 10.0, 0.1))
        stream.push(SensorEvent("E1", 12.0, 0.8))  # later reading, same window
        stream.push(SensorEvent("E2", 20.0, 0.9))
        voted = stream.push(SensorEvent("E1", 0.0, 2.5))
        assert voted[0].value == pytest.approx(16.0)

    def test_missing_module_becomes_missing_value(self):
        stream = make_stream()
        stream.push(SensorEvent("E1", 10.0, 0.5))
        voted = stream.push(SensorEvent("E1", 11.0, 1.5))
        assert voted[0].value == pytest.approx(10.0)  # E2 missing, E1 alone

    def test_each_push_closes_passed_windows(self):
        stream = make_stream()
        assert stream.push(SensorEvent("E1", 1.0, 0.5)) == []
        second = stream.push(SensorEvent("E1", 2.0, 1.5))
        assert [v.round_number for v in second] == [0]
        third = stream.push(SensorEvent("E1", 3.0, 2.5))
        assert [v.round_number for v in third] == [1]

    def test_watermark_jump_closes_several_windows_at_once(self):
        stream = make_stream()
        stream.push(SensorEvent("E1", 1.0, 0.5))
        voted = stream.push(SensorEvent("E1", 9.0, 3.5))
        assert [v.round_number for v in voted] == [0, 1, 2]


class TestLateness:
    def test_late_event_within_lateness_accepted(self):
        stream = make_stream(lateness=0.5)
        stream.push(SensorEvent("E1", 10.0, 0.2))
        # Watermark at 1.3 < window0 end (1.0) + lateness (0.5): not closed.
        assert stream.push(SensorEvent("E2", 99.0, 1.3)) == []
        voted = stream.push(SensorEvent("E2", 20.0, 0.9))  # late but allowed
        assert voted == []
        voted = stream.push(SensorEvent("E1", 0.0, 2.0))
        assert voted[0].value == pytest.approx(15.0)

    def test_too_late_event_dropped(self):
        stream = make_stream()
        stream.push(SensorEvent("E1", 10.0, 0.5))
        stream.push(SensorEvent("E1", 11.0, 1.5))  # closes window 0
        result = stream.push(SensorEvent("E2", 99.0, 0.7))  # window 0 gone
        assert result == []
        assert stream.events_late == 1

    def test_counters(self):
        stream = make_stream()
        stream.push(SensorEvent("E1", 1.0, 0.5))
        assert stream.events_accepted == 1


class TestFlush:
    def test_flush_votes_open_windows(self):
        stream = make_stream()
        stream.push(SensorEvent("E1", 10.0, 0.5))
        stream.push(SensorEvent("E2", 20.0, 0.6))
        voted = stream.flush()
        assert len(voted) == 1
        assert voted[0].value == pytest.approx(15.0)

    def test_empty_gap_windows_become_degraded_rounds(self):
        stream = make_stream()
        stream.push(SensorEvent("E1", 10.0, 0.5))
        stream.push(SensorEvent("E1", 50.0, 5.5))  # windows 1-4 empty
        stream.flush()
        numbers = [r.round_number for r in stream.results]
        assert numbers == [0, 1, 2, 3, 4, 5]
        # The all-missing gap windows went through the fault policy
        # (hold last value by default).
        for result in stream.results[1:5]:
            assert result.status in ("held", "skipped")


class TestOutOfOrderEdges:
    """Late-arrival boundary semantics (watermark = max timestamp seen)."""

    def test_event_exactly_at_watermark_boundary_closes_window(self):
        # Window 0 ends at 1.0 with lateness 0.5: a watermark of exactly
        # 1.5 is the first instant the window may close (<=, not <).
        stream = make_stream(lateness=0.5)
        stream.push(SensorEvent("E1", 10.0, 0.2))
        voted = stream.push(SensorEvent("E2", 20.0, 1.5))
        assert [v.round_number for v in voted] == [0]
        assert voted[0].value == pytest.approx(10.0)

    def test_event_on_window_edge_belongs_to_next_window(self):
        # t == window end is the first instant of the *next* window.
        stream = make_stream()
        assert stream.window_of(1.0) == 1
        stream.push(SensorEvent("E1", 10.0, 0.5))
        stream.push(SensorEvent("E1", 30.0, 1.0))  # window 1, closes window 0
        voted = stream.flush()
        assert stream.results[0].value == pytest.approx(10.0)
        assert voted[-1].value == pytest.approx(30.0)

    def test_event_older_than_allowed_lateness_dropped_and_counted(self):
        stream = make_stream(lateness=0.5)
        stream.push(SensorEvent("E1", 10.0, 0.2))
        stream.push(SensorEvent("E1", 11.0, 2.0))  # closes window 0 only
        accepted_before = stream.events_accepted
        result = stream.push(SensorEvent("E2", 99.0, 0.9))  # older than lateness
        assert result == []
        assert stream.events_late == 1
        assert stream.events_accepted == accepted_before
        # The dropped event must not have leaked into a voted result.
        assert stream.results[0].value == pytest.approx(10.0)

    def test_module_never_reporting_votes_as_missing_without_stalling(self):
        # E2 never produces an event: every window must still close on
        # time, with E2 carried as None (missing), not awaited forever.
        stream = make_stream()
        for i in range(4):
            stream.push(SensorEvent("E1", 10.0 + i, i + 0.5))
        assert [r.round_number for r in stream.results] == [0, 1, 2]
        for i, result in enumerate(stream.results):
            assert result.value == pytest.approx(10.0 + i)  # E1 alone
        voted = stream.flush()
        assert voted[-1].round_number == 3
        assert stream.events_late == 0


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            StreamingFusion(FusionEngine(MeanVoter()), window=0.0)

    def test_bad_lateness(self):
        with pytest.raises(ConfigurationError):
            StreamingFusion(FusionEngine(MeanVoter()), window=1.0,
                            allowed_lateness=-1.0)

    def test_event_before_start_rejected(self):
        stream = make_stream()
        with pytest.raises(ConfigurationError, match="precedes start_time"):
            stream.push(SensorEvent("E1", 1.0, -0.5))


class TestEndToEndWithAvoc:
    def test_streamed_uc1_matches_round_voting(self, uc1_small):
        """Feeding dataset rounds as interleaved events must reproduce
        the round-based outputs exactly (no loss, in-window order)."""
        from repro.analysis.diff import run_voter_series
        from repro.voting.registry import create_voter

        dataset = uc1_small.slice(0, 60)
        engine = FusionEngine(create_voter("avoc"), roster=list(dataset.modules))
        stream = StreamingFusion(engine, window=1.0 / 8.0)
        for number, row in enumerate(dataset.matrix):
            base = number / 8.0
            for offset, (module, value) in enumerate(zip(dataset.modules, row)):
                stream.push(SensorEvent(module, float(value), base + offset * 0.001))
        stream.flush()
        streamed = [r.value for r in stream.results]
        offline = run_voter_series(create_voter("avoc"), dataset)
        assert streamed == pytest.approx(list(offline))