"""Randomized NaN-pattern fuzz for the count-bucketed ragged kernels.

The batch kernels compact ragged rows (rows with missing readings) into
dense per-count buckets before vectorizing.  These tests hammer that
path with seeded random raggedness — every present-count from 1 to M in
one matrix, including rows where only a single module survives — and
assert full bit-identity of :meth:`FusionEngine.process_batch` against
the per-round loop for every registered algorithm.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fusion.engine import FusionEngine
from repro.voting.registry import create_voter

from .test_batch import ALGORITHMS, check_equivalence

N_MODULES = 7


def ragged_matrix(seed: int, n_rounds: int = 80, n_modules: int = N_MODULES):
    """A matrix whose per-round present-count spans the full 1..M range.

    The first rounds pin the corner cases (a single survivor, a dense
    row, a two-survivor row); the rest draw the count uniformly so every
    bucket size occurs.  A slow drifting outlier keeps the
    history/elimination machinery busy.
    """
    rng = np.random.default_rng(seed)
    matrix = rng.normal(18.0, 0.4, size=(n_rounds, n_modules))
    # One module drifts away so elimination decisions actually trigger.
    matrix[:, n_modules - 1] += np.linspace(0.0, 6.0, n_rounds)

    counts = rng.integers(1, n_modules + 1, size=n_rounds)
    counts[0] = 1  # only 1 of M modules present
    counts[1] = n_modules  # fully dense
    counts[2] = 2  # smallest real agreement bucket
    counts[3] = 1  # a second single-survivor row, different module
    for number in range(n_rounds):
        absent = rng.choice(
            n_modules, size=n_modules - counts[number], replace=False
        )
        matrix[number, absent] = np.nan
    return matrix


MODULES = [f"S{i}" for i in range(N_MODULES)]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("seed", (11, 23, 47))
def test_ragged_fuzz_bit_identity(algorithm, seed):
    matrix = ragged_matrix(seed)
    check_equivalence(
        lambda: FusionEngine(create_voter(algorithm), roster=MODULES),
        matrix,
        MODULES,
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_every_bucket_size_in_one_matrix(algorithm):
    """Deterministic ladder: round i has exactly (i % M) + 1 survivors."""
    rng = np.random.default_rng(7)
    n_rounds = 4 * N_MODULES
    matrix = rng.normal(-70.0, 2.5, size=(n_rounds, N_MODULES))
    for number in range(n_rounds):
        count = (number % N_MODULES) + 1
        absent = rng.choice(
            N_MODULES, size=N_MODULES - count, replace=False
        )
        matrix[number, absent] = np.nan
    check_equivalence(
        lambda: FusionEngine(create_voter(algorithm), roster=MODULES),
        matrix,
        MODULES,
    )
