"""Tests for the fusion engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FusionError, QuorumNotReachedError
from repro.fusion.engine import FusionEngine
from repro.fusion.faults import FaultPolicy
from repro.fusion.quorum import QuorumRule
from repro.types import Round
from repro.voting.categorical import CategoricalMajorityVoter
from repro.voting.standard import StandardVoter
from repro.voting.stateless import MeanVoter


class TestHappyPath:
    def test_plain_vote(self):
        engine = FusionEngine(MeanVoter())
        result = engine.process(Round.from_values(0, [1.0, 2.0, 3.0]))
        assert result.ok
        assert result.value == 2.0
        assert result.outcome is not None

    def test_roster_learned_from_rounds(self):
        engine = FusionEngine(MeanVoter())
        engine.process(Round.from_values(0, [1.0, 2.0]))
        assert engine.roster == ["E1", "E2"]

    def test_run_matrix(self):
        engine = FusionEngine(MeanVoter())
        matrix = np.array([[1.0, 3.0], [2.0, 4.0]])
        results = engine.run_matrix(matrix)
        assert [r.value for r in results] == [2.0, 3.0]

    def test_run_matrix_custom_modules(self):
        engine = FusionEngine(MeanVoter())
        engine.run_matrix(np.ones((1, 3)), modules=["a", "b", "c"])
        assert engine.roster == ["a", "b", "c"]

    def test_run_matrix_nan_becomes_missing(self):
        engine = FusionEngine(MeanVoter())
        results = engine.run_matrix(np.array([[1.0, np.nan, 3.0]]))
        assert results[0].value == 2.0

    def test_output_series_marks_skips_as_nan(self):
        engine = FusionEngine(MeanVoter())
        matrix = np.array([[1.0, 1.0], [np.nan, np.nan], [2.0, 2.0]])
        results = engine.run_matrix(matrix)
        series = engine.output_series(results)
        # Middle round has all values missing and no prior output ->
        # depends on policy; with defaults the last value is held.
        assert series[0] == 1.0

    def test_run_matrix_shape_errors(self):
        engine = FusionEngine(MeanVoter())
        with pytest.raises(FusionError):
            engine.run_matrix(np.ones(3))
        with pytest.raises(FusionError):
            engine.run_matrix(np.ones((2, 2)), modules=["only-one"])


class TestMissingValuePolicy:
    def test_majority_missing_holds_last_value(self):
        engine = FusionEngine(MeanVoter(), fault_policy=FaultPolicy())
        engine.process(Round.from_values(0, [5.0, 5.0, 5.0]))
        degraded = engine.process(
            Round.from_mapping(1, {"E1": 9.0, "E2": None, "E3": None})
        )
        assert degraded.status == "held"
        assert degraded.value == 5.0

    def test_majority_missing_without_history_skips(self):
        engine = FusionEngine(MeanVoter(), fault_policy=FaultPolicy())
        degraded = engine.process(
            Round.from_mapping(0, {"E1": 9.0, "E2": None, "E3": None})
        )
        assert degraded.status == "skipped"
        assert degraded.value is None

    def test_raise_policy(self):
        engine = FusionEngine(
            MeanVoter(),
            fault_policy=FaultPolicy(on_missing_majority="raise"),
        )
        with pytest.raises(FusionError):
            engine.process(Round.from_mapping(0, {"E1": 1.0, "E2": None, "E3": None}))

    def test_minority_missing_still_votes(self):
        engine = FusionEngine(MeanVoter())
        result = engine.process(
            Round.from_mapping(0, {"E1": 2.0, "E2": None, "E3": 4.0})
        )
        assert result.ok
        assert result.value == 3.0

    def test_degraded_counter(self):
        engine = FusionEngine(MeanVoter())
        engine.process(Round.from_values(0, [1.0, 1.0]))
        engine.process(Round.from_mapping(1, {"E1": None, "E2": None}))
        assert engine.rounds_degraded == 1
        assert engine.rounds_processed == 2


class TestQuorumPolicy:
    def test_quorum_failure_skips_by_default(self):
        engine = FusionEngine(
            MeanVoter(),
            quorum=QuorumRule("UNTIL", 100.0),
            fault_policy=FaultPolicy(missing_tolerance=0.7),
        )
        engine.process(Round.from_values(0, [1.0, 1.0, 1.0]))
        partial = Round.from_mapping(1, {"E1": 1.0, "E2": 2.0, "E3": None})
        result = engine.process(partial)
        assert result.status == "skipped"

    def test_quorum_failure_raise_policy(self):
        engine = FusionEngine(
            MeanVoter(),
            quorum=QuorumRule("UNTIL", 100.0),
            fault_policy=FaultPolicy(
                on_quorum_failure="raise", missing_tolerance=0.7
            ),
        )
        engine.process(Round.from_values(0, [1.0, 1.0, 1.0]))
        with pytest.raises(QuorumNotReachedError):
            engine.process(Round.from_mapping(1, {"E1": 1.0, "E2": 1.0, "E3": None}))


class TestConflictPolicy:
    def test_categorical_tie_held(self):
        voter = CategoricalMajorityVoter(history_mode="none")
        engine = FusionEngine(voter, fault_policy=FaultPolicy())
        engine.process(Round.from_values(0, ["a", "a"]))
        result = engine.process(Round.from_values(1, ["x", "y"]))
        # PluralityVoter would tie-break toward 'a'... but 'a' is not a
        # candidate, so the NoMajorityError bubbles to the engine, which
        # holds the last accepted value.
        assert result.status == "held"
        assert result.value == "a"

    def test_conflict_skip_policy(self):
        voter = CategoricalMajorityVoter(history_mode="none")
        engine = FusionEngine(voter, fault_policy=FaultPolicy(on_conflict="skip"))
        result = engine.process(Round.from_values(0, ["x", "y"]))
        assert result.status == "skipped"


class TestExclusionIntegration:
    def test_excluded_module_reported(self):
        engine = FusionEngine(
            MeanVoter(), exclusion="DEVIATION", exclusion_threshold=1.5
        )
        result = engine.process(Round.from_values(0, [10.0, 10.1, 9.9, 10.0, 30.0]))
        assert result.excluded == ("E5",)
        assert result.value == pytest.approx(10.0)


class TestReset:
    def test_reset_clears_state_keeps_roster(self):
        engine = FusionEngine(StandardVoter())
        engine.process(Round.from_values(0, [1.0, 1.0]))
        engine.reset()
        assert engine.last_accepted is None
        assert engine.rounds_processed == 0
        assert engine.roster == ["E1", "E2"]
