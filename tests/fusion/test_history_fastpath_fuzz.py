"""Seeded fuzz for the history fast paths introduced with the scan kernels.

Two contracts are hammered here, both *bit*-identity (``==`` on floats,
never ``allclose``):

* The array-backed :class:`HistoryRecords` — module-index interning,
  cached slot arrays, vectorized :meth:`update_at` — must reproduce the
  historical dict-backed per-module scalar loop exactly, for both
  update policies, across clamping at 0/1, unseen modules appearing
  mid-stream, empty rounds, seeds and resets.
* The segment-vectorized batch recurrence (``_run_history`` dispatching
  additive/EMA scans between bootstrap and clip events) must reproduce
  the per-round engine loop exactly through saturation stretches (records
  pinned at 0 and 1), NaN gaps, whole missing rounds, AVOC bootstrap
  reseeds and mid-stream ``configure``-style voter hot-swaps.

The mean-elimination fuzz keeps the roster small on purpose: the scalar
path means records with a Python ``sum`` while the batch kernel uses
NumPy pairwise summation, which are only guaranteed to agree bitwise for
small module counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fusion.engine import FusionEngine
from repro.voting.history import HistoryRecords
from repro.voting.registry import create_voter

from .test_batch import (
    assert_end_state_identical,
    assert_results_identical,
    check_equivalence,
    run_per_round,
)

# --------------------------------------------------------------------------
# Part 1: incremental fast path vs the historical scalar loop
# --------------------------------------------------------------------------


class ReferenceRecords:
    """The pre-vectorization dict-backed implementation, verbatim.

    Expression trees are copied from the historical ``update`` loop so
    any bitwise divergence in the array fast path shows up as a plain
    ``==`` failure.
    """

    def __init__(self, policy="additive", reward=0.1, penalty=0.2,
                 learning_rate=0.3, initial=1.0):
        self.policy = policy
        self.reward = reward
        self.penalty = penalty
        self.learning_rate = learning_rate
        self.initial = initial
        self._records = {}
        self._updates = 0

    def get(self, module):
        return self._records.get(module, self.initial)

    def update(self, scores):
        for module, score in scores.items():
            score = min(max(float(score), 0.0), 1.0)
            current = self.get(module)
            if self.policy == "additive":
                delta = self.reward * score - self.penalty * (1.0 - score)
                updated = current + delta
            else:  # ema
                updated = (
                    1.0 - self.learning_rate
                ) * current + self.learning_rate * score
            self._records[module] = min(max(updated, 0.0), 1.0)
        self._updates += 1

    def seed(self, records, count_as_update=True):
        for module, value in records.items():
            self._records[module] = min(max(float(value), 0.0), 1.0)
        if count_as_update:
            self._updates += 1

    def reset(self):
        self._records = {}
        self._updates = 0

    def snapshot(self):
        return dict(self._records)


POOL = tuple(f"M{i:02d}" for i in range(12))  # > 8: forces array growth


def _random_scores(rng):
    """A module→score mapping with clamp-exercising values."""
    count = int(rng.integers(0, len(POOL) + 1))
    modules = rng.choice(len(POOL), size=count, replace=False)
    scores = {}
    for index in modules:
        kind = rng.random()
        if kind < 0.15:
            value = 0.0
        elif kind < 0.30:
            value = 1.0
        elif kind < 0.40:
            value = float(rng.uniform(-0.5, 0.0))  # clamped up to 0
        elif kind < 0.50:
            value = float(rng.uniform(1.0, 1.5))  # clamped down to 1
        else:
            value = float(rng.uniform(0.0, 1.0))
        scores[POOL[index]] = value
    return scores


def _assert_same(fast: HistoryRecords, reference: ReferenceRecords):
    assert fast.snapshot() == reference.snapshot()
    assert fast.update_count == reference._updates
    for module in POOL:
        assert fast.get(module) == reference.get(module)


@pytest.mark.parametrize("policy", ("additive", "ema"))
@pytest.mark.parametrize("seed", (3, 17, 101))
def test_incremental_fast_path_matches_scalar_loop(policy, seed):
    rng = np.random.default_rng(seed)
    fast = HistoryRecords(policy=policy)
    reference = ReferenceRecords(policy=policy)
    for step in range(300):
        action = rng.random()
        if action < 0.85:
            scores = _random_scores(rng)
            fast.update(scores)
            reference.update(scores)
        elif action < 0.93:
            seeded = {
                POOL[i]: float(rng.uniform(-0.2, 1.2))
                for i in rng.choice(len(POOL), size=3, replace=False)
            }
            fast.seed(seeded)
            reference.seed(seeded)
        elif action < 0.97:
            fast.update({})  # empty round still counts one update
            reference.update({})
        else:
            fast.reset()
            reference.reset()
        _assert_same(fast, reference)


@pytest.mark.parametrize("policy", ("additive", "ema"))
def test_hot_roster_reuses_cached_slots(policy):
    """The serving-loop shape: one fixed roster, hundreds of rounds."""
    rng = np.random.default_rng(7)
    fast = HistoryRecords(policy=policy)
    reference = ReferenceRecords(policy=policy)
    roster = POOL[:5]
    slots_before = fast.slots_for(roster)
    for _ in range(200):
        scores = {m: float(rng.uniform(-0.1, 1.1)) for m in roster}
        fast.update(scores)
        reference.update(scores)
    assert fast.slots_for(roster) is slots_before  # cache held
    _assert_same(fast, reference)


def test_update_at_is_update():
    """The explicit fast-path entry equals the mapping entry bitwise."""
    rng = np.random.default_rng(23)
    via_update = HistoryRecords(policy="additive")
    via_slots = HistoryRecords(policy="additive")
    roster = POOL[:6]
    slots = via_slots.slots_for(roster)
    for _ in range(100):
        scores = {m: float(rng.uniform(-0.2, 1.2)) for m in roster}
        via_update.update(scores)
        via_slots.update_at(slots, np.fromiter(scores.values(), dtype=float))
    assert via_update.snapshot() == via_slots.snapshot()
    assert via_update.update_count == via_slots.update_count


def test_saturated_records_stay_exact():
    """Pinned coordinates: a record at exactly 1.0 (or 0.0) must hold
    the exact bound under steps that cannot move it — the invariant the
    additive scan's pinning optimisation relies on."""
    records = HistoryRecords(policy="additive")
    for _ in range(30):
        records.update({"A": 1.0, "B": 0.0})
    assert records.get("A") == 1.0
    assert records.get("B") == 0.0


# --------------------------------------------------------------------------
# Part 2: segmented batch recurrence vs the per-round engine loop
# --------------------------------------------------------------------------

MODULES = [f"S{i}" for i in range(6)]


def _engine_factory(algorithm, modules=MODULES, **overrides):
    def factory():
        voter = create_voter(algorithm)
        if overrides:
            voter = create_voter(
                algorithm, params=voter.params.with_overrides(**overrides)
            )
        return FusionEngine(voter, roster=modules)

    return factory


def saturating_matrix(seed, n_rounds=160, n_modules=len(MODULES)):
    """Alternating agreement and dissent stretches with NaN gaps.

    Long consensus stretches drive additive records to the pinned 1.0
    steady state; dissent stretches (every module far from every other)
    collapse all records towards 0, crossing AVOC's failure tolerance so
    the failed-bootstrap reseed fires mid-stream.  Random NaN gaps and a
    few whole missing rounds break the module-presence pattern between
    scan blocks.
    """
    rng = np.random.default_rng(seed)
    matrix = np.empty((n_rounds, n_modules))
    mode_len = 0
    consensus = True
    for number in range(n_rounds):
        if mode_len == 0:
            consensus = not consensus
            mode_len = int(rng.integers(8, 28))
        mode_len -= 1
        if consensus:
            matrix[number] = 20.0 + rng.normal(0.0, 0.01, size=n_modules)
        else:
            # Spread far beyond any dynamic margin: everybody disagrees.
            matrix[number] = rng.permutation(n_modules) * 1e3 + rng.normal(
                0.0, 1.0, size=n_modules
            )
    matrix[rng.random(matrix.shape) < 0.08] = np.nan
    for number in (5, 40, 41):
        matrix[number] = np.nan
    return matrix


HISTORY_ALGORITHMS = ("me", "hybrid", "avoc")


@pytest.mark.parametrize("policy", ("additive", "ema"))
@pytest.mark.parametrize("algorithm", HISTORY_ALGORITHMS)
@pytest.mark.parametrize("seed", (13, 29))
def test_saturation_fuzz_bit_identity(algorithm, policy, seed):
    check_equivalence(
        _engine_factory(algorithm, history_policy=policy),
        saturating_matrix(seed),
        MODULES,
    )


@pytest.mark.parametrize("seed", (13, 61))
def test_avoc_bootstrap_always_bit_identity(seed):
    """bootstrap_mode="always" forces the scalar-dispatch path per round."""
    check_equivalence(
        _engine_factory("avoc", bootstrap_mode="always"),
        saturating_matrix(seed, n_rounds=60),
        MODULES,
    )


@pytest.mark.parametrize("policy", ("additive", "ema"))
@pytest.mark.parametrize("seed", (5, 43))
def test_mean_elimination_small_roster_bit_identity(policy, seed):
    # <= 8 modules: Python-sum and pairwise-sum means agree bitwise.
    modules = MODULES[:5]
    check_equivalence(
        _engine_factory(
            "me", modules=modules, history_policy=policy, elimination="mean"
        ),
        saturating_matrix(seed, n_modules=len(modules)),
        modules,
    )


@pytest.mark.parametrize("seed", (19, 71))
def test_extreme_reward_penalty_clip_events(seed):
    """Large steps clip somewhere every few rounds — worst case for the
    scan (events force short segments and block-size resets)."""
    check_equivalence(
        _engine_factory(
            "hybrid", history_policy="additive", reward=0.9, penalty=0.95
        ),
        saturating_matrix(seed),
        MODULES,
    )


@pytest.mark.parametrize(
    "swap",
    (
        # configure-style hot swaps mid-stream: (first params, second params)
        (
            {"algorithm": "avoc", "history_policy": "ema"},
            {"algorithm": "avoc", "history_policy": "additive"},
        ),
        (
            {"algorithm": "hybrid", "history_policy": "additive"},
            {"algorithm": "me", "history_policy": "ema"},
        ),
        (
            {"algorithm": "avoc", "reward": 0.1, "penalty": 0.2,
             "history_policy": "additive"},
            {"algorithm": "avoc", "reward": 0.7, "penalty": 0.8,
             "history_policy": "additive"},
        ),
    ),
)
def test_mid_stream_configure_hot_swap(swap):
    """A configure swap rebuilds the voter with fresh history mid-stream
    (the server semantics); both halves must stay bit-identical and the
    second half must start its scans from pristine records."""
    first, second = (dict(s) for s in swap)
    matrix = saturating_matrix(97)
    cut = matrix.shape[0] // 2
    for spec in (first, second):
        spec["factory"] = _engine_factory(spec.pop("algorithm"), **spec)
    for spec, segment in ((first, matrix[:cut]), (second, matrix[cut:])):
        e_ref, e_batch = spec["factory"](), spec["factory"]()
        reference = run_per_round(e_ref, segment, MODULES)
        batch = e_batch.process_batch(segment, MODULES, diagnostics=True)
        assert_results_identical(reference, batch.to_results())
        assert_end_state_identical(e_ref, e_batch)


@pytest.mark.parametrize("policy", ("additive", "ema"))
def test_batch_resumes_saturated_history(policy):
    """Second batch starts from absorbed, partially saturated records —
    the scan must pick up pinned coordinates from the first batch."""
    matrix = saturating_matrix(31)
    cut = matrix.shape[0] // 2
    factory = _engine_factory("avoc", history_policy=policy)
    e_ref, e_batch = factory(), factory()
    ref_a = run_per_round(e_ref, matrix[:cut], MODULES)
    batch_a = e_batch.process_batch(matrix[:cut], MODULES, diagnostics=True)
    assert_results_identical(ref_a, batch_a.to_results())
    ref_b = run_per_round(e_ref, matrix[cut:], MODULES)
    batch_b = e_batch.process_batch(matrix[cut:], MODULES, diagnostics=True)
    assert_results_identical(ref_b, batch_b.to_results())
    assert_end_state_identical(e_ref, e_batch)
