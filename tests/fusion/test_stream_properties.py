"""Property-based tests for streaming window assembly."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion.engine import FusionEngine
from repro.fusion.stream import SensorEvent, StreamingFusion
from repro.voting.stateless import MeanVoter


@st.composite
def event_streams(draw):
    """A list of events with bounded timestamps and few modules."""
    n = draw(st.integers(min_value=1, max_value=40))
    events = []
    for _ in range(n):
        events.append(
            SensorEvent(
                module=draw(st.sampled_from(["E1", "E2", "E3"])),
                value=draw(st.floats(min_value=0.0, max_value=100.0,
                                     allow_nan=False)),
                timestamp=draw(st.floats(min_value=0.0, max_value=20.0,
                                         allow_nan=False)),
            )
        )
    return events


def run_stream(events, lateness=0.0):
    engine = FusionEngine(MeanVoter(), roster=["E1", "E2", "E3"])
    stream = StreamingFusion(engine, window=1.0, allowed_lateness=lateness)
    for event in sorted(events, key=lambda e: e.timestamp):
        stream.push(event)
    stream.flush()
    return stream


class TestStreamProperties:
    @settings(max_examples=50, deadline=None)
    @given(events=event_streams())
    def test_round_numbers_strictly_increasing(self, events):
        stream = run_stream(events)
        numbers = [r.round_number for r in stream.results]
        assert numbers == sorted(numbers)
        assert len(numbers) == len(set(numbers))

    @settings(max_examples=50, deadline=None)
    @given(events=event_streams())
    def test_every_event_accounted_for(self, events):
        stream = run_stream(events)
        assert stream.events_accepted + stream.events_late == len(events)
        # Fed in timestamp order with zero lateness, nothing can be
        # late for an already-voted window except same-timestamp races;
        # with sorted input there are none.
        assert stream.events_late == 0

    @settings(max_examples=50, deadline=None)
    @given(events=event_streams())
    def test_ok_outputs_within_global_value_range(self, events):
        stream = run_stream(events)
        values = [e.value for e in events]
        for result in stream.results:
            if result.status == "ok":
                assert min(values) - 1e-9 <= result.value <= max(values) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(events=event_streams())
    def test_last_window_covers_last_event(self, events):
        stream = run_stream(events)
        last_event_window = max(int(e.timestamp // 1.0) for e in events)
        assert stream.results[-1].round_number == last_event_window
