"""Tests for pre-vote value exclusion."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.fusion.exclusion import exclude_values
from repro.types import Round


class TestNone:
    def test_none_mode_passthrough(self):
        r = Round.from_values(0, [1.0, 2.0, 100.0])
        filtered, excluded = exclude_values(r, "NONE", 0)
        assert filtered is r
        assert excluded == ()


class TestDeviation:
    def test_far_outlier_excluded(self):
        r = Round.from_values(0, [10.0, 10.1, 9.9, 10.05, 30.0])
        filtered, excluded = exclude_values(r, "DEVIATION", 1.5)
        assert excluded == ("E5",)
        assert "E5" not in filtered.modules

    def test_agreeing_values_all_kept(self):
        r = Round.from_values(0, [10.0, 10.1, 9.9])
        filtered, excluded = exclude_values(r, "DEVIATION", 2.0)
        assert excluded == ()

    def test_identical_values_no_division_by_zero(self):
        r = Round.from_values(0, [5.0, 5.0, 5.0])
        filtered, excluded = exclude_values(r, "DEVIATION", 1.0)
        assert excluded == ()

    def test_never_empties_the_round(self):
        # Two diffuse values: any threshold that would cut both leaves
        # the round untouched instead.
        r = Round.from_values(0, [0.0, 100.0, 50.0])
        filtered, excluded = exclude_values(r, "DEVIATION", 0.1)
        assert filtered.submitted_count >= 1


class TestRange:
    def test_median_referenced_window(self):
        r = Round.from_values(0, [10.0, 10.5, 9.5, 40.0])
        filtered, excluded = exclude_values(r, "RANGE", 5.0)
        assert excluded == ("E4",)

    def test_small_rounds_not_filtered(self):
        r = Round.from_values(0, [1.0, 100.0])
        filtered, excluded = exclude_values(r, "RANGE", 1.0)
        assert excluded == ()


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            exclude_values(Round.from_values(0, [1.0]), "FANCY", 1.0)

    def test_nonpositive_threshold(self):
        with pytest.raises(ConfigurationError):
            exclude_values(Round.from_values(0, [1.0, 2.0, 3.0]), "RANGE", 0.0)

    def test_missing_readings_preserved(self):
        r = Round.from_mapping(0, {"a": 10.0, "b": None, "c": 10.1, "d": 10.2, "e": 30.0})
        filtered, excluded = exclude_values(r, "DEVIATION", 1.5)
        assert "b" in filtered.modules  # missing reading survives the filter
        assert excluded == ("e",)
