"""Tests for the multi-dimensional voting pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fusion.pipeline import MultiDimensionalPipeline
from repro.voting.avoc import AvocVoter
from repro.voting.stateless import MeanVoter


class TestConstruction:
    def test_integer_dimensions(self):
        pipeline = MultiDimensionalPipeline(MeanVoter, 3)
        assert pipeline.n_dimensions == 3
        assert pipeline.dimension_names == ("dim0", "dim1", "dim2")

    def test_named_dimensions(self):
        pipeline = MultiDimensionalPipeline(MeanVoter, ["x", "y"])
        assert pipeline.dimension_names == ("x", "y")

    def test_each_dimension_gets_its_own_voter(self):
        pipeline = MultiDimensionalPipeline(AvocVoter, 2)
        voters = list(pipeline.voters.values())
        assert voters[0] is not voters[1]

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            MultiDimensionalPipeline(MeanVoter, 0)
        with pytest.raises(ConfigurationError):
            MultiDimensionalPipeline(MeanVoter, [])


class TestVoting:
    def test_per_dimension_fusion(self):
        pipeline = MultiDimensionalPipeline(MeanVoter, ["x", "y"])
        fused, outcomes = pipeline.vote(
            0,
            {"s1": [1.0, 10.0], "s2": [3.0, 20.0]},
        )
        assert fused[0] == pytest.approx(2.0)
        assert fused[1] == pytest.approx(15.0)
        assert set(outcomes) == {"x", "y"}

    def test_outlier_masked_per_axis(self):
        # A sensor can be faulty on one axis only; per-dimension voting
        # keeps its healthy axis (the §5 generalisation rationale).
        pipeline = MultiDimensionalPipeline(AvocVoter, ["x", "y"])
        vectors = {
            "s1": [10.0, 5.0],
            "s2": [10.1, 5.1],
            "s3": [9.9, 4.9],
            "s4": [10.05, 50.0],  # y axis broken
        }
        fused, outcomes = pipeline.vote(0, vectors)
        assert fused[0] == pytest.approx(10.0, abs=0.2)
        assert fused[1] == pytest.approx(5.0, abs=0.2)
        assert "s4" in outcomes["y"].eliminated
        assert "s4" not in outcomes["x"].eliminated

    def test_histories_independent_across_dimensions(self):
        pipeline = MultiDimensionalPipeline(AvocVoter, ["x", "y"])
        vectors = {
            "s1": [10.0, 5.0],
            "s2": [10.1, 5.1],
            "s3": [9.9, 4.9],
            "s4": [10.05, 50.0],
        }
        pipeline.vote(0, vectors)
        assert pipeline.voters["y"].history.get("s4") == 0.0
        assert pipeline.voters["x"].history.get("s4") == 1.0

    def test_wrong_vector_length_rejected(self):
        pipeline = MultiDimensionalPipeline(MeanVoter, 2)
        with pytest.raises(ConfigurationError):
            pipeline.vote(0, {"s1": [1.0, 2.0, 3.0]})

    def test_run_sequence(self):
        pipeline = MultiDimensionalPipeline(MeanVoter, 2)
        rounds = [
            {"s1": [1.0, 2.0], "s2": [3.0, 4.0]},
            {"s1": [5.0, 6.0], "s2": [7.0, 8.0]},
        ]
        fused = pipeline.run(rounds)
        assert np.allclose(fused[0], [2.0, 3.0])
        assert np.allclose(fused[1], [6.0, 7.0])

    def test_reset(self):
        pipeline = MultiDimensionalPipeline(AvocVoter, 1)
        pipeline.vote(0, {"s1": [1.0], "s2": [1.0], "s3": [9.0]})
        pipeline.reset()
        assert pipeline.voters["dim0"].history.update_count == 0
