"""Tests for the multi-dimensional vector fusion (§5 generalisation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fusion.vector import VectorFusion
from repro.voting.avoc import AvocVoter
from repro.voting.stateless import MeanVoter


def healthy_vectors(n=5, base=(10.0, -70.0), spread=(0.05, 0.5), seed=0):
    rng = np.random.default_rng(seed)
    return {
        f"S{i+1}": [
            base[0] + float(rng.normal(0, spread[0])),
            base[1] + float(rng.normal(0, spread[1])),
        ]
        for i in range(n)
    }


class TestConstruction:
    def test_invalid_clustering_method(self):
        with pytest.raises(ConfigurationError):
            VectorFusion(MeanVoter, 2, clustering="kmedoids")

    def test_invalid_error(self):
        with pytest.raises(ConfigurationError):
            VectorFusion(MeanVoter, 2, error=0.0)

    def test_wrong_vector_shape_rejected(self):
        fusion = VectorFusion(MeanVoter, 3)
        with pytest.raises(ConfigurationError):
            fusion.vote(0, {"a": [1.0, 2.0]})

    def test_empty_round_rejected(self):
        with pytest.raises(ConfigurationError):
            VectorFusion(MeanVoter, 2).vote(0, {})


class TestHealthyFusion:
    @pytest.mark.parametrize("method", ["none", "agreement", "meanshift", "xmeans"])
    def test_output_near_truth(self, method):
        fusion = VectorFusion(MeanVoter, 2, clustering=method)
        result = fusion.vote(0, healthy_vectors())
        assert result.value[0] == pytest.approx(10.0, abs=0.2)
        assert result.value[1] == pytest.approx(-70.0, abs=1.0)
        assert result.pruned == ()


class TestCorrelatedOutlier:
    """A module slightly high on EVERY axis: each axis individually is
    within (or near) the per-axis agreement margin, but the joint vector
    is far from the pack — only vector-level clustering catches it."""

    def vectors(self):
        vectors = healthy_vectors(n=6, spread=(0.02, 0.2))
        # Offsets ~1.7x the per-axis margin in whitened space per axis,
        # i.e. ~2.4 margins jointly — beyond the soft_threshold=2 cutoff.
        vectors["S6"] = [10.0 + 0.85, -70.0 - 6.0]
        return vectors

    def far_vectors(self):
        vectors = healthy_vectors(n=6, spread=(0.02, 0.2))
        # ~5 margins per axis: separable even by density methods.
        vectors["S6"] = [10.0 + 2.5, -70.0 - 18.0]
        return vectors

    def test_agreement_clustering_prunes_joint_outlier(self):
        fusion = VectorFusion(MeanVoter, 2, clustering="agreement")
        result = fusion.vote(0, self.vectors())
        assert result.pruned == ("S6",)
        assert result.value[0] == pytest.approx(10.0, abs=0.2)

    def test_meanshift_prunes_far_outlier(self):
        fusion = VectorFusion(MeanVoter, 2, clustering="meanshift")
        result = fusion.vote(0, self.far_vectors())
        assert result.pruned == ("S6",)

    def test_xmeans_prunes_joint_outlier(self):
        fusion = VectorFusion(MeanVoter, 2, clustering="xmeans")
        result = fusion.vote(0, self.vectors())
        assert result.pruned == ("S6",)

    def test_without_clustering_outlier_leaks_into_average(self):
        fusion = VectorFusion(MeanVoter, 2, clustering="none")
        result = fusion.vote(0, self.vectors())
        assert result.pruned == ()
        # The mean collation absorbs the skew instead of pruning it.
        assert result.value[1] < -70.5


class TestGuards:
    def test_never_prunes_below_min_modules(self):
        fusion = VectorFusion(MeanVoter, 1, clustering="agreement", min_modules=2)
        result = fusion.vote(0, {"a": [0.0], "b": [100.0]})
        assert result.pruned == ()

    def test_pruned_counter(self):
        fusion = VectorFusion(MeanVoter, 2, clustering="agreement")
        vectors = healthy_vectors(n=6, spread=(0.02, 0.2))
        vectors["S6"] = [12.0, -85.0]
        fusion.vote(0, vectors)
        assert fusion.modules_pruned == 1

    def test_reset(self):
        fusion = VectorFusion(AvocVoter, 2)
        fusion.vote(0, healthy_vectors())
        fusion.reset()
        assert fusion.rounds_voted == 0
        assert fusion.pipeline.voters["dim0"].history.update_count == 0


class TestPerDimensionLayer:
    def test_avoc_per_dimension_still_applies(self):
        # With the vector prefilter off, per-dimension AVOC still
        # handles per-axis faults on its own (§5: AVOC itself votes on
        # each dimension separately without the clustering).
        fusion = VectorFusion(AvocVoter, 2, clustering="none")
        vectors = healthy_vectors(n=5, spread=(0.02, 0.2))
        vectors["S5"] = [vectors["S5"][0], -40.0]  # axis-1 fault only
        result = fusion.vote(0, vectors)
        assert "S5" in result.outcomes["dim1"].eliminated
        assert result.value[1] == pytest.approx(-70.0, abs=1.0)

    def test_run_sequence(self):
        fusion = VectorFusion(MeanVoter, 2)
        results = fusion.run([healthy_vectors(seed=s) for s in range(3)])
        assert [r.round_number for r in results] == [0, 1, 2]
