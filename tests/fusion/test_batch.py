"""Equivalence tests for the vectorized batch fusion core.

The contract under test: :meth:`FusionEngine.process_batch` (and the
``repro.fuse`` convenience wrapper, and the ``run_matrix`` compat
wrapper) must be **bit-identical** to feeding the same matrix through
the per-round :meth:`FusionEngine.process` loop — values, statuses,
outcome diagnostics, engine counters, and voter/history end-state —
for every registered algorithm, on clean and gap-ridden matrices,
under quorum rules and every fault-policy action, including the
raise paths.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.datasets.ble_uc2 import UC2Config, generate_uc2_dataset
from repro.datasets.light_uc1 import UC1Config, generate_uc1_dataset
from repro.exceptions import FusionError, QuorumNotReachedError
from repro.fusion.batch import BatchResult, fuse, process_matrix
from repro.fusion.engine import FusionEngine
from repro.fusion.faults import FaultPolicy
from repro.fusion.quorum import QuorumRule
from repro.types import Round, is_missing
from repro.vdx.examples import AVOC_SPEC
from repro.voting.avoc import AvocVoter
from repro.voting.registry import (
    available_algorithms,
    categorical_algorithms,
    create_voter,
)

#: Every registered numeric algorithm (the batch path is numeric-only;
#: categorical voters never reach it).
ALGORITHMS = tuple(
    name
    for name in sorted(available_algorithms())
    if name not in categorical_algorithms()
)


def inject_gaps(matrix, fraction=0.15, all_missing_rounds=(7,), seed=5):
    """A copy of ``matrix`` with NaN gaps and whole rounds knocked out."""
    rng = np.random.default_rng(seed)
    out = matrix.copy()
    out[rng.random(out.shape) < fraction] = np.nan
    for r in all_missing_rounds:
        if r < out.shape[0]:
            out[r] = np.nan
    return out


@pytest.fixture(scope="module")
def uc1():
    data = generate_uc1_dataset(UC1Config(n_rounds=250))
    return inject_gaps(data.matrix), list(data.modules)


@pytest.fixture(scope="module")
def uc2():
    stack = generate_uc2_dataset(UC2Config()).stack_a
    matrix = inject_gaps(stack.matrix[:250], fraction=0.1)
    return matrix, list(stack.modules)


def run_per_round(engine, matrix, modules):
    """The reference implementation: one engine.process call per row."""
    results = []
    for number, row in enumerate(matrix):
        mapping = {
            m: (None if is_missing(v) else float(v))
            for m, v in zip(modules, row)
        }
        results.append(engine.process(Round.from_mapping(number, mapping)))
    return results


def assert_results_identical(reference, batch_results):
    assert len(reference) == len(batch_results)
    for a, b in zip(reference, batch_results):
        assert a.round_number == b.round_number
        assert a.status == b.status
        if a.value is None:
            assert b.value is None
        else:
            # Bit-identity, not approx: the batch kernels must walk the
            # exact same IEEE expression trees as the scalar voters.
            assert a.value == b.value
        if a.outcome is None:
            assert b.outcome is None
        else:
            assert b.outcome is not None
            assert a.outcome.weights == b.outcome.weights
            assert a.outcome.history == b.outcome.history
            assert a.outcome.agreement == b.outcome.agreement
            assert a.outcome.eliminated == b.outcome.eliminated
            assert a.outcome.used_bootstrap == b.outcome.used_bootstrap
            assert a.outcome.diagnostics == b.outcome.diagnostics


def assert_end_state_identical(e_ref, e_batch):
    assert e_ref.rounds_processed == e_batch.rounds_processed
    assert e_ref.rounds_degraded == e_batch.rounds_degraded
    assert e_ref.last_accepted == e_batch.last_accepted
    assert e_ref.roster == e_batch.roster
    h_ref = getattr(e_ref.voter, "history", None)
    h_batch = getattr(e_batch.voter, "history", None)
    assert (h_ref is None) == (h_batch is None)
    if h_ref is not None:
        assert h_ref.snapshot() == h_batch.snapshot()
        assert h_ref.update_count == h_batch.update_count


def check_equivalence(make_engine, matrix, modules):
    """Run both paths and assert full bit-identity, incl. raise paths."""
    e_ref, e_batch = make_engine(), make_engine()
    ref_exc = batch_exc = reference = batch = None
    try:
        reference = run_per_round(e_ref, matrix, modules)
    except (FusionError, QuorumNotReachedError) as exc:
        ref_exc = exc
    try:
        batch = e_batch.process_batch(matrix, modules, diagnostics=True)
    except (FusionError, QuorumNotReachedError) as exc:
        batch_exc = exc
    if ref_exc is not None:
        assert batch_exc is not None, "per-round raised but batch did not"
        assert type(batch_exc) is type(ref_exc)
        assert str(batch_exc) == str(ref_exc)
    else:
        assert batch_exc is None, f"batch raised unexpectedly: {batch_exc!r}"
        assert_results_identical(reference, batch.to_results())
    assert_end_state_identical(e_ref, e_batch)


class TestEquivalenceUC1:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_batch_matches_per_round(self, algorithm, uc1):
        matrix, modules = uc1
        check_equivalence(
            lambda: FusionEngine(create_voter(algorithm), roster=modules),
            matrix,
            modules,
        )


class TestEquivalenceUC2:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_batch_matches_per_round(self, algorithm, uc2):
        matrix, modules = uc2
        check_equivalence(
            lambda: FusionEngine(create_voter(algorithm), roster=modules),
            matrix,
            modules,
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_quorum_failure_rounds(self, algorithm, uc2):
        # An UNTIL-90% rule turns the gap rounds into quorum failures;
        # both paths must degrade the same rounds the same way.
        matrix, modules = uc2
        check_equivalence(
            lambda: FusionEngine(
                create_voter(algorithm),
                roster=modules,
                quorum=QuorumRule(mode="UNTIL", percentage=90.0),
            ),
            matrix,
            modules,
        )

    @pytest.mark.parametrize("algorithm", ("average", "avoc", "clustering"))
    def test_quorum_raise_policy(self, algorithm, uc2):
        matrix, modules = uc2
        check_equivalence(
            lambda: FusionEngine(
                create_voter(algorithm),
                roster=modules,
                quorum=QuorumRule(mode="UNTIL", percentage=95.0),
                fault_policy=FaultPolicy(on_quorum_failure="raise"),
            ),
            matrix,
            modules,
        )

    @pytest.mark.parametrize("algorithm", ("average", "avoc", "me"))
    def test_missing_majority_raise_policy(self, algorithm, uc2):
        matrix, modules = uc2
        check_equivalence(
            lambda: FusionEngine(
                create_voter(algorithm),
                roster=modules,
                fault_policy=FaultPolicy(
                    on_missing_majority="raise", missing_tolerance=0.4
                ),
            ),
            matrix,
            modules,
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_skip_policy_on_all_missing_rounds(self, algorithm, uc2):
        matrix, modules = uc2
        check_equivalence(
            lambda: FusionEngine(
                create_voter(algorithm),
                roster=modules,
                fault_policy=FaultPolicy(
                    on_missing_majority="skip", missing_tolerance=0.3
                ),
            ),
            matrix,
            modules,
        )


class TestEquivalenceEdgeCases:
    def test_plurality_conflict_rounds(self):
        matrix = np.array(
            [
                [1.0, 1.0, 2.0],
                [1.0, 2.0, 3.0],  # three-way tie
                [2.0, 2.0, 1.0],
                [4.0, 4.0, 4.0],
            ]
        )
        modules = ["a", "b", "c"]
        check_equivalence(
            lambda: FusionEngine(create_voter("plurality"), roster=modules),
            matrix,
            modules,
        )
        check_equivalence(
            lambda: FusionEngine(
                create_voter("plurality"),
                roster=modules,
                fault_policy=FaultPolicy(on_conflict="raise"),
            ),
            matrix,
            modules,
        )

    @pytest.mark.parametrize("algorithm", ("average", "avoc"))
    def test_roster_learned_from_matrix(self, algorithm):
        matrix = np.array([[1.0, 1.1], [0.9, np.nan], [1.0, 1.2]])
        check_equivalence(
            lambda: FusionEngine(create_voter(algorithm)),
            matrix,
            ["E1", "E2"],
        )

    @pytest.mark.parametrize("algorithm", ("average", "avoc", "me"))
    def test_two_batches_continue_one_history(self, algorithm, uc2):
        # Voter state must carry across process_batch calls exactly as
        # it does across process calls.
        matrix, modules = uc2
        e_ref, e_batch = (
            FusionEngine(create_voter(algorithm), roster=modules),
            FusionEngine(create_voter(algorithm), roster=modules),
        )
        run_per_round(e_ref, matrix[:40], modules)
        ref = run_per_round(e_ref, matrix[40:80], modules)
        e_batch.process_batch(matrix[:40], modules)
        batch = e_batch.process_batch(matrix[40:80], modules, diagnostics=True)
        ref_values = [r.value for r in ref]
        batch_values = [r.value for r in batch.to_results()]
        assert ref_values == batch_values
        assert_end_state_identical(e_ref, e_batch)

    def test_exclusion_engine_falls_back_and_matches(self, uc1):
        # VDX value exclusion is not vectorized; process_batch must
        # detect it and route through the per-round fallback, still
        # producing identical results.
        matrix, modules = uc1
        check_equivalence(
            lambda: FusionEngine(
                create_voter("avoc"),
                roster=modules,
                exclusion="DEVIATION",
                exclusion_threshold=2.0,
            ),
            matrix[:60],
            modules,
        )

    def test_empty_matrix_is_a_no_op(self):
        engine = FusionEngine(create_voter("average"), roster=["a", "b"])
        batch = engine.process_batch(np.empty((0, 2)), ["a", "b"])
        assert batch.n_rounds == 0
        assert engine.rounds_processed == 0

    def test_shape_validation_matches_run_matrix(self):
        engine = FusionEngine(create_voter("average"))
        with pytest.raises(FusionError):
            engine.process_batch(np.zeros(3), ["a", "b", "c"])
        with pytest.raises(FusionError):
            engine.process_batch(np.zeros((2, 3)), ["a", "b"])

    def test_run_matrix_is_a_thin_wrapper(self, uc1):
        matrix, modules = uc1
        e_ref = FusionEngine(create_voter("avoc"), roster=modules)
        e_wrap = FusionEngine(create_voter("avoc"), roster=modules)
        reference = run_per_round(e_ref, matrix[:80], modules)
        wrapped = e_wrap.run_matrix(matrix[:80], modules)
        assert_results_identical(reference, wrapped)
        assert_end_state_identical(e_ref, e_wrap)


class TestFuseApi:
    def test_fuse_by_algorithm_name(self):
        result = fuse([[1.0, 1.1, 1.2]], "average")
        assert isinstance(result, BatchResult)
        assert result.values.tolist() == [pytest.approx(1.1)]
        assert result.statuses.tolist() == ["ok"]

    def test_fuse_is_exported_at_package_level(self):
        result = repro.fuse([[1.0, 1.1, 1.2]], "average")
        assert result.values.tolist() == [pytest.approx(1.1)]

    def test_fuse_accepts_1d_input_as_one_round(self):
        result = fuse([18.0, 18.1, 17.9], "median")
        assert result.n_rounds == 1
        assert result.values[0] == 18.0

    def test_fuse_with_voter_instance(self):
        voter = AvocVoter()
        result = fuse(
            [[18.0, 18.1, 17.9, 24.0, 18.05]], voter, diagnostics=True
        )
        outcome = result.results[0].outcome
        assert outcome.used_bootstrap
        assert "E4" in outcome.eliminated

    def test_fuse_with_vdx_spec(self):
        result = fuse([[18.0, 18.1, 17.9, 24.0, 18.05]], AVOC_SPEC)
        assert result.statuses[0] == "ok"

    def test_fuse_matches_engine_batch(self, uc1):
        matrix, modules = uc1
        via_fuse = fuse(matrix, "avoc", modules=modules)
        engine = FusionEngine(create_voter("avoc"), roster=modules)
        via_engine = engine.process_batch(matrix, modules)
        assert np.array_equal(
            via_fuse.values, via_engine.values, equal_nan=True
        )
        assert via_fuse.statuses.tolist() == via_engine.statuses.tolist()

    def test_fuse_quorum_and_policy_overrides(self):
        matrix = [[1.0, np.nan, np.nan], [1.0, 1.1, 0.9]]
        result = fuse(
            matrix,
            "average",
            quorum=QuorumRule(mode="UNTIL", percentage=100.0),
            fault_policy=FaultPolicy(on_quorum_failure="skip"),
        )
        assert result.statuses.tolist() == ["skipped", "ok"]

    def test_fuse_rejects_unknown_algorithm(self):
        with pytest.raises(Exception):
            fuse([[1.0]], "no-such-voter")


class TestBatchResult:
    def test_ok_mask_and_module_weight(self, uc1):
        matrix, modules = uc1
        engine = FusionEngine(create_voter("avoc"), roster=modules)
        batch = engine.process_batch(matrix[:50], modules, diagnostics=True)
        assert batch.ok.dtype == bool
        assert batch.ok.shape == (50,)
        weights = batch.module_weight(modules[0])
        assert weights.shape == (50,)

    def test_module_weight_requires_diagnostics(self):
        engine = FusionEngine(create_voter("average"), roster=["a", "b"])
        batch = engine.process_batch(np.ones((3, 2)), ["a", "b"])
        with pytest.raises(FusionError):
            batch.module_weight("a")

    def test_module_weight_unknown_module(self):
        engine = FusionEngine(create_voter("average"), roster=["a", "b"])
        batch = engine.process_batch(
            np.ones((3, 2)), ["a", "b"], diagnostics=True
        )
        with pytest.raises(FusionError):
            batch.module_weight("zz")


class TestQuorumDeprecation:
    def test_quorum_percentage_warns(self):
        from repro.voting.base import VoterParams

        with pytest.warns(DeprecationWarning, match="quorum_percentage"):
            VoterParams(quorum_percentage=50.0)

    def test_zero_percentage_stays_silent(self):
        from repro.voting.base import VoterParams

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            VoterParams()  # must not warn

    def test_engine_adopts_deprecated_percentage(self):
        with pytest.warns(DeprecationWarning):
            params = AvocVoter.default_params().with_overrides(
                quorum_percentage=80.0
            )
        engine = FusionEngine(AvocVoter(params=params))
        assert engine.quorum.mode == "UNTIL"
        assert engine.quorum.percentage == 80.0

    def test_explicit_rule_wins_over_deprecated_percentage(self):
        with pytest.warns(DeprecationWarning):
            params = AvocVoter.default_params().with_overrides(
                quorum_percentage=80.0
            )
        engine = FusionEngine(
            AvocVoter(params=params), quorum=QuorumRule(mode="ANY")
        )
        assert engine.quorum.mode == "ANY"

    def test_deprecated_percentage_still_enforced_in_batch(self, uc2):
        # Equivalence must hold for legacy voters carrying the old
        # voter-level quorum too (the engine adopts it).
        matrix, modules = uc2
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            make = lambda: FusionEngine(
                AvocVoter(
                    params=AvocVoter.default_params().with_overrides(
                        quorum_percentage=100.0
                    )
                ),
                roster=modules,
            )
            check_equivalence(make, matrix[:80], modules)


class TestProcessMatrixFunction:
    def test_process_matrix_is_engine_method_backend(self, uc1):
        matrix, modules = uc1
        e1 = FusionEngine(create_voter("median"), roster=modules)
        e2 = FusionEngine(create_voter("median"), roster=modules)
        via_fn = process_matrix(e1, matrix[:40], modules)
        via_method = e2.process_batch(matrix[:40], modules)
        assert np.array_equal(via_fn.values, via_method.values, equal_nan=True)
