"""Tests for fault policies."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.fusion.faults import HOLD_LAST, LENIENT, STRICT, FaultPolicy


class TestValidation:
    def test_defaults(self):
        policy = FaultPolicy()
        assert policy.on_missing_majority == "last_value"
        assert policy.missing_tolerance == 0.5

    def test_bad_action_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPolicy(on_conflict="retry")

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPolicy(missing_tolerance=1.0)


class TestMajorityMissing:
    def test_exact_half_missing_is_tolerated(self):
        policy = FaultPolicy(missing_tolerance=0.5)
        assert not policy.majority_missing(submitted=5, roster_size=10)

    def test_majority_missing_detected(self):
        policy = FaultPolicy(missing_tolerance=0.5)
        assert policy.majority_missing(submitted=4, roster_size=10)

    def test_all_missing(self):
        assert FaultPolicy().majority_missing(submitted=0, roster_size=9)

    def test_zero_roster_counts_as_missing(self):
        assert FaultPolicy().majority_missing(submitted=0, roster_size=0)

    def test_stricter_tolerance(self):
        policy = FaultPolicy(missing_tolerance=0.1)
        assert policy.majority_missing(submitted=8, roster_size=10)
        assert not policy.majority_missing(submitted=9, roster_size=10)


class TestPresets:
    def test_presets_are_distinct(self):
        assert STRICT.on_conflict == "raise"
        assert LENIENT.on_conflict == "skip"
        assert HOLD_LAST.on_conflict == "last_value"
