"""Tests for the shared atomic-write helper."""

from __future__ import annotations

import os

import pytest

from repro.util import atomic_write


def test_writes_text(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write(target, "hello\n")
    assert target.read_text() == "hello\n"


def test_writes_bytes(tmp_path):
    target = tmp_path / "out.bin"
    atomic_write(target, b"\x00\x01\x02")
    assert target.read_bytes() == b"\x00\x01\x02"


def test_creates_parent_directories(tmp_path):
    target = tmp_path / "deep" / "nested" / "out.txt"
    atomic_write(target, "x")
    assert target.read_text() == "x"


def test_overwrites_atomically_and_leaves_no_temp_files(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write(target, "old")
    atomic_write(target, "new")
    assert target.read_text() == "new"
    assert os.listdir(tmp_path) == ["out.txt"]


def test_failure_leaves_previous_content_and_no_temp(tmp_path, monkeypatch):
    target = tmp_path / "out.txt"
    atomic_write(target, "precious")
    monkeypatch.setattr(
        os, "replace", lambda *a, **k: (_ for _ in ()).throw(OSError("boom"))
    )
    with pytest.raises(OSError):
        atomic_write(target, "lost")
    monkeypatch.undo()
    assert target.read_text() == "precious"
    assert os.listdir(tmp_path) == ["out.txt"]
