"""Tests for series statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import mae, max_abs, rmse, summarize


class TestErrors:
    def test_rmse(self):
        assert rmse([1.0, 2.0], [0.0, 0.0]) == pytest.approx(np.sqrt(2.5))

    def test_mae(self):
        assert mae([1.0, -3.0], [0.0, 0.0]) == pytest.approx(2.0)

    def test_nan_pairs_skipped(self):
        assert mae([1.0, np.nan], [0.0, 0.0]) == pytest.approx(1.0)

    def test_all_nan_returns_nan(self):
        assert np.isnan(rmse([np.nan], [0.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mae([1.0], [1.0, 2.0])


class TestMaxAbs:
    def test_magnitude(self):
        assert max_abs([1.0, -5.0, 3.0]) == 5.0

    def test_empty_is_nan(self):
        assert np.isnan(max_abs([]))


class TestSummarize:
    def test_summary_fields(self):
        s = summarize([1.0, 2.0, 3.0, np.nan])
        assert s.count == 3
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(np.std([1.0, 2.0, 3.0]))

    def test_as_dict(self):
        assert set(summarize([1.0]).as_dict()) == {"count", "min", "max", "mean", "std"}

    def test_empty_series(self):
        s = summarize([])
        assert s.count == 0
        assert np.isnan(s.mean)
