"""Tests for error-injection differential computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.diff import error_injection_diff, run_voter_series
from repro.voting.avoc import AvocVoter
from repro.voting.stateless import MeanVoter


class TestRunVoterSeries:
    def test_series_length_matches_dataset(self, uc1_small):
        series = run_voter_series(MeanVoter(), uc1_small)
        assert series.shape == (uc1_small.n_rounds,)

    def test_voter_is_reset_before_running(self, uc1_small):
        voter = AvocVoter()
        voter.vote_values([1.0, 1.0, 99.0])  # dirty history
        run_voter_series(voter, uc1_small)
        # The run must have started from fresh records (bootstrap fired).
        assert voter.bootstraps_used == 1

    def test_custom_engine_factory(self, uc1_small):
        from repro.fusion.engine import FusionEngine

        captured = []

        def factory(voter):
            engine = FusionEngine(voter, roster=list(uc1_small.modules))
            captured.append(engine)
            return engine

        run_voter_series(MeanVoter(), uc1_small, engine_factory=factory)
        assert captured[0].rounds_processed == uc1_small.n_rounds


class TestErrorInjectionDiff:
    def test_mean_voter_diff_equals_delta_over_n(self, uc1_small, uc1_small_faulty):
        diff = error_injection_diff(MeanVoter, uc1_small, uc1_small_faulty)
        assert np.allclose(diff, 6.0 / 5.0)

    def test_avoc_diff_near_zero(self, uc1_small, uc1_small_faulty):
        diff = error_injection_diff(AvocVoter, uc1_small, uc1_small_faulty)
        assert abs(diff[0]) < 0.15
        assert np.nanmean(np.abs(diff)) < 0.2

    def test_length_mismatch_rejected(self, uc1_small):
        with pytest.raises(ValueError):
            error_injection_diff(MeanVoter, uc1_small, uc1_small.slice(0, 10))
