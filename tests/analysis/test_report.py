"""Tests for text rendering of tables and series."""

from __future__ import annotations

import numpy as np

from repro.analysis.report import render_series, render_table, sparkline


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["name", "value"], [["a", 1.0], ["longer", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_float_formatting(self):
        text = render_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_nan_rendering(self):
        assert "nan" in render_table(["v"], [[float("nan")]])

    def test_non_numeric_cells(self):
        text = render_table(["a", "b"], [[True, "xyz"]])
        assert "True" in text and "xyz" in text


class TestSparkline:
    def test_length_capped_at_width(self):
        line = sparkline(list(range(1000)), width=40)
        assert len(line) == 40

    def test_short_series_uncompressed(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=40)) == 3

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line == "".join(sorted(line))

    def test_nan_rendered_as_space(self):
        line = sparkline([1.0, float("nan"), 2.0])
        assert line[1] == " "

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3).strip() == ""

    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_no_crash(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3


class TestSaveSeriesCsv:
    def test_round_trip_columns(self, tmp_path):
        from repro.analysis.report import save_series_csv

        path = tmp_path / "series.csv"
        save_series_csv(path, {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        lines = path.read_text().splitlines()
        assert lines[0] == "round,a,b"
        assert lines[1] == "0,1.0,3.0"
        assert len(lines) == 3

    def test_nan_becomes_empty_cell(self, tmp_path):
        from repro.analysis.report import save_series_csv

        path = tmp_path / "series.csv"
        save_series_csv(path, {"a": [1.0, float("nan")]})
        assert path.read_text().splitlines()[2] == "1,"

    def test_unequal_lengths_padded(self, tmp_path):
        from repro.analysis.report import save_series_csv

        path = tmp_path / "series.csv"
        save_series_csv(path, {"long": [1.0, 2.0, 3.0], "short": [9.0]})
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        assert lines[1] == "0,1.0,9.0"
        assert lines[3] == "2,3.0,"  # short series padded with empty cell

    def test_creates_parent_directories(self, tmp_path):
        from repro.analysis.report import save_series_csv

        path = tmp_path / "deep" / "series.csv"
        save_series_csv(path, {"a": [1.0]})
        assert path.exists()


class TestRenderSeries:
    def test_labels_aligned_and_ranges_shown(self):
        text = render_series({"a": [1.0, 2.0], "longer": [3.0, 4.0]})
        lines = text.splitlines()
        assert lines[0].startswith("a     ")
        assert "[1, 2]" in lines[0]
        assert "[3, 4]" in lines[1]

    def test_all_missing_annotated(self):
        text = render_series({"x": [np.nan, np.nan]})
        assert "all missing" in text

    def test_empty_mapping(self):
        assert render_series({}) == ""

    def test_range_suppressible(self):
        text = render_series({"a": [1.0, 2.0]}, show_range=False)
        assert "[" not in text
