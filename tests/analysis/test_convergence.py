"""Tests for convergence metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.convergence import (
    convergence_boost,
    convergence_round,
    rounds_above_tolerance,
    stable_value_distance,
)


class TestConvergenceRound:
    def test_immediately_converged(self):
        assert convergence_round([0.0, 0.01, 0.02], tolerance=0.1) == 0

    def test_transient_then_settled(self):
        diff = [1.2, 0.9, 0.4, 0.05, 0.02, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        assert convergence_round(diff, tolerance=0.1) == 3

    def test_never_settles(self):
        assert convergence_round([1.0] * 20, tolerance=0.1) == 20

    def test_isolated_late_spike_ignored(self):
        # A settling window, then one spike much later: the settling
        # round is still the early one (the paper's Fig. 6-e shows
        # exactly such residual spikes).
        diff = [1.0] + [0.0] * 15 + [0.9] + [0.0] * 15
        assert convergence_round(diff, tolerance=0.1, window=10) == 1

    def test_window_requires_persistence(self):
        # In-tolerance runs shorter than the window don't count.
        diff = [1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0] + [0.0] * 10
        assert convergence_round(diff, tolerance=0.1, window=5) == 7

    def test_short_tail_settles(self):
        # Series ends in tolerance with fewer rounds than the window.
        assert convergence_round([1.0, 0.0, 0.0], tolerance=0.1, window=10) == 1

    def test_nan_counts_as_violation(self):
        diff = [0.0, float("nan")] + [0.0] * 12
        assert convergence_round(diff, tolerance=0.1) == 2

    def test_negative_diffs_use_magnitude(self):
        assert convergence_round([-2.0, -0.01, 0.01] + [0.0] * 10, 0.1) == 1

    def test_empty(self):
        assert convergence_round([], tolerance=0.1) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            convergence_round([1.0], tolerance=0.0)
        with pytest.raises(ValueError):
            convergence_round([1.0], tolerance=0.1, window=0)


class TestBoostAndCounts:
    def test_boost_ratio(self):
        baseline = [1.0, 1.0, 1.0] + [0.0] * 10  # settles at round 3
        improved = [0.0] * 13  # settles at round 0
        assert convergence_boost(baseline, improved, 0.1) == pytest.approx(4.0)

    def test_equal_series_boost_one(self):
        series = [1.0] + [0.0] * 10
        assert convergence_boost(series, series, 0.1) == 1.0

    def test_rounds_above_tolerance(self):
        assert rounds_above_tolerance([1.0, 0.05, 0.9, 0.0], 0.1) == 2

    def test_rounds_above_tolerance_counts_nan(self):
        assert rounds_above_tolerance([float("nan"), 0.0], 0.1) == 1


class TestStableValueDistance:
    def test_tail_only(self):
        outputs = np.concatenate([np.full(80, 99.0), np.full(20, 5.0)])
        baseline = np.concatenate([np.full(80, 0.0), np.full(20, 4.0)])
        assert stable_value_distance(outputs, baseline, 0.2) == pytest.approx(1.0)

    def test_nan_entries_skipped(self):
        outputs = np.array([1.0, np.nan, 1.0, 1.0])
        baseline = np.zeros(4)
        assert stable_value_distance(outputs, baseline, 1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            stable_value_distance([1.0], [1.0], tail_fraction=0.0)
        with pytest.raises(ValueError):
            stable_value_distance([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            stable_value_distance([], [])
