"""Tests for per-module reliability diagnosis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reliability import FAULT_CLASSES, diagnose, worst_module
from repro.datasets.injection import drop_values, offset_fault
from repro.voting.registry import create_voter


def run_outcomes(dataset, algorithm="avoc"):
    voter = create_voter(algorithm)
    outcomes = []
    for voting_round in dataset.rounds():
        outcomes.append(voter.vote(voting_round))
    return outcomes


class TestHealthyRun:
    def test_all_modules_healthy(self, uc1_small):
        dataset = uc1_small.slice(0, 150)
        reports = diagnose(dataset, run_outcomes(dataset))
        assert set(reports) == set(dataset.modules)
        for report in reports.values():
            assert report.classification == "healthy"
            assert report.rounds_missing == 0
            assert report.exclusion_fraction < 0.2
        assert worst_module(reports) is None

    def test_report_fields_sane(self, uc1_small):
        dataset = uc1_small.slice(0, 100)
        reports = diagnose(dataset, run_outcomes(dataset))
        report = reports["E1"]
        assert report.rounds_total == 100
        assert 0.0 <= report.mean_agreement <= 1.0
        assert 0.0 <= report.final_record <= 1.0
        assert abs(report.residual_bias) < 0.5


class TestFaultClassification:
    def test_offset_fault_detected(self, uc1_small):
        dataset = offset_fault(uc1_small.slice(0, 150), "E4", 6.0)
        reports = diagnose(dataset, run_outcomes(dataset))
        assert reports["E4"].classification == "offset"
        assert reports["E4"].residual_bias > 5.0
        assert reports["E4"].exclusion_fraction > 0.9
        assert worst_module(reports) == "E4"

    def test_silent_module_detected(self, uc1_small):
        dataset = drop_values(uc1_small.slice(0, 150), "E2", probability=0.8,
                              seed=3)
        reports = diagnose(dataset, run_outcomes(dataset))
        assert reports["E2"].classification == "silent"
        assert reports["E2"].rounds_missing > 90

    def test_drift_fault_detected(self, uc1_small):
        dataset = uc1_small.slice(0, 200)
        matrix = dataset.matrix.copy()
        matrix[:, 2] += np.linspace(0.0, 8.0, 200)  # E3 drifts away
        drifting = dataset.with_matrix(matrix, suffix="drift")
        reports = diagnose(drifting, run_outcomes(drifting))
        assert reports["E3"].classification == "drift"
        assert reports["E3"].residual_trend > 1.0

    def test_erratic_module_detected(self, uc1_small):
        dataset = uc1_small.slice(0, 200)
        rng = np.random.default_rng(0)
        matrix = dataset.matrix.copy()
        matrix[:, 4] += rng.normal(0.0, 4.0, 200)  # E5 goes noisy, no bias
        noisy = dataset.with_matrix(matrix, suffix="noisy")
        reports = diagnose(noisy, run_outcomes(noisy))
        assert reports["E5"].classification == "erratic"

    def test_all_classes_are_known(self, uc1_small):
        dataset = offset_fault(uc1_small.slice(0, 60), "E1", 6.0)
        reports = diagnose(dataset, run_outcomes(dataset))
        for report in reports.values():
            assert report.classification in FAULT_CLASSES


class TestValidation:
    def test_misaligned_outcomes_rejected(self, uc1_small):
        dataset = uc1_small.slice(0, 50)
        with pytest.raises(ValueError, match="does not match"):
            diagnose(dataset, run_outcomes(dataset.slice(0, 30)))


class TestWorstModulePriorities:
    def test_silent_outranks_offset(self, uc1_small):
        dataset = offset_fault(uc1_small.slice(0, 150), "E4", 6.0)
        dataset = drop_values(dataset, "E2", probability=0.9, seed=5)
        reports = diagnose(dataset, run_outcomes(dataset))
        assert worst_module(reports) == "E2"
