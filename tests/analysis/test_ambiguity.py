"""Tests for the UC-2 ambiguity metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ambiguity import (
    ambiguous_rounds,
    classification_accuracy,
    closest_stack_series,
    unstable_rounds,
)


class TestAmbiguousRounds:
    def test_clearly_separated_counts_zero(self):
        a = [-50.0, -50.0]
        b = [-90.0, -90.0]
        assert ambiguous_rounds(a, b, margin_db=5.0) == 0

    def test_close_values_count(self):
        a = [-70.0, -70.0, -50.0]
        b = [-72.0, -68.0, -90.0]
        assert ambiguous_rounds(a, b, margin_db=5.0) == 2

    def test_missing_outputs_count_as_ambiguous(self):
        a = [np.nan, -50.0]
        b = [-90.0, np.nan]
        assert ambiguous_rounds(a, b, margin_db=5.0) == 2

    def test_margin_boundary_exclusive(self):
        assert ambiguous_rounds([-70.0], [-75.0], margin_db=5.0) == 0
        assert ambiguous_rounds([-70.0], [-74.9], margin_db=5.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ambiguous_rounds([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            ambiguous_rounds([1.0], [1.0], margin_db=-1.0)


class TestClosestStack:
    def test_higher_rssi_wins(self):
        calls = closest_stack_series([-50.0, -90.0], [-90.0, -50.0])
        assert list(calls) == ["A", "B"]

    def test_missing_marked_unknown(self):
        calls = closest_stack_series([np.nan], [-50.0])
        assert list(calls) == ["?"]


class TestUnstableRounds:
    def test_steady_call_has_no_instability(self):
        a = [-50.0] * 20
        b = [-90.0] * 20
        assert unstable_rounds(a, b, window=5) == 0

    def test_single_crossover_is_localised(self):
        a = [-50.0] * 10 + [-90.0] * 10
        b = [-90.0] * 10 + [-50.0] * 10
        count = unstable_rounds(a, b, window=5)
        assert 0 < count <= 5

    def test_flapping_calls_all_unstable(self):
        a = [-50.0, -90.0] * 10
        b = [-90.0, -50.0] * 10
        assert unstable_rounds(a, b, window=5) == 20

    def test_missing_values_destabilise_neighbourhood(self):
        a = [-50.0] * 10
        b = [-90.0] * 9 + [np.nan]
        assert unstable_rounds(a, b, window=5) == 3

    def test_window_validation(self):
        with pytest.raises(ValueError):
            unstable_rounds([-50.0], [-90.0], window=4)
        with pytest.raises(ValueError):
            unstable_rounds([-50.0], [-90.0], window=0)


class TestAccuracy:
    def test_perfect_calls(self):
        a = [-50.0, -90.0]
        b = [-90.0, -50.0]
        assert classification_accuracy(a, b, ["A", "B"]) == 1.0

    def test_missing_counts_as_wrong(self):
        a = [np.nan, -50.0]
        b = [-90.0, -90.0]
        assert classification_accuracy(a, b, ["A", "A"]) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            classification_accuracy([-50.0], [-60.0], ["A", "B"])
