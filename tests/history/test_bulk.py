"""Tests for the non-packed bulk series-state backings."""

from __future__ import annotations

import pytest

from repro.exceptions import HistoryStoreError
from repro.history import (
    JsonlStateStore,
    MemoryStateStore,
    SqliteStateStore,
    series_filename,
)


def test_series_filename_is_safe_and_collision_free():
    name = series_filename("room/42 §température")
    assert name.endswith(".jsonl")
    assert "/" not in name and " " not in name
    assert series_filename("a") != series_filename("b")
    # Same slug, different keys: the digest disambiguates.
    long_a = "x" * 60 + "a"
    long_b = "x" * 60 + "b"
    assert series_filename(long_a) != series_filename(long_b)


@pytest.mark.parametrize("backing", ["memory", "jsonl", "sqlite"])
def test_bulk_round_trip(backing, tmp_path):
    store = {
        "memory": lambda: MemoryStateStore(),
        "jsonl": lambda: JsonlStateStore(tmp_path),
        "sqlite": lambda: SqliteStateStore(tmp_path / "s.db"),
    }[backing]()
    assert store.read("a") is None
    store.write("a", {"E1": 0.5, "E2": 1.0}, 7)
    store.write("b", {"E1": 0.25}, 3)
    expected_updates = 0 if backing == "jsonl" else 7
    assert store.read("a") == ({"E1": 0.5, "E2": 1.0}, expected_updates)
    assert store.series() == ("a", "b")
    assert "a" in store and "nope" not in store
    assert len(store) == 2
    store.delete("a")
    assert store.read("a") is None
    store.compact()
    store.clear()
    assert store.read("b") is None
    store.close()


def test_sqlite_persists_updates_across_reopen(tmp_path):
    SqliteStateStore(tmp_path / "s.db").write("a", {"E1": 0.5}, 42)
    reopened = SqliteStateStore(tmp_path / "s.db")
    assert reopened.read("a") == ({"E1": 0.5}, 42)
    reopened.close()


def test_sqlite_rejects_bad_synchronous(tmp_path):
    with pytest.raises(HistoryStoreError):
        SqliteStateStore(tmp_path / "s.db", synchronous="nope")


def test_jsonl_reads_cold_without_enumeration(tmp_path):
    """A fresh adapter can read any series by key, even though it
    cannot invert the hashed file names to enumerate them."""
    JsonlStateStore(tmp_path).write("room/42", {"E1": 0.5}, 9)
    cold = JsonlStateStore(tmp_path)
    assert cold.series() == ()  # nothing enumerable cold...
    assert cold.read("room/42") == ({"E1": 0.5}, 0)  # ...but reads work


def test_jsonl_uses_legacy_per_series_files(tmp_path):
    store = JsonlStateStore(tmp_path)
    store.write("a", {"E1": 0.5}, 1)
    assert (tmp_path / series_filename("a")).exists()
