"""Tests for the SQLite history store."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import HistoryStoreError
from repro.history.sqlite import SqliteHistoryStore


class TestRoundTrip:
    def test_empty_load(self):
        with SqliteHistoryStore() as store:
            assert store.load() == {}

    def test_save_then_load(self):
        with SqliteHistoryStore() as store:
            store.save({"E1": 0.5, "E2": 1.0})
            assert store.load() == {"E1": 0.5, "E2": 1.0}

    def test_upsert_updates_existing(self):
        with SqliteHistoryStore() as store:
            store.save({"E1": 0.5})
            store.save({"E1": 0.25, "E2": 0.75})
            assert store.load() == {"E1": 0.25, "E2": 0.75}

    def test_clear(self):
        with SqliteHistoryStore() as store:
            store.save({"E1": 0.5})
            store.clear()
            assert store.load() == {}

    def test_survives_process_restart(self, tmp_path):
        path = tmp_path / "history.db"
        first = SqliteHistoryStore(path)
        first.save({"E1": 0.3})
        first.close()
        second = SqliteHistoryStore(path)
        assert second.load() == {"E1": 0.3}
        second.close()

    def test_invalid_synchronous_rejected(self):
        with pytest.raises(HistoryStoreError):
            SqliteHistoryStore(synchronous="SOMETIMES")


class TestConcurrency:
    def test_threaded_saves_do_not_corrupt(self, tmp_path):
        store = SqliteHistoryStore(tmp_path / "h.db")
        errors = []

        def writer(module):
            try:
                for i in range(50):
                    store.save({module: i / 50})
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(f"E{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        records = store.load()
        assert set(records) == {"E0", "E1", "E2", "E3"}
        store.close()


class TestVoterIntegration:
    def test_voter_records_persist_and_reload(self, tmp_path):
        from repro.voting.avoc import AvocVoter

        path = tmp_path / "avoc.db"
        voter = AvocVoter(history_store=SqliteHistoryStore(path))
        voter.vote_values([18.0, 18.1, 17.9, 24.0, 18.05])
        revived = AvocVoter(history_store=SqliteHistoryStore(path))
        assert revived.history.get("E4") == 0.0
        assert not revived.history.all_fresh(["E1", "E2", "E3", "E4", "E5"])
