"""Tests for the write-behind caching store."""

from __future__ import annotations

import pytest

from repro.exceptions import HistoryStoreError
from repro.history.cached import WriteBehindStore
from repro.history.file import JsonlHistoryStore
from repro.history.memory import MemoryHistoryStore


class TestCaching:
    def test_reads_come_from_cache(self):
        backing = MemoryHistoryStore()
        backing.save({"E1": 0.5})
        store = WriteBehindStore(backing, flush_every=100)
        store.load()
        loads_before = backing.load_count
        for _ in range(10):
            store.load()
        assert backing.load_count == loads_before  # no further backend reads

    def test_saves_deferred_until_flush_every(self):
        backing = MemoryHistoryStore()
        store = WriteBehindStore(backing, flush_every=4)
        for i in range(3):
            store.save({"E1": i / 10})
        assert backing.save_count == 0
        assert store.pending_saves == 3
        store.save({"E1": 0.9})
        assert backing.save_count == 1
        assert store.pending_saves == 0
        assert backing.load() == {"E1": 0.9}

    def test_flush_every_one_is_write_through(self):
        backing = MemoryHistoryStore()
        store = WriteBehindStore(backing, flush_every=1)
        store.save({"E1": 0.3})
        assert backing.save_count == 1

    def test_explicit_flush(self):
        backing = MemoryHistoryStore()
        store = WriteBehindStore(backing, flush_every=100)
        store.save({"E1": 0.2})
        store.flush()
        assert backing.load() == {"E1": 0.2}
        assert store.flushes == 1

    def test_flush_without_dirty_state_is_noop(self):
        backing = MemoryHistoryStore()
        store = WriteBehindStore(backing)
        store.flush()
        assert backing.save_count == 0

    def test_context_manager_flushes_on_exit(self, tmp_path):
        backing = JsonlHistoryStore(tmp_path / "h.jsonl")
        with WriteBehindStore(backing, flush_every=100) as store:
            store.save({"E1": 0.7})
        assert JsonlHistoryStore(tmp_path / "h.jsonl").load() == {"E1": 0.7}

    def test_clear_propagates(self):
        backing = MemoryHistoryStore()
        backing.save({"E1": 1.0})
        store = WriteBehindStore(backing)
        store.clear()
        assert backing.load() == {}
        assert store.load() == {}

    def test_invalid_flush_every(self):
        with pytest.raises(HistoryStoreError):
            WriteBehindStore(MemoryHistoryStore(), flush_every=0)


class TestVoterIntegration:
    def test_reduces_backend_writes_per_round(self, tmp_path):
        from repro.types import Round
        from repro.voting.hybrid import HybridVoter

        backing = JsonlHistoryStore(tmp_path / "h.jsonl", compact_after=None)
        store = WriteBehindStore(backing, flush_every=10)
        voter = HybridVoter(history_store=store)
        for i in range(40):
            voter.vote(Round.from_values(i, [18.0, 18.1, 17.9]))
        # 40 rounds, flushed every 10 -> exactly 4 backend writes.
        assert backing.snapshot_count() == 4
        store.flush()
        # State is still the latest record set.
        revived = HybridVoter(
            history_store=WriteBehindStore(
                JsonlHistoryStore(tmp_path / "h.jsonl", compact_after=None)
            )
        )
        assert revived.history.snapshot() == voter.history.snapshot()

    def test_bounded_staleness_on_crash(self, tmp_path):
        from repro.types import Round
        from repro.voting.hybrid import HybridVoter

        backing = JsonlHistoryStore(tmp_path / "h.jsonl")
        store = WriteBehindStore(backing, flush_every=10)
        voter = HybridVoter(history_store=store)
        for i in range(15):
            voter.vote(Round.from_values(i, [18.0, 18.1, 17.9, 24.0]))
        # Simulated crash: no flush.  The backing store holds the
        # round-10 snapshot, not round-15 — staleness is bounded.
        persisted = JsonlHistoryStore(tmp_path / "h.jsonl").load()
        assert persisted  # the flush at round 10 happened
        assert store.pending_saves == 5
