"""Tests for the LRU-tiered history store and its per-series views."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import HistoryStoreError
from repro.history import (
    JsonlStateStore,
    MemoryStateStore,
    PackedHistoryStore,
    SqliteStateStore,
    TieredHistoryStore,
)
from repro.obs import MetricsRegistry
from repro.voting.history import HistoryRecords


def _tiered(hot=4, **kwargs):
    return TieredHistoryStore(MemoryStateStore(), hot_series=hot, **kwargs)


class TestHotSet:
    def test_hot_set_never_exceeds_capacity(self):
        store = _tiered(hot=3)
        for k in range(10):
            store.put_state(f"s{k}", {"E1": 0.5}, k)
        assert store.hot_size == 3
        assert store.evictions == 7

    def test_unbounded_keeps_everything_resident(self):
        store = _tiered(hot=None)
        for k in range(100):
            store.put_state(f"s{k}", {"E1": 0.5}, k)
        assert store.hot_size == 100
        assert store.evictions == 0

    def test_lru_order_evicts_least_recently_used(self):
        store = _tiered(hot=2)
        store.put_state("a", {"E1": 0.1}, 1)
        store.put_state("b", {"E1": 0.2}, 2)
        assert store.get_state("a") is not None  # touch: a becomes MRU
        store.put_state("c", {"E1": 0.3}, 3)  # b is the LRU now
        assert set(store._hot) == {"a", "c"}

    def test_eviction_writes_back_dirty_state(self):
        backing = MemoryStateStore()
        store = TieredHistoryStore(backing, hot_series=1, flush_every=100)
        store.put_state("a", {"E1": 0.1}, 1)
        assert backing.read("a") is None  # batched: not yet flushed
        store.put_state("b", {"E1": 0.2}, 2)  # evicts a -> write-back
        assert backing.read("a") == ({"E1": 0.1}, 1)

    def test_rehydration_counts_and_restores(self):
        store = _tiered(hot=1)
        store.put_state("a", {"E1": 0.1}, 5)
        store.put_state("b", {"E1": 0.2}, 6)  # evicts a
        assert store.get_state("a") == ({"E1": 0.1}, 5)
        assert store.rehydrations == 1

    def test_write_through_is_immediately_durable(self):
        backing = MemoryStateStore()
        store = TieredHistoryStore(backing, hot_series=8, flush_every=1)
        store.put_state("a", {"E1": 0.1}, 1)
        assert backing.read("a") == ({"E1": 0.1}, 1)
        assert store.dirty_count == 0

    def test_flush_every_batches_writes(self):
        backing = MemoryStateStore()
        store = TieredHistoryStore(backing, hot_series=8, flush_every=3)
        store.put_state("a", {"E1": 0.1}, 1)
        store.put_state("a", {"E1": 0.2}, 2)
        assert backing.read("a") is None
        store.put_state("a", {"E1": 0.3}, 3)  # third save flushes
        assert backing.read("a") == ({"E1": 0.3}, 3)

    def test_explicit_flush_and_evict(self):
        backing = MemoryStateStore()
        store = TieredHistoryStore(backing, hot_series=8, flush_every=100)
        store.put_state("a", {"E1": 0.1}, 1)
        store.flush()
        assert backing.read("a") == ({"E1": 0.1}, 1)
        assert store.evict("a") == 1
        assert store.hot_size == 0
        assert store.evict("missing") == 0
        store.put_state("b", {"E1": 0.2}, 2)
        assert store.evict() == 1  # evict-all

    def test_close_flushes_dirty_state(self):
        backing = MemoryStateStore()
        store = TieredHistoryStore(backing, hot_series=8, flush_every=100)
        store.put_state("a", {"E1": 0.1}, 1)
        store.close()
        assert backing.read("a") == ({"E1": 0.1}, 1)

    def test_delete_and_series_union(self):
        store = _tiered(hot=1, flush_every=100)
        store.put_state("a", {"E1": 0.1}, 1)  # flushed on eviction...
        store.put_state("b", {"E1": 0.2}, 2)  # ...b stays dirty in hot
        assert store.series() == ("a", "b")
        assert "a" in store and "b" in store
        store.delete("a")
        assert store.series() == ("b",)
        store.clear()
        assert store.series() == ()

    def test_validation(self):
        with pytest.raises(HistoryStoreError):
            _tiered(hot=0)
        with pytest.raises(HistoryStoreError):
            _tiered(hot=4, flush_every=0)
        with pytest.raises(HistoryStoreError):
            _tiered(hot=4, maintenance_interval=-1.0)

    def test_metrics_are_registered(self):
        registry = MetricsRegistry()
        store = TieredHistoryStore(
            MemoryStateStore(), hot_series=1, registry=registry
        )
        store.put_state("a", {"E1": 0.1}, 1)
        store.put_state("b", {"E1": 0.2}, 2)
        store.get_state("a")  # rehydrating a evicts b: 2 evictions total
        rendered = registry.render()
        assert "store_evictions_total 2" in rendered
        assert "store_rehydrations_total 1" in rendered
        assert "store_hot_series 1" in rendered


class TestMaintenance:
    def test_background_thread_compacts_and_runs_hook(self, tmp_path):
        calls = []
        store = TieredHistoryStore(
            PackedHistoryStore(tmp_path, segment_bytes=4096),
            hot_series=4,
            maintenance_interval=0.02,
            maintenance_hook=lambda: calls.append(1),
        )
        for k in range(40):
            store.put_state(f"s{k % 5}", {"E1": k / 40}, k)
        deadline = __import__("time").time() + 2.0
        while not calls and __import__("time").time() < deadline:
            __import__("time").sleep(0.01)
        store.close()
        assert calls  # the hook ran at least once
        assert store.backing.compactions >= 1


class TestBitIdentity:
    """Evict/rehydrate must be invisible to the voting recurrence."""

    @pytest.mark.parametrize("policy", ["additive", "ema"])
    def test_random_trace_matches_in_memory_reference(self, tmp_path, policy):
        backings = {
            "memory": MemoryStateStore(),
            "packed": PackedHistoryStore(tmp_path / "p", segment_bytes=4096),
            "sqlite": SqliteStateStore(tmp_path / "s.db"),
        }
        rng = random.Random(31)
        for name, backing in backings.items():
            store = TieredHistoryStore(backing, hot_series=2)
            references = {f"s{k}": HistoryRecords(policy=policy)
                          for k in range(8)}
            for round_no in range(25):
                for key, reference in references.items():
                    live = HistoryRecords(
                        policy=policy, store=store.store_for(key)
                    )
                    scores = {
                        m: rng.random() for m in ("E1", "E2", "E3")
                        if rng.random() > 0.2
                    }
                    live.update(scores)
                    reference.update(scores)
                    assert live.snapshot() == reference.snapshot(), name
                    assert live.update_count == reference.update_count, name
            assert store.evictions > 0 and store.rehydrations > 0
            store.close()

    def test_jsonl_backing_restores_records_only(self, tmp_path):
        """The legacy line format has no update counter: records round-
        trip, the counter restarts at 0 — same as a restarted shard."""
        store = TieredHistoryStore(
            JsonlStateStore(tmp_path), hot_series=1
        )
        h = HistoryRecords(store=store.store_for("a"))
        h.update({"E1": 0.4})
        h.update({"E1": 0.9})
        snapshot = h.snapshot()
        store.evict()
        rehydrated = HistoryRecords(store=store.store_for("a"))
        assert rehydrated.snapshot() == snapshot
        assert rehydrated.update_count == 0
        store.close()


class TestSeriesViews:
    def test_legacy_load_save_protocol(self):
        store = _tiered(hot=4)
        view = store.store_for("a")
        assert view.load() == {}
        view.save({"E1": 0.5})
        assert view.load() == {"E1": 0.5}
        assert store.get_state("a") == ({"E1": 0.5}, 0)
        view.save_state({"E1": 0.25}, 9)
        assert view.load_state() == ({"E1": 0.25}, 9)
        view.save({"E1": 0.75})  # legacy save keeps the counter
        assert view.load_state() == ({"E1": 0.75}, 9)
        view.clear()
        assert view.load_state() is None
