"""Tests for the packed mmap-segment bulk store."""

from __future__ import annotations

import json
import random

import pytest

from repro.exceptions import HistoryStoreError
from repro.history.packed import (
    PackedHistoryStore,
    _decode_block,
    _encode_block,
)


def _fill(store, n=20, updates=7):
    for k in range(n):
        store.write(f"s{k}", {"E1": 0.5 + k / 100, "E2": 0.25}, updates + k)


class TestBlockCodec:
    def test_round_trip(self):
        block = _encode_block("series-a", {"E1": 0.5, "E2": 1.0}, 42)
        series, records, updates = _decode_block(block, 0, len(block))
        assert series == "series-a"
        assert records == {"E1": 0.5, "E2": 1.0}
        assert updates == 42

    def test_empty_records(self):
        block = _encode_block("s", {}, 0)
        assert _decode_block(block, 0, len(block)) == ("s", {}, 0)

    def test_corrupt_payload_is_detected(self):
        block = bytearray(_encode_block("s", {"E1": 0.5}, 1))
        block[-1] ^= 0xFF
        with pytest.raises(HistoryStoreError):
            _decode_block(bytes(block), 0, len(block))

    def test_bad_magic_is_detected(self):
        block = bytearray(_encode_block("s", {"E1": 0.5}, 1))
        block[0] ^= 0xFF
        with pytest.raises(HistoryStoreError):
            _decode_block(bytes(block), 0, len(block))

    def test_truncated_block_is_detected(self):
        block = _encode_block("s", {"E1": 0.5}, 1)
        with pytest.raises(HistoryStoreError):
            _decode_block(block[:-3], 0, len(block))


class TestRoundTrip:
    def test_missing_series_reads_none(self, tmp_path):
        store = PackedHistoryStore(tmp_path)
        assert store.read("nope") is None

    def test_write_then_read(self, tmp_path):
        store = PackedHistoryStore(tmp_path)
        store.write("s", {"E1": 0.5}, 3)
        assert store.read("s") == ({"E1": 0.5}, 3)

    def test_last_write_wins(self, tmp_path):
        store = PackedHistoryStore(tmp_path)
        store.write("s", {"E1": 0.5}, 1)
        store.write("s", {"E1": 0.25}, 2)
        assert store.read("s") == ({"E1": 0.25}, 2)

    def test_survives_process_restart(self, tmp_path):
        with PackedHistoryStore(tmp_path) as store:
            _fill(store, n=10)
        reopened = PackedHistoryStore(tmp_path)
        assert len(reopened) == 10
        assert reopened.read("s3") == ({"E1": 0.53, "E2": 0.25}, 10)
        reopened.close()

    def test_delete_survives_restart(self, tmp_path):
        with PackedHistoryStore(tmp_path) as store:
            _fill(store, n=4)
            store.delete("s1")
            assert store.read("s1") is None
        reopened = PackedHistoryStore(tmp_path)
        assert reopened.read("s1") is None
        assert reopened.read("s2") is not None
        reopened.close()

    def test_series_enumeration(self, tmp_path):
        store = PackedHistoryStore(tmp_path)
        _fill(store, n=3)
        assert store.series() == ("s0", "s1", "s2")
        assert "s1" in store and "nope" not in store

    def test_rejects_tiny_segments(self, tmp_path):
        with pytest.raises(HistoryStoreError):
            PackedHistoryStore(tmp_path, segment_bytes=100)

    def test_closed_store_refuses_writes(self, tmp_path):
        store = PackedHistoryStore(tmp_path)
        store.close()
        with pytest.raises(HistoryStoreError):
            store.write("s", {"E1": 0.5}, 1)

    def test_clear_wipes_disk(self, tmp_path):
        store = PackedHistoryStore(tmp_path)
        _fill(store, n=5)
        store.clear()
        assert len(store) == 0
        assert not list(tmp_path.glob("seg-*.pack"))
        store.write("s", {"E1": 0.5}, 1)  # usable again after clear
        assert store.read("s") == ({"E1": 0.5}, 1)


class TestSegments:
    def test_rollover_spreads_blocks_across_segments(self, tmp_path):
        store = PackedHistoryStore(tmp_path, segment_bytes=4096)
        _fill(store, n=200)
        assert store.segment_count > 1
        assert all(store.read(f"s{k}") is not None for k in range(200))

    def test_dead_bytes_accumulate_on_overwrite(self, tmp_path):
        store = PackedHistoryStore(
            tmp_path, segment_bytes=1 << 20, compact_dead_fraction=None
        )
        _fill(store, n=50)
        assert store.dead_bytes == 0
        _fill(store, n=50, updates=100)
        assert store.dead_bytes > 0
        assert store.live_bytes + store.dead_bytes == store.total_bytes

    def test_compaction_reclaims_dead_space(self, tmp_path):
        store = PackedHistoryStore(
            tmp_path, segment_bytes=4096, compact_dead_fraction=None
        )
        for _ in range(5):
            _fill(store, n=40)
        before = store.read("s7")
        store.compact()
        assert store.dead_bytes == 0
        assert store.compactions == 1
        assert store.last_compaction_seconds >= 0.0
        assert store.read("s7") == before
        reopened = PackedHistoryStore(tmp_path)
        assert reopened.read("s7") == before
        reopened.close()

    def test_auto_compaction_triggers_on_dead_fraction(self, tmp_path):
        store = PackedHistoryStore(
            tmp_path,
            segment_bytes=4096,
            compact_dead_fraction=0.5,
            compact_min_bytes=1024,
        )
        for _ in range(10):
            _fill(store, n=30)
        assert store.compactions >= 1
        assert all(store.read(f"s{k}") is not None for k in range(30))


class TestCrashRecovery:
    def test_truncated_segment_tail_falls_back(self, tmp_path):
        """A torn final block yields the previous durable state."""
        store = PackedHistoryStore(tmp_path, compact_dead_fraction=None)
        store.write("s", {"E1": 0.5}, 1)
        store.write("s", {"E1": 0.25}, 2)
        store.close()
        seg = next(tmp_path.glob("seg-*.pack"))
        data = seg.read_bytes()
        seg.write_bytes(data[:-10])  # tear the tail mid-block
        reopened = PackedHistoryStore(tmp_path)
        assert reopened.read("s") == ({"E1": 0.5}, 1)
        reopened.close()

    def test_garbage_segment_tail_is_ignored(self, tmp_path):
        """Unindexed junk appended to a segment is plain dead space."""
        store = PackedHistoryStore(tmp_path)
        _fill(store, n=5)
        store.close()
        seg = sorted(tmp_path.glob("seg-*.pack"))[-1]
        with open(seg, "ab") as handle:
            handle.write(b"\x00garbage\xff" * 7)
        reopened = PackedHistoryStore(tmp_path)
        assert len(reopened) == 5
        assert reopened.read("s4") == ({"E1": 0.54, "E2": 0.25}, 11)
        reopened.write("after", {"E1": 1.0}, 1)  # still writable
        assert reopened.read("after") == ({"E1": 1.0}, 1)
        reopened.close()

    def test_corrupt_block_falls_back_to_stale_entry(self, tmp_path):
        """Disk corruption in the latest block reads the previous one."""
        store = PackedHistoryStore(
            tmp_path, segment_bytes=1 << 20, compact_dead_fraction=None
        )
        store.write("s", {"E1": 0.5}, 1)
        store.write("s", {"E1": 0.25}, 2)
        entry = store._entries["s"]
        store.close()
        seg = tmp_path / f"seg-{entry.segment:06d}.pack"
        data = bytearray(seg.read_bytes())
        data[entry.offset + 12] ^= 0xFF  # flip a payload byte in place
        seg.write_bytes(bytes(data))
        reopened = PackedHistoryStore(tmp_path)
        assert reopened.read("s") == ({"E1": 0.5}, 1)
        reopened.close()

    def test_torn_index_line_is_skipped(self, tmp_path):
        store = PackedHistoryStore(tmp_path)
        store.write("a", {"E1": 0.5}, 1)
        store.write("b", {"E1": 0.75}, 2)
        store.close()
        index = tmp_path / "index.jsonl"
        text = index.read_text()
        index.write_text(text[: len(text) - 8])  # tear the final line
        reopened = PackedHistoryStore(tmp_path)
        assert reopened.read("a") == ({"E1": 0.5}, 1)
        assert reopened.read("b") is None  # its entry was torn away
        reopened.close()

    def test_garbage_index_lines_are_skipped(self, tmp_path):
        store = PackedHistoryStore(tmp_path)
        store.write("a", {"E1": 0.5}, 1)
        store.close()
        index = tmp_path / "index.jsonl"
        with open(index, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"k": "ghost", "s": 99, "o": 0, "l": 64}\n')
            handle.write(json.dumps({"k": "short"}) + "\n")
        reopened = PackedHistoryStore(tmp_path)
        assert reopened.series() == ("a",)
        assert reopened.read("a") == ({"E1": 0.5}, 1)
        reopened.close()

    def test_crash_before_compacted_index_rewrite(self, tmp_path, monkeypatch):
        """Dying after re-appending blocks but before the index rewrite
        leaves the appended index lines — still fully loadable."""
        store = PackedHistoryStore(tmp_path, segment_bytes=4096,
                                   compact_dead_fraction=None)
        for _ in range(4):
            _fill(store, n=30)
        expected = {f"s{k}": store.read(f"s{k}") for k in range(30)}

        import repro.history.packed as packed_module

        def boom(path, data):
            raise OSError("simulated crash during index rewrite")

        monkeypatch.setattr(packed_module, "atomic_write", boom)
        with pytest.raises(OSError):
            store.compact()
        monkeypatch.undo()
        store.close()
        reopened = PackedHistoryStore(tmp_path)
        assert {k: reopened.read(k) for k in expected} == expected
        reopened.close()

    def test_crash_before_dead_segment_unlink(self, tmp_path, monkeypatch):
        """Dying after the index rewrite but before unlinking dead
        segments leaves orphan files the next compaction reclaims."""
        store = PackedHistoryStore(tmp_path, segment_bytes=4096,
                                   compact_dead_fraction=None)
        for _ in range(4):
            _fill(store, n=30)
        expected = {f"s{k}": store.read(f"s{k}") for k in range(30)}
        monkeypatch.setattr(
            "pathlib.Path.unlink",
            lambda self, missing_ok=False: (_ for _ in ()).throw(
                OSError("simulated crash")
            ),
        )
        store.compact()  # unlink failures are swallowed by design
        monkeypatch.undo()
        store.close()
        reopened = PackedHistoryStore(tmp_path)
        assert {k: reopened.read(k) for k in expected} == expected
        reopened.compact()  # the orphan segments are reclaimable
        assert reopened.dead_bytes == 0
        reopened.close()

    def test_random_tail_truncation_fuzz(self, tmp_path):
        """Any torn tail leaves a loadable store returning only states
        that were actually written at some point."""
        rng = random.Random(8)
        written = {}
        with PackedHistoryStore(tmp_path / "f",
                                segment_bytes=4096) as store:
            for k in range(120):
                key = f"s{k % 17}"
                state = ({"E1": rng.random(), "E2": rng.random()}, k)
                store.write(key, *state)
                written.setdefault(key, []).append(state)
        index = tmp_path / "f" / "index.jsonl"
        index.write_text(index.read_text()[: rng.randrange(40, 400)])
        reopened = PackedHistoryStore(tmp_path / "f")
        for key in reopened.series():
            state = reopened.read(key)
            if state is not None:
                assert state in written[key]
        reopened.close()
