"""Tests for the in-memory history store."""

from __future__ import annotations

from repro.history.memory import MemoryHistoryStore


class TestMemoryStore:
    def test_empty_load(self):
        assert MemoryHistoryStore().load() == {}

    def test_save_then_load(self):
        store = MemoryHistoryStore()
        store.save({"E1": 0.5, "E2": 1.0})
        assert store.load() == {"E1": 0.5, "E2": 1.0}

    def test_save_replaces_snapshot(self):
        store = MemoryHistoryStore()
        store.save({"E1": 0.5})
        store.save({"E2": 0.7})
        assert store.load() == {"E2": 0.7}

    def test_load_returns_copy(self):
        store = MemoryHistoryStore()
        store.save({"E1": 0.5})
        snapshot = store.load()
        snapshot["E1"] = 99.0
        assert store.load()["E1"] == 0.5

    def test_clear(self):
        store = MemoryHistoryStore()
        store.save({"E1": 0.5})
        store.clear()
        assert store.load() == {}

    def test_counters(self):
        store = MemoryHistoryStore()
        store.save({})
        store.load()
        store.load()
        assert store.save_count == 1
        assert store.load_count == 2
