"""Tests for the JSONL history store."""

from __future__ import annotations


import pytest

from repro.exceptions import HistoryStoreError
from repro.history.file import JsonlHistoryStore


class TestRoundTrip:
    def test_missing_file_loads_empty(self, tmp_path):
        store = JsonlHistoryStore(tmp_path / "h.jsonl")
        assert store.load() == {}

    def test_save_then_load(self, tmp_path):
        store = JsonlHistoryStore(tmp_path / "h.jsonl")
        store.save({"E1": 0.5})
        assert store.load() == {"E1": 0.5}

    def test_last_snapshot_wins(self, tmp_path):
        store = JsonlHistoryStore(tmp_path / "h.jsonl")
        store.save({"E1": 0.5})
        store.save({"E1": 0.25})
        assert store.load() == {"E1": 0.25}
        assert store.snapshot_count() == 2

    def test_survives_process_restart(self, tmp_path):
        path = tmp_path / "h.jsonl"
        JsonlHistoryStore(path).save({"E1": 0.3})
        assert JsonlHistoryStore(path).load() == {"E1": 0.3}

    def test_creates_parent_directories(self, tmp_path):
        store = JsonlHistoryStore(tmp_path / "deep" / "nested" / "h.jsonl")
        store.save({"a": 1.0})
        assert store.load() == {"a": 1.0}


class TestCrashSafety:
    def test_torn_trailing_line_ignored(self, tmp_path):
        path = tmp_path / "h.jsonl"
        store = JsonlHistoryStore(path)
        store.save({"E1": 0.5})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"E1": 0.2')  # simulated crash mid-write
        assert store.load() == {"E1": 0.5}

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('\n{"E1": 0.4}\n\n')
        assert JsonlHistoryStore(path).load() == {"E1": 0.4}


class TestCompaction:
    def test_manual_compact_keeps_latest(self, tmp_path):
        store = JsonlHistoryStore(tmp_path / "h.jsonl", compact_after=None)
        for i in range(5):
            store.save({"E1": i / 10})
        store.compact()
        assert store.snapshot_count() == 1
        assert store.load() == {"E1": 0.4}

    def test_auto_compaction_bounds_log_size(self, tmp_path):
        store = JsonlHistoryStore(tmp_path / "h.jsonl", compact_after=10)
        for i in range(25):
            store.save({"E1": i / 100})
        assert store.snapshot_count() <= 10
        assert store.load() == {"E1": 0.24}

    def test_invalid_compact_after(self, tmp_path):
        with pytest.raises(HistoryStoreError):
            JsonlHistoryStore(tmp_path / "h.jsonl", compact_after=0)


class TestClear:
    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "h.jsonl"
        store = JsonlHistoryStore(path)
        store.save({"a": 1.0})
        store.clear()
        assert not path.exists()
        assert store.load() == {}

    def test_clear_missing_file_is_noop(self, tmp_path):
        JsonlHistoryStore(tmp_path / "h.jsonl").clear()


class TestVoterIntegration:
    def test_voter_history_survives_restart(self, tmp_path):
        from repro.voting.standard import StandardVoter

        path = tmp_path / "h.jsonl"
        voter = StandardVoter(history_store=JsonlHistoryStore(path))
        for i in range(5):
            voter.vote_values([1.0, 1.0, 9.0], round_number=i)
        record = voter.history.get("E3")
        revived = StandardVoter(history_store=JsonlHistoryStore(path))
        assert revived.history.get("E3") == pytest.approx(record)
