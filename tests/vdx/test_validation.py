"""Tests for VDX document validation."""

from __future__ import annotations

import pytest

from repro.exceptions import SpecificationError
from repro.vdx.validation import validate_document


def valid_doc(**overrides):
    doc = {
        "algorithm_name": "AVOC",
        "quorum": "UNTIL",
        "quorum_percentage": 100,
        "exclusion": "NONE",
        "exclusion_threshold": 0,
        "history": "HYBRID",
        "params": {"error": 0.05, "soft_threshold": 2},
        "collation": "MEAN_NEAREST_NEIGHBOR",
        "bootstrapping": True,
    }
    doc.update(overrides)
    return doc


class TestFieldValidation:
    def test_listing1_validates(self):
        validate_document(valid_doc())

    def test_non_dict_rejected(self):
        with pytest.raises(SpecificationError):
            validate_document(["not", "a", "dict"])

    def test_missing_algorithm_name(self):
        doc = valid_doc()
        del doc["algorithm_name"]
        with pytest.raises(SpecificationError, match="algorithm_name"):
            validate_document(doc)

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecificationError, match="unknown field"):
            validate_document(valid_doc(extra_field=1))

    def test_bad_enum_value(self):
        with pytest.raises(SpecificationError, match="quorum"):
            validate_document(valid_doc(quorum="WHENEVER"))

    def test_bad_type(self):
        with pytest.raises(SpecificationError, match="quorum_percentage"):
            validate_document(valid_doc(quorum_percentage="all"))

    def test_out_of_range_percentage(self):
        with pytest.raises(SpecificationError, match="maximum"):
            validate_document(valid_doc(quorum_percentage=150))

    def test_unknown_param_rejected(self):
        with pytest.raises(SpecificationError, match="params.magic"):
            validate_document(valid_doc(params={"magic": 1}))

    def test_nonpositive_error_rejected(self):
        with pytest.raises(SpecificationError, match="params.error"):
            validate_document(valid_doc(params={"error": 0}))

    def test_params_must_be_object(self):
        with pytest.raises(SpecificationError, match="params"):
            validate_document(valid_doc(params=[1, 2]))

    def test_all_problems_reported_together(self):
        doc = valid_doc(quorum="WHENEVER", collation="MODE")
        with pytest.raises(SpecificationError) as excinfo:
            validate_document(doc)
        assert len(excinfo.value.problems) >= 2


class TestCategoricalRules:
    def categorical_doc(self, **overrides):
        doc = valid_doc(
            value_type="CATEGORICAL",
            history="STANDARD",
            collation="WEIGHTED_MAJORITY",
            bootstrapping=False,
        )
        doc.update(overrides)
        return doc

    def test_valid_categorical(self):
        validate_document(self.categorical_doc())

    def test_hybrid_history_rejected(self):
        with pytest.raises(SpecificationError, match="HYBRID"):
            validate_document(self.categorical_doc(history="HYBRID"))

    def test_sdt_history_rejected(self):
        with pytest.raises(SpecificationError, match="SDT"):
            validate_document(self.categorical_doc(history="SDT"))

    def test_bootstrap_rejected(self):
        with pytest.raises(SpecificationError, match="bootstrapping"):
            validate_document(self.categorical_doc(bootstrapping=True))

    def test_value_exclusion_rejected(self):
        with pytest.raises(SpecificationError, match="exclusion"):
            validate_document(
                self.categorical_doc(exclusion="DEVIATION", exclusion_threshold=2)
            )

    def test_non_majority_collation_rejected(self):
        with pytest.raises(SpecificationError, match="WEIGHTED_MAJORITY"):
            validate_document(self.categorical_doc(collation="MEAN"))

    def test_numeric_cannot_use_weighted_majority(self):
        with pytest.raises(SpecificationError, match="reserved"):
            validate_document(valid_doc(collation="WEIGHTED_MAJORITY"))


class TestCrossFieldRules:
    def test_until_quorum_requires_positive_percentage(self):
        with pytest.raises(SpecificationError, match="quorum_percentage"):
            validate_document(valid_doc(quorum="UNTIL", quorum_percentage=0))

    def test_exclusion_requires_positive_threshold(self):
        with pytest.raises(SpecificationError, match="exclusion_threshold"):
            validate_document(valid_doc(exclusion="DEVIATION", exclusion_threshold=0))
