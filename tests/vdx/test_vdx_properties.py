"""Property-based tests for VDX: any valid document survives the
parse → serialise → parse → build pipeline."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.types import Round
from repro.vdx.factory import build_voter
from repro.vdx.spec import VotingSpec

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_ ",
    min_size=1,
    max_size=30,
)


@st.composite
def numeric_documents(draw):
    """Valid NUMERIC VDX documents covering the whole feature space."""
    quorum = draw(st.sampled_from(["NONE", "ANY", "UNTIL"]))
    exclusion = draw(st.sampled_from(["NONE", "DEVIATION", "RANGE"]))
    doc = {
        "algorithm_name": draw(_names),
        "quorum": quorum,
        "exclusion": exclusion,
        "history": draw(st.sampled_from(["NONE", "STANDARD", "ME", "SDT",
                                         "HYBRID"])),
        "collation": draw(
            st.sampled_from(["MEAN", "MEDIAN", "MEAN_NEAREST_NEIGHBOR"])
        ),
        "bootstrapping": draw(st.booleans()),
        "params": {
            "error": draw(
                st.floats(min_value=0.001, max_value=0.5, allow_nan=False)
            ),
            "soft_threshold": draw(
                st.floats(min_value=1.0, max_value=10.0, allow_nan=False)
            ),
        },
    }
    if quorum == "UNTIL":
        doc["quorum_percentage"] = draw(
            st.floats(min_value=1.0, max_value=100.0, allow_nan=False)
        )
    if exclusion != "NONE":
        doc["exclusion_threshold"] = draw(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False)
        )
    return doc


@st.composite
def categorical_documents(draw):
    """Valid CATEGORICAL documents (the §6 restrictions baked in)."""
    return {
        "algorithm_name": draw(_names),
        "history": draw(st.sampled_from(["NONE", "STANDARD", "ME"])),
        "collation": "WEIGHTED_MAJORITY",
        "value_type": "CATEGORICAL",
    }


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(doc=numeric_documents())
    def test_parse_serialise_parse_is_identity(self, doc):
        spec = VotingSpec.from_dict(doc)
        assert VotingSpec.from_json(spec.to_json()) == spec

    @settings(max_examples=60, deadline=None)
    @given(doc=numeric_documents())
    def test_every_valid_numeric_document_builds_a_working_voter(self, doc):
        voter = build_voter(VotingSpec.from_dict(doc))
        outcome = voter.vote(Round.from_values(0, [18.0, 18.1, 17.9, 18.05]))
        # Full submission: quorum is always satisfiable, so a value must
        # come out and lie within the candidate range.
        assert outcome.value is not None
        assert 17.9 - 1e-9 <= outcome.value <= 18.1 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(doc=categorical_documents())
    def test_every_valid_categorical_document_builds_a_voter(self, doc):
        voter = build_voter(VotingSpec.from_dict(doc))
        outcome = voter.vote(Round.from_values(0, ["up", "up", "down"]))
        assert outcome.value == "up"

    @settings(max_examples=40, deadline=None)
    @given(doc=numeric_documents())
    def test_with_overrides_preserves_validity(self, doc):
        spec = VotingSpec.from_dict(doc)
        derived = spec.with_overrides(algorithm_name="derived")
        assert derived.algorithm_name == "derived"
        assert derived.history == spec.history
