"""Tests for building voters and engines from VDX specifications."""

from __future__ import annotations

import pytest

from repro.history.memory import MemoryHistoryStore
from repro.types import Round
from repro.vdx.examples import (
    AVOC_SPEC,
    CATEGORICAL_SPEC,
    CLUSTERING_SPEC,
    HYBRID_SPEC,
    ME_SPEC,
    SDT_SPEC,
    STANDARD_SPEC,
    STATELESS_MEAN_SPEC,
)
from repro.vdx.factory import build_engine, build_voter
from repro.vdx.spec import VotingSpec
from repro.voting.avoc import AvocVoter
from repro.voting.categorical import CategoricalMajorityVoter
from repro.voting.clustering_voter import ClusteringOnlyVoter
from repro.voting.hybrid import HybridVoter
from repro.voting.module_elimination import ModuleEliminationVoter
from repro.voting.soft_dynamic import SoftDynamicThresholdVoter
from repro.voting.standard import StandardVoter
from repro.voting.stateless import CollationVoter


class TestVoterMapping:
    @pytest.mark.parametrize(
        "spec,cls",
        [
            (AVOC_SPEC, AvocVoter),
            (HYBRID_SPEC, HybridVoter),
            (STANDARD_SPEC, StandardVoter),
            (ME_SPEC, ModuleEliminationVoter),
            (SDT_SPEC, SoftDynamicThresholdVoter),
            (CLUSTERING_SPEC, ClusteringOnlyVoter),
            (STATELESS_MEAN_SPEC, CollationVoter),
            (CATEGORICAL_SPEC, CategoricalMajorityVoter),
        ],
    )
    def test_spec_builds_expected_class(self, spec, cls):
        assert isinstance(build_voter(spec), cls)

    def test_spec_params_override_defaults(self):
        spec = AVOC_SPEC.with_overrides(params={"error": 0.12})
        voter = build_voter(spec)
        assert voter.params.error == 0.12

    def test_unpinned_params_fall_back_to_algorithm_defaults(self):
        # Listing 1 does not pin a learning rate; the built AVOC voter
        # must use AvocVoter's own default, not the schema default.
        voter = build_voter(AVOC_SPEC)
        assert voter.params.learning_rate == AvocVoter.default_params().learning_rate

    def test_quorum_left_to_engine(self):
        # The spec's quorum is no longer baked into the voter params —
        # the engine-level QuorumRule is the single enforcement point.
        voter = build_voter(AVOC_SPEC)
        assert voter.params.quorum_percentage == 0.0
        engine = build_engine(AVOC_SPEC)
        assert engine.quorum.mode == AVOC_SPEC.quorum
        assert engine.quorum.percentage == AVOC_SPEC.quorum_percentage

    def test_history_store_forwarded(self):
        store = MemoryHistoryStore()
        voter = build_voter(STANDARD_SPEC, history_store=store)
        voter.vote_values([1.0, 1.0, 5.0])
        assert store.save_count == 1

    def test_categorical_history_mode_mapping(self):
        voter = build_voter(CATEGORICAL_SPEC)
        assert voter.history_mode == "me"

    def test_built_avoc_behaves_like_paper(self):
        voter = build_voter(AVOC_SPEC)
        outcome = voter.vote(Round.from_values(0, [18.0, 18.1, 17.9, 24.0, 18.05]))
        assert outcome.used_bootstrap
        assert "E4" in outcome.eliminated


class TestEngineBuilding:
    def test_engine_wires_quorum_and_exclusion(self):
        spec = VotingSpec.from_dict(
            {
                "algorithm_name": "pruned",
                "quorum": "UNTIL",
                "quorum_percentage": 60,
                "exclusion": "DEVIATION",
                "exclusion_threshold": 2.0,
                "history": "STANDARD",
                "collation": "MEAN",
            }
        )
        engine = build_engine(spec)
        assert engine.quorum.mode == "UNTIL"
        assert engine.quorum.percentage == 60
        assert engine.exclusion == "DEVIATION"

    def test_engine_processes_rounds(self):
        engine = build_engine(AVOC_SPEC)
        result = engine.process(Round.from_values(0, [1.0, 1.0, 1.0]))
        assert result.ok
        assert result.value == 1.0
