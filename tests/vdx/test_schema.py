"""Tests for the declarative VDX schema."""

from __future__ import annotations

from repro.vdx.schema import (
    COLLATION_MODES,
    EXCLUSION_MODES,
    FIELDS,
    HISTORY_MODES,
    PARAM_FIELDS,
    QUORUM_MODES,
    defaults,
    describe,
    field_names,
)


class TestSchemaContents:
    def test_listing1_fields_all_present(self):
        names = field_names()
        for key in (
            "algorithm_name",
            "quorum",
            "quorum_percentage",
            "exclusion",
            "exclusion_threshold",
            "history",
            "params",
            "collation",
            "bootstrapping",
        ):
            assert key in names

    def test_history_modes_cover_paper_algorithms(self):
        assert set(HISTORY_MODES) == {
            "NONE",
            "STANDARD",
            "ME",
            "SDT",
            "HYBRID",
            "INCOHERENCE",
        }

    def test_collation_modes(self):
        assert "MEAN_NEAREST_NEIGHBOR" in COLLATION_MODES
        assert "WEIGHTED_MAJORITY" in COLLATION_MODES
        assert "PROBABILISTIC_MAJORITY" in COLLATION_MODES

    def test_only_algorithm_name_required(self):
        required = [f.name for f in FIELDS if f.required]
        assert required == ["algorithm_name"]

    def test_defaults_complete(self):
        doc = defaults()
        assert doc["quorum"] == "NONE"
        assert doc["params"]["error"] == 0.05
        assert doc["params"]["soft_threshold"] == 2

    def test_param_fields_have_docs(self):
        assert all(p.doc for p in PARAM_FIELDS)

    def test_describe_mentions_every_field(self):
        text = describe()
        for f in FIELDS:
            assert f.name in text
        for mode in QUORUM_MODES + EXCLUSION_MODES:
            assert mode in text
