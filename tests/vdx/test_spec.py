"""Tests for VotingSpec parsing and serialisation."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import SpecificationError
from repro.vdx.examples import LISTING_1
from repro.vdx.spec import VotingSpec


class TestParsing:
    def test_listing1_round_trip(self):
        spec = VotingSpec.from_dict(LISTING_1)
        assert spec.algorithm_name == "AVOC"
        assert spec.quorum == "UNTIL"
        assert spec.history == "HYBRID"
        assert spec.collation == "MEAN_NEAREST_NEIGHBOR"
        assert spec.bootstrapping is True
        assert spec.error == 0.05
        assert spec.soft_threshold == 2

    def test_enums_normalised_to_upper(self):
        spec = VotingSpec.from_dict(
            {"algorithm_name": "x", "history": "hybrid", "collation": "mean"}
        )
        assert spec.history == "HYBRID"
        assert spec.collation == "MEAN"

    def test_explicit_params_preserved_defaults_not_injected(self):
        spec = VotingSpec.from_dict({"algorithm_name": "x"})
        assert spec.params == {}
        assert spec.effective_params["error"] == 0.05

    def test_from_json(self):
        spec = VotingSpec.from_json(json.dumps(LISTING_1))
        assert spec.algorithm_name == "AVOC"

    def test_invalid_json_raises_specification_error(self):
        with pytest.raises(SpecificationError, match="invalid JSON"):
            VotingSpec.from_json("{not json")

    def test_invalid_document_raises(self):
        with pytest.raises(SpecificationError):
            VotingSpec.from_dict({"algorithm_name": "x", "history": "WRONG"})


class TestSerialisation:
    def test_dict_round_trip(self):
        spec = VotingSpec.from_dict(LISTING_1)
        again = VotingSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_json_round_trip(self):
        spec = VotingSpec.from_dict(LISTING_1)
        again = VotingSpec.from_json(spec.to_json())
        assert again == spec

    def test_file_round_trip(self, tmp_path):
        spec = VotingSpec.from_dict(LISTING_1)
        path = tmp_path / "avoc.vdx.json"
        spec.save(path)
        assert VotingSpec.from_file(path) == spec


class TestOverrides:
    def test_with_overrides_replaces_field(self):
        spec = VotingSpec.from_dict(LISTING_1)
        derived = spec.with_overrides(bootstrapping=False)
        assert derived.bootstrapping is False
        assert spec.bootstrapping is True

    def test_with_overrides_merges_params(self):
        spec = VotingSpec.from_dict(LISTING_1)
        derived = spec.with_overrides(params={"error": 0.1})
        assert derived.error == 0.1
        assert derived.soft_threshold == 2  # kept from original

    def test_with_overrides_revalidates(self):
        spec = VotingSpec.from_dict(LISTING_1)
        with pytest.raises(SpecificationError):
            spec.with_overrides(collation="WEIGHTED_MAJORITY")

    def test_immutability(self):
        spec = VotingSpec.from_dict(LISTING_1)
        with pytest.raises(AttributeError):
            spec.history = "NONE"
