"""Tests for the canned VDX example specs."""

from __future__ import annotations

from repro.vdx.examples import LISTING_1, all_example_specs
from repro.vdx.factory import build_voter
from repro.vdx.spec import VotingSpec


class TestListing1:
    def test_matches_paper_text(self):
        # Every key/value pair printed in the paper's Listing 1.
        assert LISTING_1["algorithm_name"] == "AVOC"
        assert LISTING_1["quorum"] == "UNTIL"
        assert LISTING_1["quorum_percentage"] == 100
        assert LISTING_1["exclusion"] == "NONE"
        assert LISTING_1["exclusion_threshold"] == 0
        assert LISTING_1["history"] == "HYBRID"
        assert LISTING_1["params"] == {"error": 0.05, "soft_threshold": 2}
        assert LISTING_1["collation"] == "MEAN_NEAREST_NEIGHBOR"
        assert LISTING_1["bootstrapping"] is True

    def test_parses(self):
        assert VotingSpec.from_dict(LISTING_1).algorithm_name == "AVOC"


class TestAllExamples:
    def test_every_example_is_valid_and_buildable(self):
        specs = all_example_specs()
        assert len(specs) >= 8
        for name, spec in specs.items():
            voter = build_voter(spec)
            assert voter is not None, name

    def test_examples_cover_all_history_modes(self):
        histories = {spec.history for spec in all_example_specs().values()}
        assert histories == {
            "NONE",
            "STANDARD",
            "ME",
            "SDT",
            "HYBRID",
            "INCOHERENCE",
        }
