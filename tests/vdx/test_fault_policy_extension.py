"""Tests for the VDX 1.1 fault-policy extension.

§7 of the paper: "It is also possible to extend VDX in a future
revision to support high-level descriptions of the desired fault
handling policy." — this is that revision.
"""

from __future__ import annotations

import pytest

from repro.exceptions import FusionError, SpecificationError
from repro.fusion.faults import FaultPolicy
from repro.types import Round
from repro.vdx.factory import build_engine
from repro.vdx.spec import VotingSpec


def doc(**fault_policy):
    return {
        "algorithm_name": "guarded",
        "history": "STANDARD",
        "collation": "MEAN",
        "fault_policy": fault_policy,
    }


class TestValidation:
    def test_valid_policy_accepted(self):
        spec = VotingSpec.from_dict(
            doc(on_missing_majority="raise", missing_tolerance=0.25)
        )
        assert spec.fault_policy["on_missing_majority"] == "raise"

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecificationError, match="fault_policy.retry"):
            VotingSpec.from_dict(doc(retry=3))

    def test_bad_action_rejected(self):
        with pytest.raises(SpecificationError, match="on_conflict"):
            VotingSpec.from_dict(doc(on_conflict="panic"))

    def test_bad_tolerance_rejected(self):
        with pytest.raises(SpecificationError, match="missing_tolerance"):
            VotingSpec.from_dict(doc(missing_tolerance=1.5))

    def test_non_object_rejected(self):
        raw = doc()
        raw["fault_policy"] = "strict"
        with pytest.raises(SpecificationError, match="expected an object"):
            VotingSpec.from_dict(raw)

    def test_absent_policy_is_none(self):
        spec = VotingSpec.from_dict({"algorithm_name": "x"})
        assert spec.fault_policy is None
        assert spec.build_fault_policy() is None


class TestBuildFaultPolicy:
    def test_defaults_merged(self):
        spec = VotingSpec.from_dict(doc(on_conflict="skip"))
        policy = spec.build_fault_policy()
        assert isinstance(policy, FaultPolicy)
        assert policy.on_conflict == "skip"
        assert policy.on_missing_majority == "last_value"  # schema default
        assert policy.missing_tolerance == 0.5

    def test_round_trips_through_json(self):
        spec = VotingSpec.from_dict(doc(on_quorum_failure="raise"))
        again = VotingSpec.from_json(spec.to_json())
        assert again.fault_policy == spec.fault_policy


class TestEngineWiring:
    def test_spec_policy_drives_engine(self):
        spec = VotingSpec.from_dict(
            doc(on_missing_majority="raise", missing_tolerance=0.4)
        )
        engine = build_engine(spec)
        engine.process(Round.from_values(0, [1.0, 1.0, 1.0]))
        with pytest.raises(FusionError):
            engine.process(
                Round.from_mapping(1, {"E1": 1.0, "E2": None, "E3": None})
            )

    def test_explicit_argument_wins_over_document(self):
        spec = VotingSpec.from_dict(doc(on_missing_majority="raise"))
        engine = build_engine(
            spec, fault_policy=FaultPolicy(on_missing_majority="skip")
        )
        engine.process(Round.from_values(0, [1.0, 1.0, 1.0]))
        result = engine.process(
            Round.from_mapping(1, {"E1": 1.0, "E2": None, "E3": None})
        )
        assert result.status == "skipped"
