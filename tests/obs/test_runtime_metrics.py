"""Runtime-layer instrumentation: pool chunks, crashes, wall vs worker."""

from __future__ import annotations

import pytest

from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.runtime import fuse_many
from repro.runtime.pool import WorkerPool, fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"task {x} exploded")


def _counter(registry, name):
    return registry.families()[name]._default.value


class TestInProcessPool:
    def test_single_chunk_and_equal_wall_worker_time(self):
        registry = MetricsRegistry()
        with WorkerPool(workers=1, registry=registry) as pool:
            assert pool.map(square, range(8)) == [x * x for x in range(8)]
        assert _counter(registry, "runtime_pool_chunks_total") == 1
        assert _counter(registry, "runtime_pool_worker_crashes_total") == 0
        wall = registry.families()["runtime_pool_wall_seconds"]._default.value
        worker = registry.families()[
            "runtime_pool_worker_seconds"
        ]._default.value
        assert wall == worker > 0.0

    def test_empty_map_records_nothing(self):
        registry = MetricsRegistry()
        with WorkerPool(workers=1, registry=registry) as pool:
            assert pool.map(square, []) == []
        assert _counter(registry, "runtime_pool_chunks_total") == 0


@needs_fork
class TestProcessPool:
    def test_chunks_counter_matches_scheduled_chunks(self):
        registry = MetricsRegistry()
        with WorkerPool(workers=2, chunk_size=1, registry=registry) as pool:
            assert pool.map(square, range(6)) == [x * x for x in range(6)]
        assert _counter(registry, "runtime_pool_chunks_total") == 6

    def test_worker_seconds_aggregates_across_chunks(self):
        registry = MetricsRegistry()
        with WorkerPool(workers=2, chunk_size=2, registry=registry) as pool:
            pool.map(square, range(8))
        wall = registry.families()["runtime_pool_wall_seconds"]._default.value
        worker = registry.families()[
            "runtime_pool_worker_seconds"
        ]._default.value
        assert wall > 0.0
        assert worker > 0.0

    def test_crash_counter_increments_and_reraises(self):
        registry = MetricsRegistry()
        pool = WorkerPool(workers=2, chunk_size=1, registry=registry)
        with pytest.raises(ValueError, match="exploded"):
            pool.map(boom, range(4))
        assert _counter(registry, "runtime_pool_worker_crashes_total") == 1


class TestFuseMany:
    def test_series_counter_counts_input_matrices(self):
        registry = MetricsRegistry()
        results = fuse_many(
            [[[1.0, 1.1, 0.9]], [[2.0, 2.1, 1.9]], [[3.0, 3.1, 2.9]]],
            "average",
            workers=1,
            registry=registry,
        )
        assert len(results) == 3
        assert (
            _counter(registry, "runtime_fuse_many_series_total") == 3
        )

    def test_all_runtime_families_registered_even_in_process(self):
        """workers=1 skips the pool, yet every family still renders."""
        registry = MetricsRegistry()
        fuse_many([[[1.0, 1.1, 0.9]]], "average", workers=1, registry=registry)
        rendered = registry.render()
        for family in (
            "runtime_fuse_many_series_total",
            "runtime_pool_chunks_total",
            "runtime_pool_worker_crashes_total",
            "runtime_pool_wall_seconds",
            "runtime_pool_worker_seconds",
        ):
            assert family in rendered


class TestDisabled:
    def test_null_registry_pool_still_maps_correctly(self):
        with WorkerPool(workers=1, registry=NULL_REGISTRY) as pool:
            assert pool.map(square, range(4)) == [0, 1, 4, 9]
        assert NULL_REGISTRY.render() == ""
