"""Engine-layer instrumentation: counters, reasons, zero-cost disable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fusion.engine import FusionEngine
from repro.fusion.faults import FaultPolicy
from repro.fusion.quorum import QuorumRule
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.types import Round
from repro.voting.registry import create_voter


def _counter_value(registry, name, **labels):
    family = registry.families()[name]
    return family.labels(*labels.values()).value


class TestProcessInstrumentation:
    def test_rounds_counter_tracks_processed(self):
        registry = MetricsRegistry()
        engine = FusionEngine(
            create_voter("average"), roster=["E1", "E2", "E3"],
            registry=registry,
        )
        for number in range(4):
            engine.process(Round.from_values(number, [1.0, 1.1, 0.9]))
        assert _counter_value(
            registry, "fusion_rounds_total", algorithm="average"
        ) == 4
        assert engine.rounds_processed == 4

    def test_degraded_counter_on_quorum_failure(self):
        """A round below quorum increments the quorum-reason counter."""
        registry = MetricsRegistry()
        engine = FusionEngine(
            create_voter("average"),
            roster=["E1", "E2", "E3", "E4"],
            quorum=QuorumRule(mode="UNTIL", percentage=75.0),
            fault_policy=FaultPolicy(
                on_quorum_failure="skip", missing_tolerance=0.9
            ),
            registry=registry,
        )
        result = engine.process(
            Round.from_mapping(0, {"E1": 1.0, "E2": 1.1, "E3": None, "E4": None})
        )
        assert result.status == "skipped"
        degraded = registry.families()["fusion_rounds_degraded_total"]
        assert degraded.labels("average", "quorum").value == 1
        assert _counter_value(
            registry, "fusion_quorum_failures_total", algorithm="average"
        ) == 1

    def test_round_latency_histogram_observes_each_round(self):
        registry = MetricsRegistry()
        engine = FusionEngine(
            create_voter("avoc"), roster=["E1", "E2", "E3"], registry=registry
        )
        for number in range(3):
            engine.process(Round.from_values(number, [1.0, 1.1, 0.9]))
        histogram = registry.families()["fusion_round_seconds"]
        child = histogram.labels("avoc")
        assert child.count == 3
        assert child.sum > 0.0

    def test_history_summary_gauges_follow_the_records(self):
        registry = MetricsRegistry()
        engine = FusionEngine(
            create_voter("avoc"), roster=["E1", "E2", "E3"], registry=registry
        )
        engine.process(Round.from_values(0, [1.0, 1.1, 25.0]))
        engine.process(Round.from_values(1, [1.0, 1.1, 25.0]))
        summary = registry.families()["fusion_history_record"]
        records = engine.voter.history.snapshot().values()
        assert summary.labels("avoc", "min").value == pytest.approx(min(records))
        assert summary.labels("avoc", "max").value == pytest.approx(max(records))
        assert summary.labels("avoc", "mean").value == pytest.approx(
            sum(records) / len(records)
        )


class TestBatchInstrumentation:
    def test_batch_counters_match_per_round_counters(self):
        """The kernel path and the legacy loop agree on every counter."""
        rng = np.random.default_rng(7)
        matrix = 18.0 + 0.1 * rng.standard_normal((50, 4))
        matrix[::7, 1:] = np.nan  # degraded rounds (majority missing)
        modules = ["E1", "E2", "E3", "E4"]

        loop_registry = MetricsRegistry()
        loop_engine = FusionEngine(
            create_voter("avoc"), roster=modules, registry=loop_registry
        )
        for number, row in enumerate(matrix):
            loop_engine.process(
                Round.from_mapping(
                    number,
                    {
                        m: (None if np.isnan(v) else float(v))
                        for m, v in zip(modules, row)
                    },
                )
            )

        batch_registry = MetricsRegistry()
        batch_engine = FusionEngine(
            create_voter("avoc"), roster=modules, registry=batch_registry
        )
        batch_engine.process_batch(matrix, modules)

        for name in ("fusion_rounds_total", "fusion_quorum_failures_total"):
            assert _counter_value(
                batch_registry, name, algorithm="avoc"
            ) == _counter_value(loop_registry, name, algorithm="avoc")
        loop_degraded = loop_registry.families()["fusion_rounds_degraded_total"]
        batch_degraded = batch_registry.families()[
            "fusion_rounds_degraded_total"
        ]
        for reason in ("majority_missing", "quorum", "conflict", "empty"):
            assert (
                batch_degraded.labels("avoc", reason).value
                == loop_degraded.labels("avoc", reason).value
            )

    def test_batch_raise_policy_still_counts_the_rejected_round(self):
        registry = MetricsRegistry()
        engine = FusionEngine(
            create_voter("average"),
            roster=["E1", "E2"],
            fault_policy=FaultPolicy(on_missing_majority="raise"),
            registry=registry,
        )
        matrix = np.asarray([[1.0, 1.1], [np.nan, np.nan], [2.0, 2.1]])
        with pytest.raises(Exception):
            engine.process_batch(matrix, ["E1", "E2"])
        assert _counter_value(
            registry, "fusion_rounds_total", algorithm="average"
        ) == 2  # one voted + the rejected one, like the per-round loop
        degraded = registry.families()["fusion_rounds_degraded_total"]
        assert degraded.labels("average", "majority_missing").value == 1

    def test_batch_latency_histogram_observes_once_per_batch(self):
        registry = MetricsRegistry()
        engine = FusionEngine(create_voter("median"), registry=registry)
        engine.process_batch(np.ones((10, 3)), ["E1", "E2", "E3"])
        engine.process_batch(np.ones((5, 3)), ["E1", "E2", "E3"])
        child = registry.families()["fusion_batch_seconds"].labels("median")
        assert child.count == 2
        assert _counter_value(
            registry, "fusion_batch_rounds_total", algorithm="median"
        ) == 15


class TestDisabledInstrumentation:
    def test_null_registry_records_nothing_and_changes_nothing(self):
        engine = FusionEngine(
            create_voter("avoc"), roster=["E1", "E2", "E3"],
            registry=NULL_REGISTRY,
        )
        engine.process(Round.from_values(0, [1.0, 1.1, 0.9]))
        batch = engine.process_batch(
            np.asarray([[1.0, 1.1, 0.9]]), ["E1", "E2", "E3"]
        )
        assert batch.n_rounds == 1
        assert engine.rounds_processed == 2
        assert NULL_REGISTRY.render() == ""

    def test_disabled_and_enabled_engines_fuse_identically(self):
        rng = np.random.default_rng(3)
        matrix = 18.0 + 0.1 * rng.standard_normal((200, 5))
        enabled = FusionEngine(
            create_voter("avoc"), registry=MetricsRegistry()
        ).process_batch(matrix)
        disabled = FusionEngine(
            create_voter("avoc"), registry=NULL_REGISTRY
        ).process_batch(matrix)
        np.testing.assert_array_equal(enabled.values, disabled.values)
