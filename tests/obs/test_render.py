"""Text exposition format: golden output and line-grammar checks."""

from __future__ import annotations

import re

from repro.obs import MetricsRegistry

#: One exposition line: HELP/TYPE metadata or `name{labels} value`.
LINE_RE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"(-?[0-9.e+-]+|NaN|\+Inf|-Inf))$"
)


def parseable(text: str) -> bool:
    return all(LINE_RE.match(line) for line in text.splitlines())


def test_render_golden():
    """The exact text a populated registry exposes (sorted, stable)."""
    registry = MetricsRegistry()
    requests = registry.counter(
        "demo_requests_total", "Requests served.", labels=("op",)
    )
    requests.labels("vote").inc(3)
    requests.labels("ping").inc()
    registry.gauge("demo_temperature", "Last fused value.").set(18.25)
    histogram = registry.histogram(
        "demo_seconds", "Request latency.", buckets=(0.01, 0.1)
    )
    histogram.observe(0.005)
    histogram.observe(0.05)

    assert registry.render() == (
        "# HELP demo_requests_total Requests served.\n"
        "# TYPE demo_requests_total counter\n"
        'demo_requests_total{op="ping"} 1\n'
        'demo_requests_total{op="vote"} 3\n'
        "# HELP demo_seconds Request latency.\n"
        "# TYPE demo_seconds histogram\n"
        'demo_seconds_bucket{le="0.01"} 1\n'
        'demo_seconds_bucket{le="0.1"} 2\n'
        'demo_seconds_bucket{le="+Inf"} 2\n'
        "demo_seconds_sum 0.055\n"
        "demo_seconds_count 2\n"
        "# HELP demo_temperature Last fused value.\n"
        "# TYPE demo_temperature gauge\n"
        "demo_temperature 18.25\n"
    )


def test_every_line_matches_the_exposition_grammar():
    registry = MetricsRegistry()
    registry.counter("a_total", "A.", labels=("x", "y")).labels("1", "2").inc()
    registry.gauge("b", "B.").set(-3.5)
    registry.histogram("c_seconds", "C.").observe(1e-4)
    text = registry.render()
    assert text.endswith("\n")
    assert parseable(text)


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("e_total", "E.", labels=("path",)).labels(
        'with"quote\nand\\slash'
    ).inc()
    rendered = registry.render()
    assert 'path="with\\"quote\\nand\\\\slash"' in rendered


def test_empty_registry_renders_empty():
    assert MetricsRegistry().render() == ""


def test_integer_and_float_formatting():
    registry = MetricsRegistry()
    registry.gauge("g_int", "G.").set(4.0)
    registry.gauge("g_float", "G.").set(4.125)
    rendered = registry.render()
    assert "g_int 4\n" in rendered
    assert "g_float 4.125\n" in rendered
