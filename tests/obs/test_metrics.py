"""Instrument semantics: counters, gauges, histograms, registries."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    exponential_buckets,
    get_default_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c_total", "help")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_labelled_children_are_independent(self):
        family = MetricsRegistry().counter("c_total", "help", labels=("op",))
        family.labels("vote").inc(3)
        family.labels("ping").inc()
        assert family.labels("vote").value == 3.0
        assert family.labels("ping").value == 1.0

    def test_direct_use_of_labelled_family_rejected(self):
        family = MetricsRegistry().counter("c_total", "help", labels=("op",))
        with pytest.raises(ValueError):
            family.inc()

    def test_wrong_label_arity_rejected(self):
        family = MetricsRegistry().counter(
            "c_total", "help", labels=("a", "b")
        )
        with pytest.raises(ValueError):
            family.labels("only-one")

    def test_thread_safety_under_hammering(self):
        """8 threads x 10'000 increments: no lost update, exactly 80'000."""
        counter = MetricsRegistry().counter("hammer_total", "help")
        n_threads, n_incs = 8, 10_000

        def hammer():
            for _ in range(n_incs):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * n_incs


class TestGauge:
    def test_set_and_inc(self):
        gauge = MetricsRegistry().gauge("g", "help")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value == 2.5

    def test_set_function_is_read_at_access_time(self):
        gauge = MetricsRegistry().gauge("g", "help")
        box = {"v": 1.0}
        gauge.set_function(lambda: box["v"])
        assert gauge.value == 1.0
        box["v"] = 7.0
        assert gauge.value == 7.0

    def test_set_function_errors_render_as_nan(self):
        gauge = MetricsRegistry().gauge("g", "help")
        gauge.set_function(lambda: 1 / 0)
        assert gauge.value != gauge.value  # NaN


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        """A value equal to a bound lands in that bound's bucket (le=)."""
        histogram = MetricsRegistry().histogram(
            "h", "help", buckets=(1.0, 2.0, 4.0)
        )
        histogram.observe(1.0)   # == first bound: belongs to le="1"
        histogram.observe(1.5)   # inside le="2"
        histogram.observe(4.0)   # == last bound: belongs to le="4"
        histogram.observe(99.0)  # overflow: +Inf only
        counts = histogram.bucket_counts()
        assert counts[1.0] == 1
        assert counts[2.0] == 2  # cumulative
        assert counts[4.0] == 3
        assert counts[float("inf")] == 4
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(105.5)

    def test_default_buckets_are_the_fixed_latency_ladder(self):
        histogram = MetricsRegistry().histogram("h", "help")
        assert histogram.buckets == DEFAULT_LATENCY_BUCKETS
        assert histogram.buckets[0] == pytest.approx(1e-5)
        assert histogram.buckets[-1] == pytest.approx(1e-5 * 2 ** 19)

    def test_exponential_buckets_shape(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 2.0, 0)


class TestRegistry:
    def test_same_name_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help")
        b = registry.counter("x_total", "help")
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "help")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "help", labels=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("0bad", "help")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "help", labels=("bad-label",))

    def test_snapshot_is_structured(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", labels=("op",)).labels("x").inc(2)
        registry.histogram("h", "help").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c_total"]["type"] == "counter"
        assert snapshot["c_total"]["samples"]["op=x"] == 2.0
        assert snapshot["h"]["samples"][""]["count"] == 1

    def test_histogram_snapshot_carries_sum_and_bucket_fractions(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "help", buckets=(1.0, 10.0))
        for value in (0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        sample = registry.snapshot()["h"]["samples"][""]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(56.0)
        # Cumulative fractions per upper bound (rendered like the
        # ``le`` label in the text format), +Inf always 1.0.
        assert sample["buckets"]["1"] == pytest.approx(0.5)
        assert sample["buckets"]["10"] == pytest.approx(0.75)
        assert sample["buckets"]["+Inf"] == pytest.approx(1.0)

    def test_empty_histogram_snapshot_has_zero_fractions(self):
        registry = MetricsRegistry()
        registry.histogram("h", "help", buckets=(1.0,)).labels()
        sample = registry.snapshot()["h"]["samples"][""]
        assert sample["count"] == 0
        assert all(f == 0.0 for f in sample["buckets"].values())


class TestNullRegistry:
    def test_null_instruments_accept_everything_and_report_nothing(self):
        counter = NULL_REGISTRY.counter("c_total", "help", labels=("op",))
        counter.labels("vote").inc(5)
        counter.inc()
        gauge = NULL_REGISTRY.gauge("g", "help")
        gauge.set(3.0)
        gauge.set_function(lambda: 9.9)
        histogram = NULL_REGISTRY.histogram("h", "help")
        histogram.observe(1.0)
        assert counter.value == 0.0
        assert gauge.value == 0.0
        assert histogram.count == 0
        assert NULL_REGISTRY.render() == ""
        assert NULL_REGISTRY.enabled is False

    def test_use_registry_swaps_and_restores_the_default(self):
        original = get_default_registry()
        replacement = MetricsRegistry()
        with use_registry(replacement):
            assert get_default_registry() is replacement
        assert get_default_registry() is original
