"""Service-layer instrumentation and the ``metrics`` protocol op."""

from __future__ import annotations

import re

import pytest

from repro.obs import MetricsRegistry
from repro.runtime import fuse_many
from repro.service.client import ServiceError, VoterClient
from repro.service.server import VoterServer
from repro.vdx.examples import AVOC_SPEC, HYBRID_SPEC

from .test_render import parseable


@pytest.fixture()
def registry():
    return MetricsRegistry()


def test_metrics_op_round_trip_through_client(registry):
    with VoterServer(AVOC_SPEC, registry=registry) as server:
        with VoterClient(*server.address) as client:
            client.ping()
            client.vote(0, {"E1": 18.0, "E2": 18.1, "E3": 17.9})
            text = client.metrics()
    assert parseable(text)
    assert 'service_requests_total{op="vote"} 1' in text
    assert 'service_requests_total{op="ping"} 1' in text
    # The metrics op counts itself as a request too (visible from a
    # second fetch, not its own — it renders before dispatch returns).
    assert 'service_requests_total{op="metrics"} 0' in text
    assert 'fusion_rounds_total{algorithm="avoc"} 1' in text


def test_end_to_end_fuse_and_round_trip_exposes_all_three_layers(registry):
    """Acceptance: engine, service and runtime families all render."""
    fuse_many(
        [[[1.0, 1.1, 0.9]], [[2.0, 2.1, 1.9]]],
        "average",
        workers=1,
        registry=registry,
    )
    with VoterServer(AVOC_SPEC, registry=registry) as server:
        with VoterClient(*server.address) as client:
            client.vote(0, {"E1": 18.0, "E2": 18.1, "E3": 17.9})
            text = client.metrics()
    assert parseable(text)
    families = {
        re.split(r"[{ ]", line)[0]
        for line in text.splitlines()
        if line and not line.startswith("#")
    }
    assert "fusion_rounds_total" in families  # engine layer
    assert "service_requests_total" in families  # service layer
    assert "runtime_fuse_many_series_total" in families  # runtime layer
    assert "runtime_pool_chunks_total" in families


def test_request_latency_histogram_observes_every_dispatch(registry):
    with VoterServer(AVOC_SPEC, registry=registry) as server:
        with VoterClient(*server.address) as client:
            client.ping()
            client.ping()
    child = registry.families()["service_request_seconds"].labels("ping")
    assert child.count == 2
    assert child.sum > 0.0


def test_error_counter_increments_on_handled_errors(registry):
    with VoterServer(AVOC_SPEC, registry=registry) as server:
        with VoterClient(*server.address) as client:
            client.vote(0, {"E1": 18.0, "E2": 18.1, "E3": 17.9})
            with pytest.raises(ServiceError):
                client.vote(0, {"E1": 18.0, "E2": 18.1, "E3": 17.9})
    errors = registry.families()["service_errors_total"]
    assert errors.labels("vote").value == 1
    requests = registry.families()["service_requests_total"]
    assert requests.labels("vote").value == 2  # failed dispatches count too


def test_stats_op_carries_structured_snapshot(registry):
    with VoterServer(AVOC_SPEC, registry=registry) as server:
        with VoterClient(*server.address) as client:
            client.vote(0, {"E1": 18.0, "E2": 18.1, "E3": 17.9})
            stats = client.stats()
    snapshot = stats["snapshot"]
    assert snapshot["engine"]["rounds_processed"] == 1
    assert snapshot["engine"]["rounds_degraded"] == 0
    assert snapshot["engine"]["availability"] == 1.0
    assert snapshot["engine"]["algorithm"] == "AVOC"
    assert snapshot["service"]["requests"]["vote"] == 1
    assert snapshot["service"]["errors"]["vote"] == 0


def test_configure_rebinds_engine_metrics_to_the_same_registry(registry):
    with VoterServer(AVOC_SPEC, registry=registry) as server:
        with VoterClient(*server.address) as client:
            client.vote(0, {"E1": 18.0, "E2": 18.1, "E3": 17.9})
            client.configure(HYBRID_SPEC.to_dict())
            client.vote(0, {"E1": 18.0, "E2": 18.1, "E3": 17.9})
            text = client.metrics()
    assert 'fusion_rounds_total{algorithm="avoc"} 1' in text
    assert 'fusion_rounds_total{algorithm="hybrid"} 1' in text


class TestStopIdempotency:
    """The satellite bugfix: stop() is safe to repeat and after failure."""

    def test_double_stop_after_start(self):
        server = VoterServer(AVOC_SPEC)
        server.start()
        server.stop()
        server.stop()  # must not touch the closed socket

    def test_stop_without_start_releases_the_socket(self):
        server = VoterServer(AVOC_SPEC)
        host, port = server.address
        server.stop()
        server.stop()
        # The port is free again: a new server can bind it immediately.
        rebound = VoterServer(AVOC_SPEC, host=host, port=port)
        assert rebound.address[1] == port
        rebound.stop()

    def test_exit_after_failed_start_is_safe(self):
        from repro.exceptions import ReproError

        server = VoterServer(AVOC_SPEC)
        with server:
            with pytest.raises(ReproError):
                server.start()  # second start fails...
        server.stop()  # ...and cleanup stays idempotent afterwards

    def test_start_after_stop_is_rejected_cleanly(self):
        from repro.exceptions import ReproError

        server = VoterServer(AVOC_SPEC)
        server.stop()
        with pytest.raises(ReproError):
            server.start()

    def test_address_survives_stop(self):
        server = VoterServer(AVOC_SPEC)
        address = server.address
        server.stop()
        assert server.address == address
