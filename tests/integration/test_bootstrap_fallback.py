"""AVOC's second bootstrap trigger — total record collapse — on data.

§5: the clustering step runs "when all records are 1 (indicating a new
set) or 0 (indicating a failure of the system or an extreme data
spike)".  The first trigger is exercised everywhere; this module drives
the second one with a recorded scenario: mid-run, the sensors stop
agreeing with each other entirely (pathological interference), every
record decays toward zero, and the voter falls back to clustering
instead of limping on with dead weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.types import Round
from repro.voting.avoc import AvocVoter
from repro.voting.hybrid import HybridVoter


def chaos_round(number: int, rng) -> Round:
    """Five sensors that agree with nobody (spread >> margin)."""
    # Widely log-spread values make accidental pairwise agreement rare.
    values = list(np.exp(rng.uniform(0.0, 8.0, size=5)))
    return Round.from_values(number, values)


def healthy_round(number: int, rng) -> Round:
    values = list(18.0 + rng.normal(0.0, 0.1, size=5))
    return Round.from_values(number, values)


class TestFailureTrigger:
    def test_records_collapse_then_bootstrap_fires(self):
        rng = np.random.default_rng(3)
        voter = AvocVoter()
        # Healthy warm-up: first-round bootstrap, records settle high.
        for i in range(5):
            voter.vote(healthy_round(i, rng))
        assert voter.bootstraps_used == 1
        # Chaos: total disagreement collapses every record.
        fired_again = False
        for i in range(5, 40):
            outcome = voter.vote(chaos_round(i, rng))
            if outcome.used_bootstrap:
                fired_again = True
                break
        assert fired_again
        assert voter.bootstraps_used == 2

    def test_recovery_after_chaos(self):
        rng = np.random.default_rng(4)
        voter = AvocVoter()
        for i in range(5):
            voter.vote(healthy_round(i, rng))
        for i in range(5, 40):
            voter.vote(chaos_round(i, rng))
        # Sensors heal: the voter must converge back to consensus.
        outcome = None
        for i in range(40, 60):
            outcome = voter.vote(healthy_round(i, rng))
        assert outcome.value == pytest.approx(18.0, abs=0.3)
        records = voter.history.snapshot()
        assert all(r > 0.5 for r in records.values())

    def test_hybrid_without_bootstrap_limps_through_chaos(self):
        # The contrast AVOC §5 motivates: plain Hybrid's weights all go
        # to ~0 and stay there until agreement slowly rebuilds them;
        # it never re-clusters.
        rng = np.random.default_rng(5)
        avoc, hybrid = AvocVoter(), HybridVoter()
        for i in range(5):
            avoc.vote(healthy_round(i, rng))
            hybrid.vote(healthy_round(i, rng))
        for i in range(5, 40):
            r = chaos_round(i, rng)
            avoc.vote(r)
            hybrid_outcome = hybrid.vote(r)
            assert not hybrid_outcome.used_bootstrap
        hybrid_records = hybrid.history.snapshot()
        assert all(r < 0.2 for r in hybrid_records.values())
