"""The §7 fault scenarios, exercised on the actual UC-2 data.

The paper walks through two fault families it met in the BLE
experiment; these tests reproduce each decision point with the
generated dataset and the engine's policies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import availability
from repro.datasets.injection import drop_values
from repro.exceptions import FusionError
from repro.fusion.engine import FusionEngine
from repro.fusion.faults import FaultPolicy
from repro.types import Round
from repro.voting.registry import create_voter


class TestMissingValues:
    """'Due to some beacons not being reachable from the BLE receiver.'"""

    def test_dataset_contains_natural_gaps(self, uc2_dataset):
        assert uc2_dataset.stack_a.missing_fraction() > 0.02

    def test_minority_gaps_do_not_degrade_rounds(self, uc2_dataset):
        # "A small amount of missing values ... does not prevent the
        # system from converging to a common result."
        engine = FusionEngine(
            create_voter("average"),
            roster=list(uc2_dataset.stack_a.modules),
            fault_policy=FaultPolicy(),
        )
        results = engine.run(uc2_dataset.stack_a.rounds())
        assert availability([r.status for r in results]) > 0.95

    def test_majority_missing_reverts_to_last_accepted(self, uc2_dataset):
        # "the system should either revert to the last accepted result,
        # or raise an error."
        dataset = uc2_dataset.stack_a.slice(0, 40)
        for module in dataset.modules[:7]:  # 7 of 9 beacons go dark
            dataset = drop_values(dataset, module, 1.0, start_round=20,
                                  end_round=30, seed=hash(module) % 97)
        engine = FusionEngine(
            create_voter("average"),
            roster=list(dataset.modules),
            fault_policy=FaultPolicy(on_missing_majority="last_value"),
        )
        results = engine.run(dataset.rounds())
        held = results[20:30]
        assert all(r.status == "held" for r in held)
        assert all(r.value == results[19].value for r in held)

    def test_majority_missing_raise_policy(self, uc2_dataset):
        dataset = uc2_dataset.stack_a.slice(0, 25)
        for module in dataset.modules:
            dataset = drop_values(dataset, module, 1.0, start_round=20,
                                  seed=hash(module) % 97)
        engine = FusionEngine(
            create_voter("average"),
            roster=list(dataset.modules),
            fault_policy=FaultPolicy(on_missing_majority="raise"),
        )
        with pytest.raises(FusionError, match="missing"):
            engine.run(dataset.rounds())

    def test_fewer_candidates_reduce_trustworthiness_not_output(self, uc2_dataset):
        # Voting over 4 of 9 beacons still yields a value near the
        # 9-beacon one — redundancy lost, consensus kept.
        full = uc2_dataset.stack_a.slice(0, 50)
        partial_matrix = full.matrix.copy()
        partial_matrix[:, 4:] = np.nan
        partial = full.with_matrix(partial_matrix, suffix="partial")
        engine_full = FusionEngine(create_voter("average"),
                                   roster=list(full.modules))
        engine_partial = FusionEngine(
            create_voter("average"),
            roster=list(partial.modules),
            fault_policy=FaultPolicy(missing_tolerance=0.7),
        )
        out_full = engine_full.output_series(engine_full.run(full.rounds()))
        out_partial = engine_partial.output_series(
            engine_partial.run(partial.rounds())
        )
        assert float(np.nanmean(np.abs(out_full - out_partial))) < 5.0


class TestConflictingResults:
    """'A relative majority agrees ... but they are an overall minority.'"""

    def test_relative_majority_wins_under_clustering(self):
        # 3 groups: {A,B} agree, {C,D} agree, {E} alone.  No absolute
        # majority; the clustering voter takes the (first) largest
        # relative group.
        voter = create_voter("clustering")
        outcome = voter.vote(
            Round.from_values(0, [-60.0, -60.5, -80.0, -80.5, -100.0])
        )
        assert outcome.value == pytest.approx(-60.25)
        assert set(outcome.eliminated) == {"E3", "E4", "E5"}

    def test_moon_refuses_relative_majority(self):
        # A 2-of-5 relative majority is not enough for a 3oo5 voter:
        # the conflict escalates to the policy.
        from repro.voting.moon import MooNVoter

        engine = FusionEngine(
            MooNVoter(m=3),
            fault_policy=FaultPolicy(on_conflict="skip"),
        )
        result = engine.process(
            Round.from_values(0, [-60.0, -60.5, -80.0, -80.5, -100.0])
        )
        assert result.status == "skipped"

    def test_tie_breaks_toward_previous_output_categorical(self):
        # "ties might occur more easily and tie-breaking mechanisms kick
        # in, such as proximity to the previous output."
        voter = create_voter("categorical_majority", history_mode="none")
        voter.vote_values(["near", "near", "far"])
        outcome = voter.vote_values(["near", "far"])
        assert outcome.value == "near"
