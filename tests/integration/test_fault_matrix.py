"""Fault-tolerance matrix: every robust algorithm vs every fault type.

Each test injects one fault family into the UC-1 dataset and asserts
the masking behaviour each algorithm class should exhibit — the
system-level contract behind the paper's Fig. 6 narrative.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.diff import run_voter_series
from repro.datasets.injection import (
    drop_values,
    offset_fault,
    spike_fault,
    stuck_fault,
)
from repro.voting.registry import create_voter

ROBUST = ("me", "hybrid", "clustering", "avoc")
N = 240


@pytest.fixture(scope="module")
def clean(uc1_small):
    return uc1_small.slice(0, N)


def masked_error(algorithm, clean, faulty, skip_rounds=10):
    """Mean |fault output − clean output| after the warm-up rounds."""
    clean_out = run_voter_series(create_voter(algorithm), clean)
    fault_out = run_voter_series(create_voter(algorithm), faulty)
    diff = np.abs(fault_out - clean_out)[skip_rounds:]
    return float(np.nanmean(diff))


class TestOffsetFault:
    @pytest.mark.parametrize("algorithm", ROBUST)
    def test_masked(self, algorithm, clean):
        faulty = offset_fault(clean, "E4", 6.0)
        assert masked_error(algorithm, clean, faulty) < 0.25

    def test_average_not_masked(self, clean):
        faulty = offset_fault(clean, "E4", 6.0)
        assert masked_error("average", clean, faulty) > 1.0


class TestStuckAtFault:
    @pytest.mark.parametrize("algorithm", ROBUST)
    def test_masked(self, algorithm, clean):
        faulty = stuck_fault(clean, "E2", 3.0)  # frozen far below the band
        assert masked_error(algorithm, clean, faulty) < 0.25


class TestSpikeStorm:
    @pytest.mark.parametrize("algorithm", ("clustering", "avoc", "median"))
    def test_frequent_spikes_masked(self, algorithm, clean):
        faulty = spike_fault(clean, "E1", magnitude=20.0, probability=0.3,
                             seed=4)
        assert masked_error(algorithm, clean, faulty) < 0.3

    def test_average_leaks_spikes(self, clean):
        faulty = spike_fault(clean, "E1", magnitude=20.0, probability=0.3,
                             seed=4)
        assert masked_error("average", clean, faulty) > 0.5


class TestDroppedModule:
    @pytest.mark.parametrize("algorithm", ROBUST + ("average",))
    def test_minority_dropout_tolerated(self, algorithm, clean):
        faulty = drop_values(clean, "E5", probability=0.6, seed=6)
        # Losing one of five sensors moves the consensus only slightly.
        assert masked_error(algorithm, clean, faulty) < 0.3


class TestTwoSimultaneousFaults:
    @pytest.mark.parametrize("algorithm", ("clustering", "avoc"))
    def test_two_disjoint_outliers_still_minority(self, algorithm, clean):
        faulty = offset_fault(clean, "E4", 6.0)
        faulty = offset_fault(faulty, "E1", -6.0)
        # Three healthy sensors still form the largest agreeing group.
        assert masked_error(algorithm, clean, faulty) < 0.35

    def test_colluding_majority_defeats_voting(self, clean):
        # Internal ground truth is majority-defined: when three of five
        # sensors share the same fault, the voter follows them.  This is
        # the fundamental limit of redundancy-based fusion.
        faulty = clean
        for module in ("E1", "E2", "E3"):
            faulty = offset_fault(faulty, module, 6.0)
        assert masked_error("avoc", clean, faulty) > 4.0


class TestIntermittentFault:
    @pytest.mark.parametrize("algorithm", ("me", "avoc"))
    def test_recovery_after_fault_window(self, algorithm, clean):
        # Fault present only for rounds [50, 120): output must return to
        # the clean trajectory afterwards.
        faulty = offset_fault(clean, "E4", 6.0, start_round=50, end_round=120)
        clean_out = run_voter_series(create_voter(algorithm), clean)
        fault_out = run_voter_series(create_voter(algorithm), faulty)
        tail = np.abs(fault_out - clean_out)[160:]
        assert float(np.nanmean(tail)) < 0.1
