"""End-to-end integration tests across subsystem boundaries."""

from __future__ import annotations


import numpy as np

from repro.analysis.diff import run_voter_series
from repro.datasets.injection import drop_values
from repro.datasets.loader import load_csv, save_csv
from repro.fusion.engine import FusionEngine
from repro.fusion.faults import FaultPolicy
from repro.history.file import JsonlHistoryStore
from repro.simulation.runner import run_uc1_simulation
from repro.vdx.examples import AVOC_SPEC
from repro.vdx.factory import build_engine, build_voter
from repro.vdx.spec import VotingSpec


class TestVdxToFigurePipeline:
    """Spec file on disk -> voter -> recorded dataset -> fused output."""

    def test_spec_file_drives_fusion_over_recorded_data(self, tmp_path, uc1_small):
        spec_path = tmp_path / "avoc.vdx.json"
        AVOC_SPEC.save(spec_path)
        data_path = tmp_path / "uc1.csv"
        save_csv(uc1_small, data_path)

        spec = VotingSpec.from_file(spec_path)
        engine = build_engine(spec)
        dataset = load_csv(data_path)
        results = engine.run_matrix(dataset.matrix, modules=dataset.modules)
        outputs = engine.output_series(results)
        assert outputs.shape == (uc1_small.n_rounds,)
        assert 17.0 < np.nanmean(outputs) < 19.5

    def test_vdx_avoc_equals_registry_avoc(self, uc1_small_faulty):
        from repro.voting.registry import create_voter

        via_vdx = run_voter_series(build_voter(AVOC_SPEC), uc1_small_faulty)
        via_registry = run_voter_series(create_voter("avoc"), uc1_small_faulty)
        assert np.allclose(via_vdx, via_registry, equal_nan=True)


class TestPersistentHistoryAcrossRestart:
    def test_warm_restart_skips_bootstrap(self, tmp_path, uc1_small_faulty):
        store_path = tmp_path / "history.jsonl"
        first = build_voter(AVOC_SPEC, history_store=JsonlHistoryStore(store_path))
        for voting_round in uc1_small_faulty.slice(0, 50).rounds():
            first.vote(voting_round)
        assert first.bootstraps_used == 1

        # New process: records reload, set is no longer "fresh", so the
        # restarted voter goes straight to the Hybrid path.
        revived = build_voter(AVOC_SPEC, history_store=JsonlHistoryStore(store_path))
        outcome = revived.vote(next(iter(uc1_small_faulty.slice(50, 51).rounds())))
        assert not outcome.used_bootstrap
        assert "E4" in outcome.eliminated


class TestFaultPolicyUnderMissingData:
    def test_hold_last_value_through_blackout(self, uc1_small):
        # Drop every sensor for a stretch of rounds: the engine must
        # hold the last accepted value (the §7 recommendation).
        dataset = uc1_small.slice(0, 60)
        for module in dataset.modules:
            dataset = drop_values(dataset, module, 1.0, start_round=30,
                                  end_round=40, seed=hash(module) % 1000)
        engine = FusionEngine(
            build_voter(AVOC_SPEC),
            roster=list(dataset.modules),
            fault_policy=FaultPolicy(on_missing_majority="last_value"),
        )
        results = engine.run(dataset.rounds())
        held = [r for r in results[30:40]]
        assert all(r.status == "held" for r in held)
        assert all(r.value == results[29].value for r in held)

    def test_recovers_after_blackout(self, uc1_small):
        dataset = uc1_small.slice(0, 60)
        for module in dataset.modules:
            dataset = drop_values(dataset, module, 1.0, start_round=30,
                                  end_round=40, seed=hash(module) % 1000)
        engine = FusionEngine(build_voter(AVOC_SPEC), roster=list(dataset.modules))
        results = engine.run(dataset.rounds())
        assert results[45].status == "ok"


class TestSimulationMatchesOfflineVoting:
    def test_lossless_simulation_equals_dataset_voting(self):
        # With no network loss and a deterministic seed, the simulated
        # deployment must produce the same rounds the offline dataset
        # path produces.
        report = run_uc1_simulation(algorithm="average", rounds=30, wifi_loss=0.0)
        from repro.datasets.light_uc1 import UC1Config, generate_uc1_dataset
        from repro.voting.stateless import MeanVoter

        dataset = generate_uc1_dataset(UC1Config(n_rounds=30))
        offline = run_voter_series(MeanVoter(), dataset)
        assert np.allclose(report.outputs, offline, atol=1e-9)
