"""Cross-layer integration: a production-shaped pipeline end to end.

Raw sensor events → streaming window assembly → VDX-built AVOC engine
with a write-behind SQLite history store → fused series → reliability
diagnosis.  Every layer is real; the test asserts the composition
behaves like the simple offline path and that the diagnosis at the end
names the injected culprit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.diff import run_voter_series
from repro.analysis.reliability import diagnose, worst_module
from repro.datasets.injection import offset_fault
from repro.fusion.engine import FusionEngine
from repro.fusion.stream import SensorEvent, StreamingFusion
from repro.history.cached import WriteBehindStore
from repro.history.sqlite import SqliteHistoryStore
from repro.vdx.examples import AVOC_SPEC
from repro.vdx.factory import build_voter


@pytest.fixture()
def faulty_dataset(uc1_small):
    return offset_fault(uc1_small.slice(0, 120), "E4", 6.0)


class TestProductionPipeline:
    def test_stream_store_vote_diagnose(self, tmp_path, faulty_dataset):
        store = WriteBehindStore(
            SqliteHistoryStore(tmp_path / "records.db"), flush_every=8
        )
        voter = build_voter(AVOC_SPEC, history_store=store)
        engine = FusionEngine(voter, roster=list(faulty_dataset.modules))
        stream = StreamingFusion(engine, window=1.0 / 8.0)

        # Feed the recording as interleaved per-module events.
        for number, row in enumerate(faulty_dataset.matrix):
            base = number / 8.0
            for offset, (module, value) in enumerate(
                zip(faulty_dataset.modules, row)
            ):
                stream.push(
                    SensorEvent(module, float(value), base + offset * 0.001)
                )
        stream.flush()
        store.flush()

        # 1. The streamed outputs equal the plain offline voting path.
        streamed = [r.value for r in stream.results]
        offline = run_voter_series(build_voter(AVOC_SPEC), faulty_dataset)
        assert streamed == pytest.approx(list(offline))

        # 2. The history survived in the database (write-behind flushed).
        persisted = SqliteHistoryStore(tmp_path / "records.db").load()
        assert persisted["E4"] == 0.0

        # 3. Diagnosis over the streamed outcomes names the culprit.
        outcomes = [r.outcome for r in stream.results if r.outcome is not None]
        reports = diagnose(faulty_dataset, outcomes)
        assert worst_module(reports) == "E4"
        assert reports["E4"].classification == "offset"

    def test_pipeline_output_quality(self, tmp_path, faulty_dataset, uc1_small):
        voter = build_voter(AVOC_SPEC)
        engine = FusionEngine(voter, roster=list(faulty_dataset.modules))
        stream = StreamingFusion(engine, window=1.0 / 8.0)
        for number, row in enumerate(faulty_dataset.matrix):
            base = number / 8.0
            for offset, (module, value) in enumerate(
                zip(faulty_dataset.modules, row)
            ):
                stream.push(SensorEvent(module, float(value), base + offset * 0.001))
        stream.flush()
        outputs = np.asarray([r.value for r in stream.results])
        clean_band = uc1_small.slice(0, 120).matrix
        # The fused output never follows the +6 fault.
        assert outputs.max() < clean_band.max() + 0.5
