"""End-to-end operations smoke: dashboard + alerting + live tuning.

Run by the ``ops-smoke`` CI job (and directly:
``python benchmarks/ops_smoke.py --out ops-snapshot.json``).  Boots a
real 2-shard / 2-replica cluster, serves the operations dashboard over
HTTP, then asserts the full story:

1. ``/`` serves the HTML page, ``/api/snapshot`` the aggregated JSON
   (with both shards' registries), ``/metrics`` the text exposition,
   and ``/api/stream`` pushes SSE ticks;
2. killing a backend makes the stock ``shards-down`` alert fire, and
   a manual restart + resync failover makes it resolve again;
3. a 4-trial live random search through the public wire protocol
   returns scores bit-identical to the offline objective, with the
   memo cache doing real work.

The final aggregated snapshot is written to ``--out`` for the CI
artifact upload.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import time

from repro.cluster.supervisor import FusionCluster
from repro.datasets.injection import offset_fault
from repro.datasets.light_uc1 import UC1Config, generate_uc1_dataset
from repro.obs import MetricsRegistry
from repro.ops import DashboardServer, default_alert_rules
from repro.service.client import VoterClient
from repro.tuning import (
    Choice,
    LiveObjective,
    ParameterSpace,
    live_base_params,
    live_random_search,
    random_search,
    uc1_fault_recovery_objective,
)
from repro.vdx.examples import AVOC_SPEC

ROUNDS = 80


def get(address, path, timeout=10.0):
    conn = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def wait_for(predicate, what, timeout=30.0, interval=0.1):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {what}")


def check_endpoints(dash):
    status, body = get(dash.address, "/")
    assert status == 200 and b"AVOC operations" in body, "HTML page"
    status, body = get(dash.address, "/metrics")
    assert status == 200 and b"ops_dashboard_requests_total" in body, "/metrics"
    status, body = get(dash.address, "/api/snapshot")
    assert status == 200, "/api/snapshot"
    snapshot = json.loads(body)
    assert sorted(s for s in snapshot["shards"] if s != "gateway") == [
        "b0", "b1",
    ], f"per-shard snapshots missing: {sorted(snapshot['shards'])}"
    print("endpoints: html + /metrics + /api/snapshot serve per-shard state")

    conn = http.client.HTTPConnection(*dash.address, timeout=10)
    conn.request("GET", "/api/stream")
    response = conn.getresponse()
    events = 0
    while events < 2:
        line = response.readline()
        assert line, "SSE stream ended prematurely"
        if line.startswith(b"data: "):
            events += 1
    response.close()
    conn.close()
    print("endpoints: SSE stream delivered 2 ticks")


def check_alerting(dash, cluster):
    def states():
        return {a["rule"]["name"]: a["state"] for a in dash.alert_states()}

    assert states()["shards-down"] == "inactive"
    cluster.backends["b0"].kill()
    # The gateway only notices a dead link when a request fails, so
    # keep traffic flowing while waiting for the alert.
    with cluster.client() as client:
        round_number = 100

        def drive_and_check():
            nonlocal round_number
            try:
                client.vote(
                    round_number,
                    {"E1": 18.0, "E2": 18.1, "E3": 17.9},
                    series=f"fault-{round_number}",
                )
            except Exception:
                pass
            round_number += 1
            return states()["shards-down"] == "firing"

        wait_for(
            drive_and_check, "shards-down alert to fire after killing b0"
        )
    print("alerting: shards-down fired after backend kill")
    # Recover the backend the way the supervisor's failover does
    # (stale until resynced from a surviving replica), and the alert
    # must resolve on its own.
    gateway = cluster.gateway
    backend = cluster.backends["b0"]
    gateway.mark_stale("b0")
    address = backend.restart()
    gateway.update_backend("b0", address)
    wait_for(backend.ping, "restarted backend to answer pings")
    gateway.resync_backend("b0")
    wait_for(
        lambda: states()["shards-down"] in ("resolved", "inactive"),
        "shards-down alert to resolve after restart + resync",
        timeout=60.0,
    )
    print("alerting: shards-down resolved after restart + resync")


def check_live_tuning(cluster):
    clean = generate_uc1_dataset(UC1Config(n_rounds=ROUNDS))
    faulty = offset_fault(clean, "E4", 6.0)
    space = ParameterSpace(
        {
            "error": Choice([0.03, 0.12]),
            "collation": Choice(["MEAN", "MEDIAN"]),
        },
        base=live_base_params("avoc"),
    )
    offline = random_search(
        uc1_fault_recovery_objective(clean, faulty, algorithm="avoc"),
        space, n_trials=4, seed=2,
    )
    host, port = cluster.address
    with VoterClient(host, port, timeout=60.0) as client:
        client.negotiate("auto")
        live = live_random_search(
            LiveObjective(
                client.request, clean, faulty, registry=MetricsRegistry()
            ),
            space, n_trials=4, seed=2,
        )
    offline_scores = [t.score for t in offline.trials]
    live_scores = [t.score for t in live.trials]
    assert live_scores == offline_scores, (
        f"live ranking diverged: {live_scores} != {offline_scores}"
    )
    print(
        f"live tuning: 4 trials bit-identical to offline "
        f"(best {live.best_score:.3f}, {live.cache_hits} cache hits)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="ops-snapshot.json",
        help="where to write the final aggregated snapshot",
    )
    parser.add_argument(
        "--mode", choices=("process", "thread"), default=None,
        help="backend isolation (default: process where fork exists)",
    )
    args = parser.parse_args()

    # auto_restart off: the alerting check injects the failure and
    # performs the failover by hand so both transitions are observed
    # deterministically.
    with FusionCluster(
        AVOC_SPEC, n_shards=2, replicas=2, mode=args.mode,
        auto_restart=False,
    ) as cluster:
        with cluster.client() as client:
            for i in range(10):
                client.vote(
                    i,
                    {"E1": 18.0 + i * 0.01, "E2": 18.1, "E3": 17.9},
                    series="smoke",
                )
        with DashboardServer(
            gateway=cluster.gateway,
            rules=default_alert_rules(expected_backends=2),
            interval=0.2,
        ) as dash:
            print("dashboard at http://%s:%d/" % dash.address)
            check_endpoints(dash)
            check_alerting(dash, cluster)
            check_live_tuning(cluster)
            final = dash.tick()
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(final, handle, indent=2)
        print(f"wrote final snapshot to {args.out}")
    print("ops smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
