"""Parallel runtime perf baseline.

Two recorded numbers, written to ``BENCH_parallel.json``:

* **sweep speedup** — wall-clock of a 64-trial seeded random search
  (each trial fuses a 2000 × 8 matrix through AVOC) at ``workers=1``
  vs ``workers=4``.  Floor: >= 2.5x — enforced only on hosts with at
  least 4 CPUs (single-core containers record honest numbers with
  ``enforced: false``; CI runners enforce).
* **ragged kernel speedup** — the count-bucketed ragged-row kernels
  vs the per-round loop on a heavily gap-ridden matrix.  Floor: >= 2x,
  always enforced (it is a single-core property).

Both measurements double as determinism checks: the parallel runs must
return results bit-identical to the sequential ones.
"""

from __future__ import annotations

import os
import pathlib
import time

import numpy as np
import pytest

from benchmarks.baseline_io import merge_baseline
from repro.fusion.engine import FusionEngine
from repro.runtime.pool import fork_available
from repro.tuning.random_search import random_search
from repro.tuning.space import Continuous, ParameterSpace
from repro.types import Round, is_missing
from repro.voting.registry import create_voter

_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

SWEEP_FLOOR = 2.5
RAGGED_FLOOR = 2.0


def _merge_report(key, payload):
    # Atomic temp-file + os.replace write: a killed job can never leave
    # a truncated baseline for the artifact upload or the gate.
    merge_baseline(_OUT, key, payload)


def test_sweep_speedup_at_4_workers(benchmark, capsys):
    """64-trial random search wall-clock, workers=1 vs workers=4."""
    if not fork_available():
        pytest.skip("needs the fork start method")

    rng = np.random.default_rng(7)
    matrix = 18.0 + 0.1 * rng.standard_normal((2_000, 8))
    modules = [f"E{i+1}" for i in range(8)]
    space = ParameterSpace(
        {
            "error": Continuous(0.01, 0.2),
            "soft_threshold": Continuous(1.0, 3.0),
        }
    )

    def objective(params):
        voter = create_voter("avoc", params=params)
        engine = FusionEngine(voter, roster=modules)
        values = engine.process_batch(matrix, modules).values
        return float(np.nanvar(values))

    def sweep(workers):
        start = time.perf_counter()
        result = random_search(
            objective, space, n_trials=64, seed=11, workers=workers
        )
        return time.perf_counter() - start, result

    def measure():
        seq_s, seq = sweep(1)
        par_s, par = sweep(4)
        assert seq.trials == par.trials, "parallel sweep changed the trace"
        assert seq.best_assignment == par.best_assignment
        return seq_s, par_s

    seq_s, par_s = benchmark.pedantic(measure, iterations=1, rounds=1)
    speedup = seq_s / par_s
    enforced = (os.cpu_count() or 1) >= 4
    _merge_report(
        "sweep_random_search_64",
        {
            "trials": 64,
            "rounds_per_trial": int(matrix.shape[0]),
            "workers_1_seconds": round(seq_s, 3),
            "workers_4_seconds": round(par_s, 3),
            "speedup": round(speedup, 2),
            "floor": SWEEP_FLOOR,
            "enforced": enforced,
        },
    )
    mode = (
        "enforced"
        if enforced
        else f"recorded only: {os.cpu_count()} CPU(s)"
    )
    with capsys.disabled():
        print(
            f"\nsweep: workers=1 {seq_s:.2f}s, workers=4 {par_s:.2f}s, "
            f"{speedup:.2f}x (floor {SWEEP_FLOOR}x, {mode})"
        )
    if enforced:
        assert speedup >= SWEEP_FLOOR, (
            f"sweep speedup {speedup:.2f}x below the {SWEEP_FLOOR}x floor"
        )


def test_ragged_kernel_speedup(benchmark, capsys):
    """Bucketed ragged kernels vs the per-round loop (single-core)."""
    rng = np.random.default_rng(42)
    matrix = 18.0 + 0.1 * rng.standard_normal((10_000, 8))
    # Heavy raggedness: ~55 % of rows lose at least one module.
    matrix[rng.random(matrix.shape) < 0.1] = np.nan
    modules = [f"E{i+1}" for i in range(8)]
    ragged_fraction = float(np.mean(np.isnan(matrix).any(axis=1)))

    def legacy(algorithm):
        engine = FusionEngine(create_voter(algorithm), roster=modules)
        start = time.perf_counter()
        values = []
        for number, row in enumerate(matrix):
            mapping = {
                m: (None if is_missing(v) else float(v))
                for m, v in zip(modules, row)
            }
            result = engine.process(Round.from_mapping(number, mapping))
            values.append(np.nan if result.value is None else result.value)
        return time.perf_counter() - start, np.asarray(values, dtype=float)

    def batched(algorithm):
        engine = FusionEngine(create_voter(algorithm), roster=modules)
        start = time.perf_counter()
        batch = engine.process_batch(matrix, modules)
        return time.perf_counter() - start, batch.values

    def measure():
        report = {}
        for algorithm in ("average", "avoc"):
            loop_s, loop_values = legacy(algorithm)
            batch_s, batch_values = batched(algorithm)
            np.testing.assert_array_equal(loop_values, batch_values)
            report[algorithm] = {
                "loop_seconds": round(loop_s, 4),
                "batch_seconds": round(batch_s, 4),
                "speedup": round(loop_s / batch_s, 2),
            }
        return report

    report = benchmark.pedantic(measure, iterations=1, rounds=1)
    _merge_report(
        "ragged_kernel",
        {
            "rounds": int(matrix.shape[0]),
            "modules": int(matrix.shape[1]),
            "ragged_row_fraction": round(ragged_fraction, 3),
            "floor": RAGGED_FLOOR,
            "enforced": True,
            "algorithms": report,
        },
    )
    with capsys.disabled():
        for algorithm, row in report.items():
            print(
                f"\nragged {algorithm}: loop {row['loop_seconds']*1e3:.0f} ms, "
                f"batch {row['batch_seconds']*1e3:.0f} ms, "
                f"{row['speedup']:.1f}x (floor {RAGGED_FLOOR}x)"
            )
    for algorithm, row in report.items():
        assert row["speedup"] >= RAGGED_FLOOR, (
            f"ragged {algorithm}: {row['speedup']:.2f}x below the "
            f"{RAGGED_FLOOR}x floor"
        )
