"""Scalability: how voting latency grows with redundancy degree.

The paper motivates high redundancy ("in smart shopping scenarios ...
the degree of redundancy rises significantly to dozens of proximity
sensors") and claims soft-real-time feasibility.  These benchmarks
sweep the module count and check the per-round cost stays compatible
with the paper's 8-samples/s polling budget even at dozens of modules.
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from repro.analysis.report import render_table
from repro.types import Round
from repro.voting.registry import create_voter

MODULE_COUNTS = (5, 9, 25, 50, 100)


def _round_factory(n_modules, seed=0):
    rng = np.random.default_rng(seed)
    counter = itertools.count()

    def next_round():
        values = list(18.0 + rng.normal(0.0, 0.1, size=n_modules))
        return Round.from_values(next(counter), values)

    return next_round


def _mean_latency(algorithm, n_modules, iterations=150):
    voter = create_voter(algorithm)
    next_round = _round_factory(n_modules)
    rounds = [next_round() for _ in range(iterations)]
    start = time.perf_counter()
    for voting_round in rounds:
        voter.vote(voting_round)
    return (time.perf_counter() - start) / iterations


def test_latency_vs_module_count(benchmark):
    benchmark.pedantic(
        _mean_latency, args=("avoc", 25), iterations=1, rounds=1
    )
    rows = []
    for n in MODULE_COUNTS:
        rows.append(
            [n]
            + [
                f"{_mean_latency(alg, n) * 1e6:.0f}"
                for alg in ("average", "clustering", "hybrid", "avoc")
            ]
        )
    print("\nPer-round latency (µs) vs module count:")
    print(render_table(
        ["modules", "average", "clustering", "hybrid", "avoc"], rows
    ))
    # 8 samples/s leaves a 125 ms budget; even 100 modules must fit
    # comfortably (the agreement matrix is O(n²) but n is small).
    assert _mean_latency("avoc", 100) < 0.125


def test_history_store_cost_scales_with_roster(benchmark, tmp_path):
    from repro.history.file import JsonlHistoryStore
    from repro.voting.hybrid import HybridVoter

    def run(n_modules):
        store = JsonlHistoryStore(
            tmp_path / f"h{n_modules}.jsonl", compact_after=256
        )
        voter = HybridVoter(history_store=store)
        next_round = _round_factory(n_modules)
        start = time.perf_counter()
        for _ in range(100):
            voter.vote(next_round())
        return (time.perf_counter() - start) / 100

    benchmark.pedantic(run, args=(9,), iterations=1, rounds=1)
    rows = [[n, f"{run(n) * 1e6:.0f}"] for n in (5, 25, 100)]
    print("\nStore-backed per-round latency (µs) vs roster size:")
    print(render_table(["modules", "µs/round"], rows))


def test_quadratic_agreement_matrix_is_the_dominant_term(benchmark):
    """Agreement is O(n²): going 5 -> 50 modules should cost well under
    the naive 100x (NumPy vectorisation) but clearly more than 1x."""

    def ratio():
        small = _mean_latency("hybrid", 5, iterations=200)
        large = _mean_latency("hybrid", 50, iterations=200)
        return large / small

    value = benchmark.pedantic(ratio, iterations=1, rounds=1)
    print(f"\nlatency ratio 50 vs 5 modules: {value:.1f}x")
    assert 1.0 < value < 100.0


def test_batch_throughput_vs_module_count(benchmark):
    """Batch-path throughput sweep over the redundancy degrees.

    The dense stateless kernel is O(rounds x modules) flat NumPy; even
    at 100 modules the batch path must process a 2'000-round matrix in
    a small fraction of the paper's 125 ms-per-round budget *total*.
    """
    from repro.fusion.engine import FusionEngine

    def sweep():
        rng = np.random.default_rng(7)
        rows = []
        for n in MODULE_COUNTS:
            matrix = 18.0 + 0.1 * rng.standard_normal((2_000, n))
            cells = []
            for algorithm in ("average", "avoc"):
                engine = FusionEngine(
                    create_voter(algorithm),
                    roster=[f"E{i+1}" for i in range(n)],
                )
                start = time.perf_counter()
                engine.process_batch(matrix)
                cells.append(2_000 / (time.perf_counter() - start))
            rows.append([n] + [f"{c:,.0f}" for c in cells])
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\nBatch throughput (rounds/s) vs module count:")
    print(render_table(["modules", "average", "avoc"], rows))
