"""Ingest-tier perf baseline.

Two recorded numbers, written to ``BENCH_ingest.json``:

* **roundtrip** — vote round-trip latency of the same ``vote_batch``
  workload against one shard server, v2-JSON framing vs v3-binary
  framing on the same connection pattern.  Ceiling: v3 <= 0.7x the
  v2 wall-clock — enforced only on hosts with at least 4 CPUs
  (single-core containers record honest numbers with
  ``enforced: false``, mirroring ``BENCH_cluster.json``).
* **fan_in** — concurrent sensor connections pushing single votes
  through the async ingest tier into a 2-shard cluster; records
  connection count, aggregate rounds/second, and whether every fused
  value is bit-identical to a direct in-process
  :func:`repro.fuse` run.  Bit-identity is always enforced.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

import numpy as np
import pytest

from repro import fuse
from benchmarks.baseline_io import merge_baseline
from repro.cluster.backend import ShardServer
from repro.cluster.supervisor import FusionCluster
from repro.ingest import AsyncIngestServer
from repro.runtime.pool import fork_available
from repro.service.client import VoterClient
from repro.service.facade import connect
from repro.vdx.examples import AVOC_SPEC

_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_ingest.json"

ROUNDTRIP_CEILING = 0.7

MODULES = ["E1", "E2", "E3", "E4", "E5"]
N_SERIES = 16
ROUNDS_PER_SERIES = 300
CHUNK = 100

FAN_IN_CONNECTIONS = 16
FAN_IN_ROUNDS = 150


def _merge_report(key, payload):
    # Atomic temp-file + os.replace write: a killed job can never leave
    # a truncated baseline for the artifact upload or the gate.
    merge_baseline(_OUT, key, payload)


def _workload(seed=23):
    rng = np.random.default_rng(seed)
    return {
        f"series-{k}": (
            18.0 + 0.1 * rng.standard_normal((ROUNDS_PER_SERIES, len(MODULES)))
        ).tolist()
        for k in range(N_SERIES)
    }


def _drive(client, workload, offset):
    """Push the workload through one connection in vote_batch chunks."""
    start = time.perf_counter()
    for lo in range(0, ROUNDS_PER_SERIES, CHUNK):
        rounds = [offset + n for n in range(lo, lo + CHUNK)]
        batches = [
            {"series": series, "rounds": rounds, "modules": MODULES,
             "rows": rows[lo:lo + CHUNK]}
            for series, rows in workload.items()
        ]
        results = client.vote_batch(batches)
        assert len(results) == N_SERIES
    return time.perf_counter() - start


def test_roundtrip_v3_vs_v2(benchmark, capsys):
    """The same vote_batch workload over JSON lines vs binary frames."""
    workload = _workload()
    server = ShardServer(AVOC_SPEC)
    server.start()
    try:
        host, port = server.address

        def run(transport, offset):
            with VoterClient(host, port) as client:
                client.negotiate(transport)
                return _drive(client, workload, offset)

        def measure():
            # Interleave a warmup pass per framing so both hit warm
            # engines, then time each with distinct round offsets
            # (shards deduplicate rounds; reuse would measure the
            # replay cache, not the wire).
            run("json", 0)
            run("binary", 10_000)
            json_s = run("json", 20_000)
            binary_s = run("binary", 30_000)
            return json_s, binary_s

        json_s, binary_s = benchmark.pedantic(measure, iterations=1, rounds=1)
    finally:
        server.stop()
    ratio = binary_s / json_s
    enforced = (os.cpu_count() or 1) >= 4
    total_rounds = N_SERIES * ROUNDS_PER_SERIES
    _merge_report(
        "roundtrip",
        {
            "series": N_SERIES,
            "rounds_per_series": ROUNDS_PER_SERIES,
            "total_rounds": total_rounds,
            "v2_json_seconds": round(json_s, 3),
            "v3_binary_seconds": round(binary_s, 3),
            "rounds_per_second_v3": round(total_rounds / binary_s),
            "ratio_v3_over_v2": round(ratio, 2),
            "ceiling": ROUNDTRIP_CEILING,
            "enforced": enforced,
        },
    )
    mode = (
        "enforced" if enforced else f"recorded only: {os.cpu_count()} CPU(s)"
    )
    with capsys.disabled():
        print(
            f"\ningest roundtrip: v2-JSON {json_s:.2f}s, v3-binary "
            f"{binary_s:.2f}s, ratio {ratio:.2f} "
            f"(ceiling {ROUNDTRIP_CEILING}, {mode})"
        )
    if enforced:
        assert ratio <= ROUNDTRIP_CEILING, (
            f"v3 round-trip ratio {ratio:.2f} above the "
            f"{ROUNDTRIP_CEILING} ceiling"
        )


def test_fan_in_through_cluster(benchmark, capsys):
    """Concurrent connections through the async tier into a cluster."""
    if not fork_available():
        pytest.skip("needs the fork start method")
    rng = np.random.default_rng(31)
    matrices = {
        f"sensor-{k}": 18.0 + 0.1 * rng.standard_normal(
            (FAN_IN_ROUNDS, len(MODULES))
        )
        for k in range(FAN_IN_CONNECTIONS)
    }
    expected = {
        series: fuse(matrix, AVOC_SPEC, modules=MODULES).values
        for series, matrix in matrices.items()
    }

    def measure():
        mismatches = []
        answered = [0]
        with FusionCluster(
            AVOC_SPEC, n_shards=2, replicas=2, mode="process",
            auto_restart=False,
        ) as cluster:
            with AsyncIngestServer(cluster.gateway) as ingest:
                def run(series, matrix):
                    with connect(ingest.address) as client:
                        for n in range(FAN_IN_ROUNDS):
                            result = client.vote(
                                n,
                                dict(zip(MODULES, matrix[n].tolist())),
                                series=series,
                            )
                            answered[0] += 1
                            want = expected[series][n]
                            want = None if np.isnan(want) else float(want)
                            if result["value"] != want:
                                mismatches.append((series, n))

                start = time.perf_counter()
                threads = [
                    threading.Thread(target=run, args=(series, matrix))
                    for series, matrix in matrices.items()
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                elapsed = time.perf_counter() - start
        return answered[0], mismatches, elapsed

    answered, mismatches, elapsed = benchmark.pedantic(
        measure, iterations=1, rounds=1
    )
    total = FAN_IN_CONNECTIONS * FAN_IN_ROUNDS
    _merge_report(
        "fan_in",
        {
            "connections": FAN_IN_CONNECTIONS,
            "rounds_per_connection": FAN_IN_ROUNDS,
            "total_rounds": total,
            "answered": answered,
            "rounds_per_second": round(total / elapsed),
            "bit_identical": not mismatches,
            "run_seconds": round(elapsed, 3),
            "enforced": True,
        },
    )
    with capsys.disabled():
        print(
            f"\ningest fan-in: {FAN_IN_CONNECTIONS} connections, "
            f"{answered}/{total} rounds answered, "
            f"{round(total / elapsed)} rounds/s, "
            f"bit-identical={not mismatches}, {elapsed:.2f}s"
        )
    assert answered == total, "rounds were lost through the ingest tier"
    assert not mismatches, f"ingest tier changed fused values: {mismatches[:5]}"
