"""Fig. 6 reproduction: UC-1 light sensors, all six panels.

Each test regenerates one panel of the paper's Fig. 6 at full scale
(10'000 rounds, 5 sensors), prints the series the panel plots, and
asserts the published shape.  The timed portion is the representative
computation behind the panel.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.diff import run_voter_series
from repro.analysis.report import render_series, render_table
from repro.datasets.injection import offset_fault
from repro.datasets.light_uc1 import UC1Config, generate_uc1_dataset
from repro.experiments import FIG6_ALGORITHMS, make_uc1_voter

_TIMING_ROUNDS = 1_000  # rounds used in the timed portion of each bench


def _timing_dataset():
    return generate_uc1_dataset(UC1Config(n_rounds=_TIMING_ROUNDS))


def test_fig6a_raw_reference_data(benchmark, fig6_full):
    """Fig. 6-a: the raw 10k-round reference dataset, 17-20 klm band."""
    benchmark.pedantic(
        generate_uc1_dataset, args=(UC1Config(n_rounds=_TIMING_ROUNDS),),
        iterations=1, rounds=3,
    )
    clean = fig6_full.clean
    assert clean.matrix.shape == (10_000, 5)
    assert clean.matrix.min() > 16.0
    assert clean.matrix.max() < 21.0
    print("\nFig. 6-a — raw sensor data (kilolumen):")
    print(render_series({m: clean.column(m) for m in clean.modules}))


def test_fig6b_voting_output_on_raw_data(benchmark, fig6_full):
    """Fig. 6-b: all six variants coincide on clean data (18-19 klm)."""
    dataset = _timing_dataset()
    benchmark.pedantic(
        run_voter_series, args=(make_uc1_voter("avoc"), dataset),
        iterations=1, rounds=3,
    )
    outputs = np.array([fig6_full.clean_outputs[a] for a in FIG6_ALGORITHMS])
    spread = outputs.max(axis=0) - outputs.min(axis=0)
    assert float(spread.mean()) < 0.3, "variants must match almost completely"
    for algorithm in FIG6_ALGORITHMS:
        mean = float(np.nanmean(fig6_full.clean_outputs[algorithm]))
        assert 17.5 < mean < 19.5
    print("\nFig. 6-b — voting output on raw data:")
    print(render_series(fig6_full.clean_outputs))
    print(f"mean cross-variant spread: {spread.mean():.4f} klm")


def test_fig6c_error_injected_raw_data(benchmark, fig6_full):
    """Fig. 6-c: the +6 klm fault on E4 shifts only E4's series."""
    dataset = _timing_dataset()
    benchmark(offset_fault, dataset, "E4", 6.0)
    faulty = fig6_full.faulty
    clean = fig6_full.clean
    assert np.allclose(faulty.column("E4") - clean.column("E4"), 6.0)
    for module in ("E1", "E2", "E3", "E5"):
        assert np.array_equal(faulty.column(module), clean.column(module))
    print("\nFig. 6-c — raw data with faulty E4:")
    print(render_series({m: faulty.column(m) for m in faulty.modules}))


def test_fig6d_voting_output_under_faults(benchmark, fig6_full):
    """Fig. 6-d: Hybrid/Clustering/AVOC stay in the pre-error band."""
    faulty = offset_fault(_timing_dataset(), "E4", 6.0)
    benchmark.pedantic(
        run_voter_series, args=(make_uc1_voter("avoc"), faulty),
        iterations=1, rounds=3,
    )
    for algorithm in ("hybrid", "clustering", "avoc"):
        tail = fig6_full.fault_outputs[algorithm][100:]
        clean_tail = fig6_full.clean_outputs[algorithm][100:]
        assert float(np.nanmean(np.abs(tail - clean_tail))) < 0.25, algorithm
    # The stateless average remains fully skewed (+1.2).
    skew = fig6_full.fault_outputs["average"] - fig6_full.clean_outputs["average"]
    assert np.allclose(skew, 1.2, atol=0.01)
    print("\nFig. 6-d — voting output with faults:")
    print(render_series(fig6_full.fault_outputs))


def test_fig6e_error_injection_effect(benchmark, fig6_full):
    """Fig. 6-e: per-algorithm diff between fault-vote and clean-vote."""
    faulty = offset_fault(_timing_dataset(), "E4", 6.0)

    def diff_standard():
        clean_out = run_voter_series(make_uc1_voter("standard"), _timing_dataset())
        fault_out = run_voter_series(make_uc1_voter("standard"), faulty)
        return fault_out - clean_out

    benchmark.pedantic(diff_standard, iterations=1, rounds=1)
    diffs = fig6_full.diffs
    # Standard: high initial skew, slowly mitigated, never eliminated.
    assert diffs["standard"][0] > 1.1
    assert 0.0 < float(np.nanmean(diffs["standard"][-500:])) < 1.1
    # Me: eliminated at round 2 (index 1).
    assert fig6_full.exclusion_rounds["me"] == 1
    # Hybrid: near-zero diff minus few spikes.
    assert float(np.nanmean(np.abs(diffs["hybrid"][10:]))) < 0.15
    # Clustering: excluded from the first round.
    assert fig6_full.exclusion_rounds["clustering"] == 0
    print("\nFig. 6-e — error-injection effect on voting (diff):")
    print(render_series(diffs))
    rows = [
        [alg, fig6_full.convergence_rounds[alg], fig6_full.exclusion_rounds[alg]]
        for alg in FIG6_ALGORITHMS
    ]
    print(render_table(["algorithm", "settling round", "E4 exclusion round"], rows))


def test_fig6f_clustering_effect_at_bootstrap(benchmark, fig6_full):
    """Fig. 6-f: first rounds zoom — AVOC prunes the startup spike."""
    faulty = offset_fault(_timing_dataset(), "E4", 6.0)
    benchmark.pedantic(
        run_voter_series, args=(make_uc1_voter("avoc"), faulty),
        iterations=1, rounds=3,
    )
    zoom = {alg: fig6_full.zoom(alg, 10) for alg in FIG6_ALGORITHMS}
    # History voters spike at startup; AVOC does not.
    assert abs(zoom["standard"][0]) > 1.1
    assert abs(zoom["me"][0]) > 1.1
    assert abs(zoom["avoc"][0]) < 0.2
    # AVOC already excludes E4 in round 2 (index 1) thanks to the
    # bootstrap-seeded history.
    assert fig6_full.exclusion_rounds["avoc"] == 0
    print("\nFig. 6-f — first 10 rounds of the diffs:")
    rows = [[alg] + [round(float(v), 3) for v in zoom[alg]] for alg in zoom]
    print(render_table(["algorithm"] + [f"r{i}" for i in range(10)], rows))
