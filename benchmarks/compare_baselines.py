"""Bench-regression gate: diff fresh benchmark baselines against committed.

CI runs the benchmark smoke jobs, which rewrite ``BENCH_latency.json``
and ``BENCH_parallel.json`` in place.  This script compares those fresh
numbers against the copies committed in git (stashed to a separate
directory before the run) and fails when performance moved the wrong
way:

* a ``speedup`` falls below its recorded ``floor``, or
* a ``speedup`` regresses more than :data:`REGRESSION_TOLERANCE`
  (30%) against the committed number.

The history-voter latency entries additionally carry a hardcoded
minimum floor (:data:`HISTORY_FLOORS`): the segment-vectorized
recurrence scan must keep ``avoc`` and ``clustering`` at >=20x over the
per-round scalar loop, even if a committed baseline was regenerated
with a lower recorded floor.

Sections marked ``"enforced": false`` (e.g. the process-pool sweep on a
single-CPU runner) are reported but never fail the gate.  A genuine
baseline shift — new hardware, an intentional trade-off — is landed by
putting ``[bench-reset]`` in the commit message, which makes CI skip
this gate for that push, and committing the regenerated JSON files.

Usage::

    python benchmarks/compare_baselines.py \
        --committed-dir /tmp/committed --fresh-dir .
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "HISTORY_FLOORS",
    "REGRESSION_TOLERANCE",
    "compare_cluster",
    "compare_dirs",
    "compare_ingest",
    "compare_latency",
    "compare_parallel",
    "compare_store",
    "main",
]

#: A fresh speedup below ``committed * (1 - tolerance)`` fails the gate.
REGRESSION_TOLERANCE = 0.30

#: Hardcoded minimum latency floors for the history voters.  The
#: segmented recurrence scan is the whole point of those kernels, so the
#: gate refuses to accept a baseline below these even when the recorded
#: ``floor`` in the committed JSON is stale or was regenerated lower.
#: (``[bench-reset]`` skips the gate entirely — it does not lower these.)
HISTORY_FLOORS = {"avoc": 20.0, "clustering": 20.0}

LATENCY_FILE = "BENCH_latency.json"
PARALLEL_FILE = "BENCH_parallel.json"
CLUSTER_FILE = "BENCH_cluster.json"
INGEST_FILE = "BENCH_ingest.json"
STORE_FILE = "BENCH_store.json"


def _check_speedup(
    label: str,
    fresh: Optional[float],
    committed: Optional[float],
    floor: Optional[float],
    enforced: bool,
    failures: List[str],
) -> None:
    """Apply the two gate rules to one (committed, fresh) speedup pair."""
    if fresh is None:
        failures.append(f"{label}: missing from the fresh baseline")
        return
    prefix = "" if enforced else "[not enforced] "
    if floor is not None and fresh < floor:
        message = (
            f"{prefix}{label}: fresh speedup {fresh:.2f}x is below the "
            f"recorded floor {floor:.2f}x"
        )
        if enforced:
            failures.append(message)
        else:
            print(message)
    if committed is not None:
        allowed = committed * (1.0 - REGRESSION_TOLERANCE)
        if fresh < allowed:
            message = (
                f"{prefix}{label}: fresh speedup {fresh:.2f}x regressed "
                f">{REGRESSION_TOLERANCE:.0%} vs committed "
                f"{committed:.2f}x (allowed >= {allowed:.2f}x)"
            )
            if enforced:
                failures.append(message)
            else:
                print(message)


def compare_latency(
    committed: Dict[str, Any], fresh: Dict[str, Any]
) -> List[str]:
    """Gate ``BENCH_latency.json``: one entry per batch-kernel algorithm."""
    failures: List[str] = []
    for algorithm in sorted(committed):
        entry = committed[algorithm]
        fresh_entry = fresh.get(algorithm, {})
        floor = entry.get("floor")
        hard_floor = HISTORY_FLOORS.get(algorithm)
        if hard_floor is not None:
            floor = hard_floor if floor is None else max(floor, hard_floor)
        _check_speedup(
            f"latency/{algorithm}",
            fresh_entry.get("speedup"),
            entry.get("speedup"),
            floor,
            enforced=True,
            failures=failures,
        )
    return failures


def compare_parallel(
    committed: Dict[str, Any], fresh: Dict[str, Any]
) -> List[str]:
    """Gate ``BENCH_parallel.json``: ragged-kernel + sweep sections."""
    failures: List[str] = []
    for section in sorted(committed):
        entry = committed[section]
        if not isinstance(entry, dict):
            continue  # scalar metadata such as cpu_count
        fresh_entry = fresh.get(section)
        if not isinstance(fresh_entry, dict):
            failures.append(f"parallel/{section}: missing from fresh baseline")
            continue
        enforced = bool(entry.get("enforced", True))
        floor = entry.get("floor")
        algorithms = entry.get("algorithms")
        if isinstance(algorithms, dict):
            fresh_algorithms = fresh_entry.get("algorithms", {})
            for algorithm in sorted(algorithms):
                _check_speedup(
                    f"parallel/{section}/{algorithm}",
                    fresh_algorithms.get(algorithm, {}).get("speedup"),
                    algorithms[algorithm].get("speedup"),
                    floor,
                    enforced,
                    failures,
                )
        elif "speedup" in entry:
            _check_speedup(
                f"parallel/{section}",
                fresh_entry.get("speedup"),
                entry.get("speedup"),
                floor,
                enforced,
                failures,
            )
    return failures


def compare_cluster(
    committed: Dict[str, Any], fresh: Dict[str, Any]
) -> List[str]:
    """Gate ``BENCH_cluster.json``: shard throughput + failover identity."""
    failures: List[str] = []
    throughput = committed.get("throughput")
    if isinstance(throughput, dict):
        fresh_throughput = fresh.get("throughput")
        if not isinstance(fresh_throughput, dict):
            failures.append("cluster/throughput: missing from fresh baseline")
        else:
            _check_speedup(
                "cluster/throughput",
                fresh_throughput.get("speedup"),
                throughput.get("speedup"),
                throughput.get("floor"),
                bool(throughput.get("enforced", True)),
                failures,
            )
    if isinstance(committed.get("failover"), dict):
        fresh_failover = fresh.get("failover")
        if not isinstance(fresh_failover, dict):
            failures.append("cluster/failover: missing from fresh baseline")
        else:
            if fresh_failover.get("answered") != fresh_failover.get("rounds"):
                failures.append(
                    "cluster/failover: rounds were lost "
                    f"({fresh_failover.get('answered')} of "
                    f"{fresh_failover.get('rounds')} answered)"
                )
            if fresh_failover.get("bit_identical") is not True:
                failures.append(
                    "cluster/failover: outputs diverged from the "
                    "single-engine reference"
                )
    return failures


def compare_ingest(
    committed: Dict[str, Any], fresh: Dict[str, Any]
) -> List[str]:
    """Gate ``BENCH_ingest.json``: v3 round-trip ratio + fan-in identity.

    The ``roundtrip`` ratio is *lower-is-better* (v3 wall-clock over
    v2-JSON), so the rules from :func:`_check_speedup` flip: the fresh
    ratio must stay at or under the recorded ``ceiling`` and must not
    climb more than :data:`REGRESSION_TOLERANCE` above the committed
    number.  Single-CPU runners record ``"enforced": false`` and are
    reported without failing, mirroring the cluster throughput gate.
    Fan-in bit-identity is always enforced.
    """
    failures: List[str] = []
    roundtrip = committed.get("roundtrip")
    if isinstance(roundtrip, dict):
        fresh_roundtrip = fresh.get("roundtrip")
        if not isinstance(fresh_roundtrip, dict):
            failures.append("ingest/roundtrip: missing from fresh baseline")
        else:
            ratio = fresh_roundtrip.get("ratio_v3_over_v2")
            enforced = bool(fresh_roundtrip.get("enforced", True))
            prefix = "" if enforced else "[not enforced] "
            if ratio is None:
                failures.append(
                    "ingest/roundtrip: fresh baseline has no ratio"
                )
            else:
                ceiling = fresh_roundtrip.get("ceiling")
                if ceiling is not None and ratio > ceiling:
                    message = (
                        f"{prefix}ingest/roundtrip: fresh v3/v2 ratio "
                        f"{ratio:.2f} is above the {ceiling:.2f} ceiling"
                    )
                    if enforced:
                        failures.append(message)
                    else:
                        print(message)
                old = roundtrip.get("ratio_v3_over_v2")
                if old is not None:
                    allowed = old * (1.0 + REGRESSION_TOLERANCE)
                    if ratio > allowed:
                        message = (
                            f"{prefix}ingest/roundtrip: fresh v3/v2 ratio "
                            f"{ratio:.2f} regressed "
                            f">{REGRESSION_TOLERANCE:.0%} vs committed "
                            f"{old:.2f} (allowed <= {allowed:.2f})"
                        )
                        if enforced:
                            failures.append(message)
                        else:
                            print(message)
    if isinstance(committed.get("fan_in"), dict):
        fresh_fan_in = fresh.get("fan_in")
        if not isinstance(fresh_fan_in, dict):
            failures.append("ingest/fan_in: missing from fresh baseline")
        else:
            if fresh_fan_in.get("answered") != fresh_fan_in.get(
                "total_rounds"
            ):
                failures.append(
                    "ingest/fan_in: rounds were lost "
                    f"({fresh_fan_in.get('answered')} of "
                    f"{fresh_fan_in.get('total_rounds')} answered)"
                )
            if fresh_fan_in.get("bit_identical") is not True:
                failures.append(
                    "ingest/fan_in: outputs diverged from the direct "
                    "fuse() reference"
                )
    return failures


def compare_store(
    committed: Dict[str, Any], fresh: Dict[str, Any]
) -> List[str]:
    """Gate ``BENCH_store.json``: cold-start speedup, residency, identity.

    ``cold_start`` carries a packed-over-JSONL rehydration ``speedup``
    gated like every other speedup (recorded ``floor`` + the 30%
    regression rule); constrained hosts record ``"enforced": false``
    and are reported without failing.  ``residency`` must show the
    bounded hot set actually holding less heap than the unbounded run
    (``bounded_under_unbounded``) and the hot set within its capacity.
    ``identity`` — evict/rehydrate bit-identity against the always-
    resident reference — is enforced unconditionally: there is no
    hardware on which state corruption is acceptable.
    """
    failures: List[str] = []
    cold = committed.get("cold_start")
    if isinstance(cold, dict):
        fresh_cold = fresh.get("cold_start")
        if not isinstance(fresh_cold, dict):
            failures.append("store/cold_start: missing from fresh baseline")
        else:
            _check_speedup(
                "store/cold_start",
                fresh_cold.get("speedup"),
                cold.get("speedup"),
                cold.get("floor"),
                bool(fresh_cold.get("enforced", True)),
                failures,
            )
    if isinstance(committed.get("residency"), dict):
        fresh_res = fresh.get("residency")
        if not isinstance(fresh_res, dict):
            failures.append("store/residency: missing from fresh baseline")
        else:
            if fresh_res.get("hot_within_bound") is not True:
                failures.append(
                    "store/residency: hot set exceeded its configured bound "
                    f"({fresh_res.get('hot_size')} resident, "
                    f"bound {fresh_res.get('hot_bound')})"
                )
            enforced = bool(fresh_res.get("enforced", True))
            if fresh_res.get("bounded_under_unbounded") is not True:
                message = (
                    ("" if enforced else "[not enforced] ")
                    + "store/residency: bounded hot set did not hold less "
                    "heap than the unbounded run"
                )
                if enforced:
                    failures.append(message)
                else:
                    print(message)
    if isinstance(committed.get("identity"), dict):
        fresh_identity = fresh.get("identity")
        if not isinstance(fresh_identity, dict):
            failures.append("store/identity: missing from fresh baseline")
        elif fresh_identity.get("bit_identical") is not True:
            failures.append(
                "store/identity: evict/rehydrate states diverged from the "
                "always-resident reference"
            )
    return failures


def _load(path: Path) -> Optional[Dict[str, Any]]:
    if not path.is_file():
        return None
    with path.open() as handle:
        return json.load(handle)


def compare_dirs(committed_dir: Path, fresh_dir: Path) -> List[str]:
    """Compare every known baseline file present in ``committed_dir``."""
    failures: List[str] = []
    compared = 0
    for filename, comparator in (
        (LATENCY_FILE, compare_latency),
        (PARALLEL_FILE, compare_parallel),
        (CLUSTER_FILE, compare_cluster),
        (INGEST_FILE, compare_ingest),
        (STORE_FILE, compare_store),
    ):
        committed = _load(committed_dir / filename)
        if committed is None:
            print(f"{filename}: no committed baseline, skipping")
            continue
        fresh = _load(fresh_dir / filename)
        if fresh is None:
            failures.append(
                f"{filename}: committed baseline exists but the benchmark "
                f"run produced no fresh copy in {fresh_dir}"
            )
            continue
        compared += 1
        failures.extend(comparator(committed, fresh))
    if compared == 0 and not failures:
        failures.append(
            f"no baseline files found under {committed_dir} — nothing gated"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--committed-dir",
        type=Path,
        required=True,
        help="directory holding the committed BENCH_*.json copies",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=Path("."),
        help="directory the benchmark run wrote fresh BENCH_*.json to",
    )
    args = parser.parse_args(argv)
    failures = compare_dirs(args.committed_dir, args.fresh_dir)
    if failures:
        print("bench-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print(
            "intentional baseline shift? commit the regenerated JSON with "
            "[bench-reset] in the commit message (see docs/observability.md)",
            file=sys.stderr,
        )
        return 1
    print("bench-regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
