"""Fig. 7 reproduction: UC-2 BLE beacon positioning, all three panels."""

from __future__ import annotations

import numpy as np

from repro.analysis.diff import run_voter_series
from repro.analysis.report import render_series, render_table
from repro.datasets.ble_uc2 import UC2Config, generate_uc2_dataset
from repro.experiments import FIG7_COLLATION_GROUPS
from repro.experiments.uc2 import make_uc2_voter


def test_fig7a_single_beacon_per_stack(benchmark, fig7_full):
    """Fig. 7-a: one beacon per stack — closest stack mostly ambiguous."""
    benchmark.pedantic(
        generate_uc2_dataset, args=(UC2Config(),), iterations=1, rounds=3
    )
    single = fig7_full.single_beacon
    assert single["A"].shape == (297,)
    # With a single beacon, the unstable region dominates the run.
    assert fig7_full.instability("single_beacon") > 150
    print("\nFig. 7-a — single beacon per stack (RSSI dBm):")
    print(render_series(single))
    print(f"unstable closest-stack calls: {fig7_full.instability('single_beacon')}/297")


def test_fig7b_nine_beacon_average(benchmark, fig7_full):
    """Fig. 7-b: 9-beacon plain average — visibly less ambiguous."""
    dataset = fig7_full.dataset.stack_a
    benchmark.pedantic(
        run_voter_series, args=(make_uc2_voter("average"), dataset),
        iterations=1, rounds=3,
    )
    assert fig7_full.instability("nine_average") < (
        fig7_full.instability("single_beacon") / 2
    )
    assert fig7_full.accuracy("nine_average") > 0.85
    # RSSI crossover still present: A starts closer, B ends closer.
    avg = fig7_full.nine_average
    assert np.nanmean(avg["A"][:30]) > np.nanmean(avg["B"][:30])
    assert np.nanmean(avg["B"][-30:]) > np.nanmean(avg["A"][-30:])
    print("\nFig. 7-b — 9-beacon average per stack:")
    print(render_series(avg))
    print(f"unstable calls: {fig7_full.instability('nine_average')}/297")


def test_fig7c_avoc_voting_per_stack(benchmark, fig7_full):
    """Fig. 7-c: AVOC voting — works, but averaging beats selection."""
    dataset = fig7_full.dataset.stack_a
    benchmark.pedantic(
        run_voter_series, args=(make_uc2_voter("avoc"), dataset),
        iterations=1, rounds=3,
    )
    # AVOC still crushes the single-beacon baseline...
    assert fig7_full.instability("avoc_voting") < (
        fig7_full.instability("single_beacon") / 2
    )
    # ... but the averaging collation is the better option here (§7).
    assert fig7_full.instability("nine_average") < fig7_full.instability(
        "avoc_voting"
    )
    print("\nFig. 7-c — 9-beacon AVOC voting per stack:")
    print(render_series(fig7_full.avoc_voting))
    print(f"unstable calls: {fig7_full.instability('avoc_voting')}/297")


def test_fig7_collation_groups_and_history_irrelevance(benchmark, fig7_full):
    """§7 observations: 2 collation groups; history method irrelevant."""
    dataset = fig7_full.dataset.stack_b
    benchmark.pedantic(
        run_voter_series, args=(make_uc2_voter("standard"), dataset),
        iterations=1, rounds=3,
    )
    instability = fig7_full.algorithm_instability()
    averaging = [instability[a] for a in FIG7_COLLATION_GROUPS["averaging"]]
    selection = [instability[a] for a in FIG7_COLLATION_GROUPS["selection"]]
    # Between-group gap exists; within-group spread is small.
    assert max(averaging) < min(selection)
    assert max(averaging) - min(averaging) <= 5
    assert max(selection) - min(selection) <= 5
    print("\nPer-algorithm closest-stack instability (collation groups):")
    rows = [[alg, count] for alg, count in instability.items()]
    print(render_table(["algorithm", "unstable calls"], rows))
