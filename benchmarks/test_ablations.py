"""Ablations of the design choices called out in DESIGN.md §7.

Each ablation varies one design axis, regenerates the UC-1 fault
experiment (or UC-2 where noted) and reports the outcome shape.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ambiguity import unstable_rounds
from repro.analysis.convergence import convergence_round
from repro.analysis.diff import error_injection_diff, run_voter_series
from repro.analysis.report import render_table
from repro.datasets.ble_uc2 import UC2Config, generate_uc2_dataset
from repro.datasets.injection import offset_fault
from repro.datasets.light_uc1 import UC1Config, generate_uc1_dataset
from repro.experiments.uc1 import exclusion_round
from repro.voting.avoc import AvocVoter
from repro.voting.hybrid import HybridVoter
from repro.voting.module_elimination import ModuleEliminationVoter
from repro.voting.soft_dynamic import SoftDynamicThresholdVoter

N_ROUNDS = 600


def _datasets():
    clean = generate_uc1_dataset(UC1Config(n_rounds=N_ROUNDS))
    return clean, offset_fault(clean, "E4", 6.0)


def test_ablation_history_policy(benchmark):
    """Additive reward/penalty vs EMA records for Me."""
    clean, faulty = _datasets()

    def run(policy):
        params = ModuleEliminationVoter.default_params().with_overrides(
            history_policy=policy
        )
        return exclusion_round(ModuleEliminationVoter(params), faulty, "E4")

    benchmark.pedantic(run, args=("additive",), iterations=1, rounds=1)
    rows = [[policy, run(policy)] for policy in ("additive", "ema")]
    print("\nAblation: Me history policy vs E4 exclusion round:")
    print(render_table(["policy", "exclusion round"], rows))
    # Both policies eliminate the faulty module within a few rounds.
    assert all(row[1] <= 5 for row in rows)


def test_ablation_soft_threshold_sweep(benchmark):
    """Sdt's k controls how harshly borderline modules are scored."""
    clean, _ = _datasets()

    def borderline_record(k):
        params = SoftDynamicThresholdVoter.default_params().with_overrides(
            soft_threshold=k, history_policy="ema", learning_rate=0.3
        )
        voter = SoftDynamicThresholdVoter(params)
        run_voter_series(voter, clean.slice(0, 200))
        return voter.history.get("E3")  # the borderline-low sensor

    benchmark.pedantic(borderline_record, args=(2.0,), iterations=1, rounds=1)
    ks = (1.0, 1.5, 2.0, 4.0, 8.0)
    records = [borderline_record(k) for k in ks]
    print("\nAblation: Sdt soft threshold k vs E3's record after 200 rounds:")
    print(render_table(["k", "E3 record"], list(zip(ks, records))))
    # A wider soft zone forgives the borderline module more.
    assert records[-1] >= records[0]


def test_ablation_elimination_mode(benchmark):
    """Fixed-cutoff vs below-mean vs no elimination for Hybrid."""
    clean, faulty = _datasets()

    def run(mode):
        params = HybridVoter.default_params().with_overrides(elimination=mode)
        return exclusion_round(HybridVoter(params), faulty, "E4")

    benchmark.pedantic(run, args=("fixed",), iterations=1, rounds=1)
    rows = [[mode, run(mode)] for mode in ("fixed", "mean", "none")]
    print("\nAblation: Hybrid elimination mode vs E4 exclusion round:")
    print(render_table(["mode", "exclusion round"], rows))
    by_mode = dict((row[0], row[1]) for row in rows)
    assert by_mode["mean"] <= by_mode["fixed"] <= 10
    assert by_mode["none"] == N_ROUNDS  # soft weights alone never zero E4


def test_ablation_bootstrap_mode(benchmark):
    """AVOC's trigger: auto vs always vs never."""
    clean, faulty = _datasets()

    def run(mode):
        params = AvocVoter.default_params().with_overrides(bootstrap_mode=mode)
        voter = AvocVoter(params)
        diff = error_injection_diff(lambda: AvocVoter(params), clean, faulty)
        run_voter_series(voter, faulty.slice(0, 50))
        return voter.bootstraps_used, float(np.abs(diff[0]))

    benchmark.pedantic(run, args=("auto",), iterations=1, rounds=1)
    rows = []
    for mode in ("auto", "always", "never"):
        bootstraps, spike = run(mode)
        rows.append([mode, bootstraps, round(spike, 3)])
    print("\nAblation: AVOC bootstrap mode (bootstraps in 50 rounds, |diff[0]|):")
    print(render_table(["mode", "bootstraps", "round-0 spike"], rows))
    by_mode = {row[0]: row for row in rows}
    assert by_mode["auto"][1] == 1  # used exactly once (the paper's case)
    assert by_mode["always"][1] == 50
    assert by_mode["never"][1] == 0
    assert by_mode["never"][2] > by_mode["auto"][2]  # spike without bootstrap


def test_ablation_collation_per_use_case(benchmark):
    """The Q3 conclusion: no collation is optimal for all scenarios."""
    clean, faulty = _datasets()
    uc2 = generate_uc2_dataset(UC2Config())

    def uc1_settling(collation):
        params = AvocVoter.default_params().with_overrides(collation=collation)
        diff = error_injection_diff(lambda: AvocVoter(params), clean, faulty)
        return convergence_round(diff, tolerance=0.3)

    def uc2_instability(collation):
        params = AvocVoter.default_params().with_overrides(
            collation=collation, error=0.10
        )
        series = {
            stack: run_voter_series(AvocVoter(params), ds)
            for stack, ds in uc2.stacks().items()
        }
        return unstable_rounds(series["A"], series["B"])

    benchmark.pedantic(uc1_settling, args=("MEAN",), iterations=1, rounds=1)
    rows = []
    for collation in ("MEAN", "MEAN_NEAREST_NEIGHBOR", "MEDIAN"):
        rows.append([collation, uc1_settling(collation), uc2_instability(collation)])
    print("\nAblation: collation per use case (UC-1 settling / UC-2 instability):")
    print(render_table(["collation", "UC-1 settling round", "UC-2 unstable calls"], rows))
    by_collation = {row[0]: row for row in rows}
    # On UC-2, averaging beats MNN selection (paper's conclusion).
    assert by_collation["MEAN"][2] <= by_collation["MEAN_NEAREST_NEIGHBOR"][2]


def test_ablation_vehicle_speed(benchmark):
    """§3's caveat: CST vehicles at 8.3 m/s get ~99 % fewer samples.

    Sweeping the robot speed shows how positioning quality degrades as
    the measurement budget shrinks from 297 rounds (0.09 m/s) to a
    handful (8.3 m/s) — redundancy keeps the endpoint calls right even
    when the crossover region can no longer be resolved.
    """
    from repro.analysis.ambiguity import classification_accuracy
    from repro.experiments.uc2 import make_uc2_voter

    def accuracy_at(speed):
        n_rounds = max(3, int(297 * 0.09 / speed))
        uc2 = generate_uc2_dataset(
            UC2Config(robot_speed_mps=speed, n_rounds=n_rounds)
        )
        series = {
            stack: run_voter_series(make_uc2_voter("average"), ds)
            for stack, ds in uc2.stacks().items()
        }
        return n_rounds, classification_accuracy(
            series["A"], series["B"], uc2.true_closest()
        )

    benchmark.pedantic(accuracy_at, args=(0.9,), iterations=1, rounds=1)
    speeds = (0.09, 0.9, 8.3)
    rows = []
    accuracies = {}
    for speed in speeds:
        n_rounds, accuracy = accuracy_at(speed)
        accuracies[speed] = accuracy
        rows.append([speed, n_rounds, f"{accuracy:.1%}"])
    print("\nAblation: vehicle speed vs closest-stack accuracy:")
    print(render_table(["speed (m/s)", "rounds", "accuracy"], rows))
    # Even at CST speed the endpoint calls remain usable (> coin flip
    # by a wide margin); the slow robot resolves the crossover best.
    assert accuracies[0.09] >= accuracies[8.3] - 0.05
    assert accuracies[8.3] > 0.6


def test_ablation_redundancy_sweep(benchmark):
    """UC-2 with 1, 3, 5, 9 beacons per stack: redundancy pays."""
    def instability_for(n_beacons):
        uc2 = generate_uc2_dataset(UC2Config(beacons_per_stack=n_beacons))
        from repro.experiments.uc2 import make_uc2_voter

        series = {
            stack: run_voter_series(make_uc2_voter("average"), ds)
            for stack, ds in uc2.stacks().items()
        }
        return unstable_rounds(series["A"], series["B"])

    benchmark.pedantic(instability_for, args=(3,), iterations=1, rounds=1)
    counts = {n: instability_for(n) for n in (1, 3, 5, 9)}
    print("\nAblation: beacons per stack vs unstable closest-stack calls:")
    print(render_table(["beacons", "unstable calls"], list(counts.items())))
    assert counts[9] < counts[1]
    assert counts[3] < counts[1]
