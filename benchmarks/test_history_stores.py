"""History datastore backends compared (the §7 bottleneck, itemised).

Times a full history-aware voting round against every store backend —
in-memory, JSONL append log, SQLite, and the write-behind cache over
each durable backend — and checks the ordering a deployment would base
its choice on.
"""

from __future__ import annotations

import itertools
import time

from repro.analysis.report import render_table
from repro.history.cached import WriteBehindStore
from repro.history.file import JsonlHistoryStore
from repro.history.memory import MemoryHistoryStore
from repro.history.packed import PackedHistoryStore
from repro.history.sqlite import SqliteHistoryStore
from repro.history.tiered import TieredHistoryStore
from repro.types import Round
from repro.voting.hybrid import HybridVoter

VALUES = [18.0, 18.1, 17.9, 18.15, 18.05]


def _time_store(store, n=200):
    voter = HybridVoter(history_store=store)
    counter = itertools.count()
    rounds = [Round.from_values(next(counter), VALUES) for _ in range(n)]
    start = time.perf_counter()
    for voting_round in rounds:
        voter.vote(voting_round)
    return (time.perf_counter() - start) / n


def test_store_backend_comparison(benchmark, tmp_path):
    def measure():
        _time_store(None, n=100)  # warm caches before comparing
        return {
            "none (in-process)": _time_store(None),
            "memory": _time_store(MemoryHistoryStore()),
            "jsonl": _time_store(
                JsonlHistoryStore(tmp_path / "a.jsonl", compact_after=512)
            ),
            "sqlite": _time_store(SqliteHistoryStore(tmp_path / "a.db")),
            "jsonl+write-behind": _time_store(
                WriteBehindStore(
                    JsonlHistoryStore(tmp_path / "b.jsonl", compact_after=512),
                    flush_every=16,
                )
            ),
            "sqlite+write-behind": _time_store(
                WriteBehindStore(
                    SqliteHistoryStore(tmp_path / "b.db"), flush_every=16
                )
            ),
            "packed": _time_store(
                PackedHistoryStore(tmp_path / "packed").store_for("s")
            ),
            "tiered(packed)": _time_store(
                TieredHistoryStore(
                    PackedHistoryStore(tmp_path / "tiered")
                ).store_for("s")
            ),
            "tiered(packed)+flush16": _time_store(
                TieredHistoryStore(
                    PackedHistoryStore(tmp_path / "tiered16"), flush_every=16
                ).store_for("s")
            ),
        }

    timings = benchmark.pedantic(measure, iterations=1, rounds=1)
    rows = [[name, f"{t * 1e6:.1f}"] for name, t in timings.items()]
    print("\nHistory-aware round latency per store backend (µs):")
    print(render_table(["backend", "µs/round"], rows))

    # Only orderings with large expected effect sizes are asserted —
    # these are micro-benchmarks on a shared host, and small deltas
    # (e.g. WAL-mode SQLite vs its write-behind wrapper) sit inside the
    # scheduling jitter.
    slack = 1.10
    assert timings["none (in-process)"] <= timings["jsonl"] * slack
    assert timings["jsonl+write-behind"] <= timings["jsonl"] * slack
    # The write-behind wrapper never costs more than ~50 % over its
    # backing store (it only adds dict copies between flushes).
    assert timings["sqlite+write-behind"] <= timings["sqlite"] * 1.5
    assert timings["jsonl"] > timings["none (in-process)"] * 0.9
    # Batching writes through the tiered hot set must not cost more
    # than the write-through path (it skips 15 of 16 block appends).
    assert (
        timings["tiered(packed)+flush16"] <= timings["tiered(packed)"] * 1.1
    )


def test_jsonl_log_growth_is_bounded_by_compaction(benchmark, tmp_path):
    def run():
        store = JsonlHistoryStore(tmp_path / "grow.jsonl", compact_after=64)
        voter = HybridVoter(history_store=store)
        counter = itertools.count()
        for _ in range(400):
            voter.vote(Round.from_values(next(counter), VALUES))
        return store.snapshot_count()

    snapshots = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nJSONL snapshots on disk after 400 rounds: {snapshots}")
    assert snapshots <= 64
