"""Cluster perf baseline.

Two recorded numbers, written to ``BENCH_cluster.json``:

* **round throughput** — wall-clock to fuse the same 16-series workload
  through a 1-shard vs a 4-shard cluster (``replicas=1``, process-mode
  backends, micro-batched ``vote_batch`` traffic).  Floor: >= 2x at
  4 shards — enforced only on hosts with at least 4 CPUs (single-core
  containers record honest numbers with ``enforced: false``).
* **failover bit-identity** — a 500-round run against a 3-shard,
  2-replica cluster with one backend SIGKILLed at round 250 and
  ``auto_restart`` on, so the supervisor's restart + history-resync
  path is exercised mid-run.  Every round must be answered and every
  value must be bit-identical to a single uninterrupted engine.
  Always enforced.
"""

from __future__ import annotations

import os
import pathlib
import signal
import time

import numpy as np
import pytest

from benchmarks.baseline_io import merge_baseline
from repro.cluster.supervisor import FusionCluster
from repro.runtime.pool import fork_available
from repro.vdx.examples import AVOC_SPEC
from repro.vdx.factory import build_engine

_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

THROUGHPUT_FLOOR = 2.0

MODULES = ["E1", "E2", "E3", "E4", "E5"]
N_SERIES = 16
ROUNDS_PER_SERIES = 400
CHUNK = 100


def _merge_report(key, payload):
    # Atomic temp-file + os.replace write: a killed job can never leave
    # a truncated baseline for the artifact upload or the gate.
    merge_baseline(_OUT, key, payload)


def _workload(seed=17):
    rng = np.random.default_rng(seed)
    return {
        f"series-{k}": (
            18.0 + 0.1 * rng.standard_normal((ROUNDS_PER_SERIES, len(MODULES)))
        ).tolist()
        for k in range(N_SERIES)
    }


def _drive(cluster, workload):
    """Push the workload through the gateway in vote_batch chunks."""
    with cluster.client() as client:
        start = time.perf_counter()
        for lo in range(0, ROUNDS_PER_SERIES, CHUNK):
            rounds = list(range(lo, lo + CHUNK))
            batches = [
                {"series": series, "rounds": rounds, "modules": MODULES,
                 "rows": rows[lo:lo + CHUNK]}
                for series, rows in workload.items()
            ]
            results = client.vote_batch(batches)
            assert len(results) == N_SERIES
        return time.perf_counter() - start


def test_throughput_at_4_shards(benchmark, capsys):
    """The same 16-series workload on 1 shard vs 4 shards."""
    if not fork_available():
        pytest.skip("needs the fork start method")
    workload = _workload()

    def run(shards):
        with FusionCluster(
            AVOC_SPEC, n_shards=shards, replicas=1, mode="process",
            auto_restart=False,
        ) as cluster:
            return _drive(cluster, workload)

    def measure():
        return run(1), run(4)

    one_s, four_s = benchmark.pedantic(measure, iterations=1, rounds=1)
    speedup = one_s / four_s
    enforced = (os.cpu_count() or 1) >= 4
    total_rounds = N_SERIES * ROUNDS_PER_SERIES
    _merge_report(
        "throughput",
        {
            "series": N_SERIES,
            "rounds_per_series": ROUNDS_PER_SERIES,
            "total_rounds": total_rounds,
            "shards_1_seconds": round(one_s, 3),
            "shards_4_seconds": round(four_s, 3),
            "rounds_per_second_at_4_shards": round(total_rounds / four_s),
            "speedup": round(speedup, 2),
            "floor": THROUGHPUT_FLOOR,
            "enforced": enforced,
        },
    )
    mode = (
        "enforced" if enforced else f"recorded only: {os.cpu_count()} CPU(s)"
    )
    with capsys.disabled():
        print(
            f"\ncluster throughput: 1 shard {one_s:.2f}s, 4 shards "
            f"{four_s:.2f}s, {speedup:.2f}x (floor {THROUGHPUT_FLOOR}x, {mode})"
        )
    if enforced:
        assert speedup >= THROUGHPUT_FLOOR, (
            f"4-shard speedup {speedup:.2f}x below the "
            f"{THROUGHPUT_FLOOR}x floor"
        )


def test_failover_bit_identity(benchmark, capsys):
    """SIGKILL a replica mid-run (restarts on): no lost rounds,
    identical outputs — including from the restarted, resynced shard."""
    if not fork_available():
        pytest.skip("needs the fork start method")
    n_rounds, kill_at = 500, 250
    rng = np.random.default_rng(29)
    matrix = 18.0 + 0.1 * rng.standard_normal((n_rounds, len(MODULES)))
    reference = build_engine(AVOC_SPEC)
    expected = reference.process_batch(matrix, MODULES).values

    def measure():
        answered = 0
        identical = True
        with FusionCluster(
            AVOC_SPEC, n_shards=3, replicas=2, mode="process",
            auto_restart=True, probe_interval=0.1,
        ) as cluster:
            with cluster.client() as client:
                victim = client.route("bench")["replicas"][0]
                start = time.perf_counter()
                for i in range(n_rounds):
                    if i == kill_at:
                        os.kill(
                            cluster.backends[victim].pid, signal.SIGKILL
                        )
                    result = client.vote(
                        i, dict(zip(MODULES, matrix[i].tolist())),
                        series="bench",
                    )
                    answered += 1
                    want = expected[i]
                    want = None if np.isnan(want) else float(want)
                    if result["value"] != want:
                        identical = False
                elapsed = time.perf_counter() - start
        return answered, identical, elapsed

    answered, identical, elapsed = benchmark.pedantic(
        measure, iterations=1, rounds=1
    )
    _merge_report(
        "failover",
        {
            "rounds": n_rounds,
            "killed_at": kill_at,
            "answered": answered,
            "bit_identical": identical,
            "run_seconds": round(elapsed, 3),
            "enforced": True,
        },
    )
    with capsys.disabled():
        print(
            f"\nfailover: {answered}/{n_rounds} rounds answered across a "
            f"SIGKILL at {kill_at}, bit-identical={identical}, "
            f"{elapsed:.2f}s"
        )
    assert answered == n_rounds, "rounds were lost across the failover"
    assert identical, "failover changed fused values"
