"""Ratchet-up line-coverage gate for the tier-1 suite.

CI runs the tier-1 suite under ``coverage`` (one matrix leg) and then
invokes this script, which compares the measured total line coverage
against the floor recorded in ``COVERAGE_FLOOR.json`` at the repo root.

The gate is ratchet-up only: a drop below the committed floor fails the
build, and when the measured total comfortably exceeds the floor the
script asks (without failing) for the floor to be raised in the same
spirit as the BENCH_*.json baselines.  Lowering the floor requires an
explicit edit to COVERAGE_FLOOR.json in a reviewed commit.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
FLOOR_FILE = ROOT / "COVERAGE_FLOOR.json"

#: Headroom above the floor before the script nags for a ratchet.
RATCHET_HINT_MARGIN = 3.0


def measured_total() -> float:
    """Total line coverage (percent) from the current ``.coverage`` data."""
    out = subprocess.check_output(
        [sys.executable, "-m", "coverage", "report", "--format=total"],
        cwd=ROOT,
        text=True,
    )
    return float(out.strip())


def main() -> int:
    floor = float(json.loads(FLOOR_FILE.read_text())["line_percent_floor"])
    total = measured_total()
    print(f"coverage gate: measured {total:.2f}% against floor {floor:.2f}%")
    if total < floor:
        print(
            f"FAIL: total line coverage {total:.2f}% fell below the "
            f"committed floor {floor:.2f}% (COVERAGE_FLOOR.json). "
            "Add tests for the new code, or (only with review) lower "
            "the floor.",
            file=sys.stderr,
        )
        return 1
    if total >= floor + RATCHET_HINT_MARGIN:
        print(
            f"hint: coverage exceeds the floor by "
            f"{total - floor:.2f} points — consider ratcheting "
            f"COVERAGE_FLOOR.json up to {total - 1.0:.1f}."
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
