"""The abstract's headline claim: clustering bootstrap boosts
convergence by 4×.

Measured as the ratio of 1-indexed outlier-exclusion rounds between
plain Hybrid and AVOC (the paper's §7 metric (a): "voting rounds
required to converge back to the baseline, and by extension how quickly
outliers are eliminated"), across several dataset seeds.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import render_table
from repro.datasets.light_uc1 import UC1Config
from repro.experiments import run_fig6

SEEDS = (1202, 1, 7, 42, 99)


def test_bootstrap_convergence_boost(benchmark):
    def measure_one(seed=1202):
        return run_fig6(UC1Config(n_rounds=300, seed=seed))

    benchmark.pedantic(measure_one, iterations=1, rounds=1)

    rows = []
    boosts = []
    for seed in SEEDS:
        result = run_fig6(UC1Config(n_rounds=300, seed=seed))
        rows.append(
            [
                seed,
                result.exclusion_rounds["hybrid"],
                result.exclusion_rounds["avoc"],
                f"{result.boost:.2f}x",
            ]
        )
        boosts.append(result.boost)
    print("\nConvergence boost (AVOC vs Hybrid), per dataset seed:")
    print(
        render_table(
            ["seed", "hybrid exclusion round", "avoc exclusion round", "boost"],
            rows,
        )
    )
    mean_boost = float(np.mean(boosts))
    print(f"mean boost: {mean_boost:.2f}x (paper claims 4x)")
    assert 3.0 <= mean_boost <= 6.0
    assert min(boosts) >= 2.0


def test_boost_holds_at_full_scale(benchmark, fig6_full):
    benchmark.pedantic(lambda: fig6_full.boost, iterations=1, rounds=1)
    assert 3.0 <= fig6_full.boost <= 6.0
    print(f"\nfull-scale (10k rounds) boost: {fig6_full.boost:.2f}x")
