"""Atomic writes for the recorded ``BENCH_*.json`` baselines.

The benchmark jobs rewrite the committed baseline files in place and CI
uploads them as artifacts.  A plain ``write_text`` can be interrupted
mid-write (job timeout, runner eviction, SIGKILL), leaving a truncated
JSON file that the artifact upload and the bench-regression gate would
then consume.  Writing to a sibling temp file and ``os.replace``-ing it
over the target makes the update all-or-nothing: readers only ever see
the old complete baseline or the new complete baseline.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict

from repro.util import atomic_write


def write_baseline(path: Path, report: Dict[str, Any]) -> None:
    """Atomically serialise ``report`` to ``path``.

    Delegates to :func:`repro.util.atomic_write` (sibling mkstemp +
    ``os.replace``): on any failure the partial temp file is removed
    and the previous baseline is left untouched.
    """
    atomic_write(Path(path), json.dumps(report, indent=2, sort_keys=True) + "\n")


def merge_baseline(path: Path, key: str, payload: Dict[str, Any]) -> None:
    """Merge one section into a baseline file, atomically.

    Reads the existing report (if any), replaces section ``key``,
    stamps ``cpu_count`` (the floors that depend on host parallelism
    record it for the gate's context) and writes the result through
    :func:`write_baseline`.
    """
    path = Path(path)
    report: Dict[str, Any] = {}
    if path.exists():
        report = json.loads(path.read_text())
    report["cpu_count"] = os.cpu_count()
    report[key] = payload
    write_baseline(path, report)
