"""Redundancy sweep on the smart-shelf categorical scenario.

The paper's introduction claims high redundancy pays off in smart-shelf
deployments; this benchmark quantifies it: occupancy accuracy of the
categorical weighted-majority voter as the sensor count grows, with a
fixed number of defective sensors in the mix.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.datasets.shelf import ShelfConfig, generate_shelf_dataset
from repro.types import Round
from repro.voting.categorical import CategoricalMajorityVoter


def fused_accuracy(n_sensors: int, n_rounds: int = 300) -> float:
    config = ShelfConfig(
        n_rounds=n_rounds,
        n_sensors=n_sensors,
        n_defective=min(2, (n_sensors - 1) // 2),
        healthy_accuracy=0.85,
    )
    dataset = generate_shelf_dataset(config)
    voter = CategoricalMajorityVoter(history_mode="me")
    outputs = []
    for number in range(dataset.n_rounds):
        outcome = voter.vote(Round.from_mapping(number, dataset.round_values(number)))
        outputs.append(outcome.value)
    return dataset.accuracy_of(outputs)


def test_shelf_redundancy_sweep(benchmark):
    benchmark.pedantic(fused_accuracy, args=(9,), iterations=1, rounds=1)
    counts = (3, 5, 9, 24)
    accuracies = {n: fused_accuracy(n) for n in counts}
    rows = [[n, f"{a:.1%}"] for n, a in accuracies.items()]
    print("\nShelf occupancy accuracy vs proximity-sensor redundancy:")
    print(render_table(["sensors", "fused accuracy"], rows))
    # Accuracy grows monotonically with redundancy, and two dozen
    # sensors are near-perfect despite individuals at 85 % (and one
    # defective sensor dragging each configuration).
    ordered = [accuracies[n] for n in counts]
    assert all(a <= b + 1e-9 for a, b in zip(ordered, ordered[1:]))
    assert accuracies[24] > 0.99
