"""§7 latency claims.

The paper: "the system can execute a history-aware voting round in
1 millisecond and a stateless vote in 50 microseconds (datastore reads
and writes being the bottleneck)" — on a Raspberry Pi 4.  We measure
the same operations on the host; the absolute numbers will be faster
than the Pi's, the *ordering* (stateless ≪ history-aware ≪ store-backed)
is the reproducible shape.
"""

from __future__ import annotations

import itertools

import pytest

from repro.history.file import JsonlHistoryStore
from repro.types import Round
from repro.voting.avoc import AvocVoter
from repro.voting.hybrid import HybridVoter
from repro.voting.standard import StandardVoter
from repro.voting.stateless import MeanVoter

VALUES = [18.0, 18.1, 17.9, 18.15, 18.05]


def _rounds():
    counter = itertools.count()
    return lambda: Round.from_values(next(counter), VALUES)


def test_stateless_vote_latency(benchmark):
    """Paper: a stateless vote takes ~50 µs (Pi-class hardware)."""
    voter = MeanVoter()
    next_round = _rounds()
    result = benchmark(lambda: voter.vote(next_round()))
    assert result.value == pytest.approx(sum(VALUES) / len(VALUES))
    # Generous ceiling: must be well under a millisecond on any host.
    assert benchmark.stats["mean"] < 1e-3


def test_history_aware_round_latency(benchmark):
    """Paper: a history-aware round takes ~1 ms (Pi-class hardware)."""
    voter = HybridVoter()
    next_round = _rounds()
    benchmark(lambda: voter.vote(next_round()))
    assert benchmark.stats["mean"] < 5e-3


def test_standard_round_latency(benchmark):
    voter = StandardVoter()
    next_round = _rounds()
    benchmark(lambda: voter.vote(next_round()))
    assert benchmark.stats["mean"] < 5e-3


def test_avoc_round_latency(benchmark):
    voter = AvocVoter()
    next_round = _rounds()
    benchmark(lambda: voter.vote(next_round()))
    assert benchmark.stats["mean"] < 5e-3


def test_store_backed_round_latency(benchmark, tmp_path):
    """The datastore write is the bottleneck, exactly as §7 states."""
    store = JsonlHistoryStore(tmp_path / "history.jsonl", compact_after=512)
    voter = HybridVoter(history_store=store)
    next_round = _rounds()
    benchmark(lambda: voter.vote(next_round()))
    assert benchmark.stats["mean"] < 50e-3


def test_write_behind_cache_recovers_most_of_the_cost(benchmark, tmp_path):
    """The write-behind cache amortises the datastore bottleneck."""
    import time

    from repro.history.cached import WriteBehindStore

    def time_voter(voter, n=300):
        next_round = _rounds()
        start = time.perf_counter()
        for _ in range(n):
            voter.vote(next_round())
        return (time.perf_counter() - start) / n

    def measure():
        direct = time_voter(
            HybridVoter(
                history_store=JsonlHistoryStore(
                    tmp_path / "direct.jsonl", compact_after=512
                )
            )
        )
        cached = time_voter(
            HybridVoter(
                history_store=WriteBehindStore(
                    JsonlHistoryStore(tmp_path / "cached.jsonl", compact_after=512),
                    flush_every=16,
                )
            )
        )
        memory = time_voter(HybridVoter())
        return direct, cached, memory

    direct, cached, memory = benchmark.pedantic(measure, iterations=1, rounds=1)
    print(
        f"\ndirect store: {direct*1e6:.1f} µs  "
        f"write-behind: {cached*1e6:.1f} µs  "
        f"in-memory: {memory*1e6:.1f} µs"
    )
    # 10 % jitter allowance: on a loaded host the cached and in-memory
    # paths are close enough to swap places occasionally.
    assert memory <= cached * 1.10
    assert cached <= direct * 1.10


def test_latency_ordering_matches_paper(benchmark, tmp_path):
    """stateless < history-aware < datastore-backed."""
    import time

    def time_voter(voter, n=300):
        next_round = _rounds()
        start = time.perf_counter()
        for _ in range(n):
            voter.vote(next_round())
        return (time.perf_counter() - start) / n

    def measure():
        stateless = time_voter(MeanVoter())
        history = time_voter(HybridVoter())
        backed = time_voter(
            HybridVoter(
                history_store=JsonlHistoryStore(
                    tmp_path / "h.jsonl", compact_after=512
                )
            )
        )
        return stateless, history, backed

    stateless, history, backed = benchmark.pedantic(
        measure, iterations=1, rounds=1
    )
    print(
        f"\nstateless: {stateless*1e6:.1f} µs  "
        f"history-aware: {history*1e6:.1f} µs  "
        f"store-backed: {backed*1e6:.1f} µs"
    )
    assert stateless < history < backed
