"""§7 latency claims.

The paper: "the system can execute a history-aware voting round in
1 millisecond and a stateless vote in 50 microseconds (datastore reads
and writes being the bottleneck)" — on a Raspberry Pi 4.  We measure
the same operations on the host; the absolute numbers will be faster
than the Pi's, the *ordering* (stateless ≪ history-aware ≪ store-backed)
is the reproducible shape.
"""

from __future__ import annotations

import itertools

import pytest

from repro.history.file import JsonlHistoryStore
from repro.types import Round
from repro.voting.avoc import AvocVoter
from repro.voting.hybrid import HybridVoter
from repro.voting.standard import StandardVoter
from repro.voting.stateless import MeanVoter

VALUES = [18.0, 18.1, 17.9, 18.15, 18.05]


def _rounds():
    counter = itertools.count()
    return lambda: Round.from_values(next(counter), VALUES)


def test_stateless_vote_latency(benchmark):
    """Paper: a stateless vote takes ~50 µs (Pi-class hardware)."""
    voter = MeanVoter()
    next_round = _rounds()
    result = benchmark(lambda: voter.vote(next_round()))
    assert result.value == pytest.approx(sum(VALUES) / len(VALUES))
    # Generous ceiling: must be well under a millisecond on any host.
    assert benchmark.stats["mean"] < 1e-3


def test_history_aware_round_latency(benchmark):
    """Paper: a history-aware round takes ~1 ms (Pi-class hardware)."""
    voter = HybridVoter()
    next_round = _rounds()
    benchmark(lambda: voter.vote(next_round()))
    assert benchmark.stats["mean"] < 5e-3


def test_standard_round_latency(benchmark):
    voter = StandardVoter()
    next_round = _rounds()
    benchmark(lambda: voter.vote(next_round()))
    assert benchmark.stats["mean"] < 5e-3


def test_avoc_round_latency(benchmark):
    voter = AvocVoter()
    next_round = _rounds()
    benchmark(lambda: voter.vote(next_round()))
    assert benchmark.stats["mean"] < 5e-3


def test_store_backed_round_latency(benchmark, tmp_path):
    """The datastore write is the bottleneck, exactly as §7 states."""
    store = JsonlHistoryStore(tmp_path / "history.jsonl", compact_after=512)
    voter = HybridVoter(history_store=store)
    next_round = _rounds()
    benchmark(lambda: voter.vote(next_round()))
    assert benchmark.stats["mean"] < 50e-3


def test_write_behind_cache_recovers_most_of_the_cost(benchmark, tmp_path):
    """The write-behind cache amortises the datastore bottleneck."""
    import time

    from repro.history.cached import WriteBehindStore

    def time_voter(voter, n=300):
        next_round = _rounds()
        start = time.perf_counter()
        for _ in range(n):
            voter.vote(next_round())
        return (time.perf_counter() - start) / n

    def measure():
        direct = time_voter(
            HybridVoter(
                history_store=JsonlHistoryStore(
                    tmp_path / "direct.jsonl", compact_after=512
                )
            )
        )
        cached = time_voter(
            HybridVoter(
                history_store=WriteBehindStore(
                    JsonlHistoryStore(tmp_path / "cached.jsonl", compact_after=512),
                    flush_every=16,
                )
            )
        )
        memory = time_voter(HybridVoter())
        return direct, cached, memory

    direct, cached, memory = benchmark.pedantic(measure, iterations=1, rounds=1)
    print(
        f"\ndirect store: {direct*1e6:.1f} µs  "
        f"write-behind: {cached*1e6:.1f} µs  "
        f"in-memory: {memory*1e6:.1f} µs"
    )
    # 10 % jitter allowance: on a loaded host the cached and in-memory
    # paths are close enough to swap places occasionally.
    assert memory <= cached * 1.10
    assert cached <= direct * 1.10


def test_latency_ordering_matches_paper(benchmark, tmp_path):
    """stateless < history-aware < datastore-backed."""
    import time

    def time_voter(voter, n=300):
        next_round = _rounds()
        start = time.perf_counter()
        for _ in range(n):
            voter.vote(next_round())
        return (time.perf_counter() - start) / n

    def measure():
        stateless = time_voter(MeanVoter())
        history = time_voter(HybridVoter())
        backed = time_voter(
            HybridVoter(
                history_store=JsonlHistoryStore(
                    tmp_path / "h.jsonl", compact_after=512
                )
            )
        )
        return stateless, history, backed

    stateless, history, backed = benchmark.pedantic(
        measure, iterations=1, rounds=1
    )
    print(
        f"\nstateless: {stateless*1e6:.1f} µs  "
        f"history-aware: {history*1e6:.1f} µs  "
        f"store-backed: {backed*1e6:.1f} µs"
    )
    assert stateless < history < backed


def test_batch_fusion_throughput_meets_speedup_floor(benchmark, capsys):
    """The vectorized batch core's recorded perf baseline.

    Feeds a 10'000-round, 8-module matrix through the legacy per-round
    loop and through :meth:`FusionEngine.process_batch`, asserts
    bit-identical outputs, and enforces the speedup floor: >=5x for the
    stateless kernels, >=2x for the sequential-with-preallocation
    history/clustering kernels.  The measured numbers are written to
    ``BENCH_latency.json`` in the repo root as the recorded baseline.
    """
    import json
    import pathlib
    import time

    import numpy as np

    from repro.fusion.engine import FusionEngine
    from repro.types import Round as _Round
    from repro.voting.registry import create_voter

    rng = np.random.default_rng(42)
    matrix = 18.0 + 0.1 * rng.standard_normal((10_000, 8))
    modules = [f"E{i+1}" for i in range(8)]

    def legacy(algorithm):
        engine = FusionEngine(create_voter(algorithm), roster=modules)
        start = time.perf_counter()
        values = [
            engine.process(
                _Round.from_mapping(
                    number, dict(zip(modules, row.tolist()))
                )
            ).value
            for number, row in enumerate(matrix)
        ]
        return time.perf_counter() - start, np.asarray(values, dtype=float)

    def batched(algorithm):
        engine = FusionEngine(create_voter(algorithm), roster=modules)
        start = time.perf_counter()
        batch = engine.process_batch(matrix, modules)
        return time.perf_counter() - start, batch.values

    floors = {"average": 5.0, "median": 5.0, "clustering": 2.0, "avoc": 2.0}

    def measure():
        report = {}
        for algorithm, floor in floors.items():
            loop_s, loop_values = legacy(algorithm)
            batch_s, batch_values = batched(algorithm)
            np.testing.assert_array_equal(loop_values, batch_values)
            report[algorithm] = {
                "rounds": int(matrix.shape[0]),
                "modules": int(matrix.shape[1]),
                "loop_seconds": round(loop_s, 4),
                "batch_seconds": round(batch_s, 4),
                "speedup": round(loop_s / batch_s, 2),
                "floor": floor,
                "batch_rounds_per_second": round(
                    matrix.shape[0] / batch_s, 1
                ),
            }
        return report

    report = benchmark.pedantic(measure, iterations=1, rounds=1)
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_latency.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    with capsys.disabled():
        for algorithm, row in report.items():
            print(
                f"\n{algorithm}: loop {row['loop_seconds']*1e3:.0f} ms, "
                f"batch {row['batch_seconds']*1e3:.0f} ms, "
                f"{row['speedup']:.1f}x (floor {row['floor']:.0f}x)"
            )
    for algorithm, row in report.items():
        assert row["speedup"] >= row["floor"], (
            f"{algorithm}: {row['speedup']:.2f}x below the "
            f"{row['floor']:.0f}x floor"
        )
