"""§7 latency claims.

The paper: "the system can execute a history-aware voting round in
1 millisecond and a stateless vote in 50 microseconds (datastore reads
and writes being the bottleneck)" — on a Raspberry Pi 4.  We measure
the same operations on the host; the absolute numbers will be faster
than the Pi's, the *ordering* (stateless ≪ history-aware ≪ store-backed)
is the reproducible shape.
"""

from __future__ import annotations

import itertools

import pytest

from repro.history.file import JsonlHistoryStore
from repro.types import Round
from repro.voting.avoc import AvocVoter
from repro.voting.hybrid import HybridVoter
from repro.voting.standard import StandardVoter
from repro.voting.stateless import MeanVoter

VALUES = [18.0, 18.1, 17.9, 18.15, 18.05]


def _rounds():
    counter = itertools.count()
    return lambda: Round.from_values(next(counter), VALUES)


def test_stateless_vote_latency(benchmark):
    """Paper: a stateless vote takes ~50 µs (Pi-class hardware)."""
    voter = MeanVoter()
    next_round = _rounds()
    result = benchmark(lambda: voter.vote(next_round()))
    assert result.value == pytest.approx(sum(VALUES) / len(VALUES))
    # Generous ceiling: must be well under a millisecond on any host.
    assert benchmark.stats["mean"] < 1e-3


def test_history_aware_round_latency(benchmark):
    """Paper: a history-aware round takes ~1 ms (Pi-class hardware)."""
    voter = HybridVoter()
    next_round = _rounds()
    benchmark(lambda: voter.vote(next_round()))
    assert benchmark.stats["mean"] < 5e-3


def test_standard_round_latency(benchmark):
    voter = StandardVoter()
    next_round = _rounds()
    benchmark(lambda: voter.vote(next_round()))
    assert benchmark.stats["mean"] < 5e-3


def test_avoc_round_latency(benchmark):
    voter = AvocVoter()
    next_round = _rounds()
    benchmark(lambda: voter.vote(next_round()))
    assert benchmark.stats["mean"] < 5e-3


def test_store_backed_round_latency(benchmark, tmp_path):
    """The datastore write is the bottleneck, exactly as §7 states."""
    store = JsonlHistoryStore(tmp_path / "history.jsonl", compact_after=512)
    voter = HybridVoter(history_store=store)
    next_round = _rounds()
    benchmark(lambda: voter.vote(next_round()))
    assert benchmark.stats["mean"] < 50e-3


def test_write_behind_cache_recovers_most_of_the_cost(benchmark, tmp_path):
    """The write-behind cache amortises the datastore bottleneck."""
    import time

    from repro.history.cached import WriteBehindStore

    def time_voter(voter, n=300):
        next_round = _rounds()
        start = time.perf_counter()
        for _ in range(n):
            voter.vote(next_round())
        return (time.perf_counter() - start) / n

    def measure():
        direct = time_voter(
            HybridVoter(
                history_store=JsonlHistoryStore(
                    tmp_path / "direct.jsonl", compact_after=512
                )
            )
        )
        cached = time_voter(
            HybridVoter(
                history_store=WriteBehindStore(
                    JsonlHistoryStore(tmp_path / "cached.jsonl", compact_after=512),
                    flush_every=16,
                )
            )
        )
        memory = time_voter(HybridVoter())
        return direct, cached, memory

    direct, cached, memory = benchmark.pedantic(measure, iterations=1, rounds=1)
    print(
        f"\ndirect store: {direct*1e6:.1f} µs  "
        f"write-behind: {cached*1e6:.1f} µs  "
        f"in-memory: {memory*1e6:.1f} µs"
    )
    # 10 % jitter allowance: on a loaded host the cached and in-memory
    # paths are close enough to swap places occasionally.
    assert memory <= cached * 1.10
    assert cached <= direct * 1.10


def test_latency_ordering_matches_paper(benchmark, tmp_path):
    """stateless < history-aware < datastore-backed."""
    import time

    def time_voter(voter, n=300):
        next_round = _rounds()
        start = time.perf_counter()
        for _ in range(n):
            voter.vote(next_round())
        return (time.perf_counter() - start) / n

    def measure():
        stateless = time_voter(MeanVoter())
        history = time_voter(HybridVoter())
        backed = time_voter(
            HybridVoter(
                history_store=JsonlHistoryStore(
                    tmp_path / "h.jsonl", compact_after=512
                )
            )
        )
        return stateless, history, backed

    stateless, history, backed = benchmark.pedantic(
        measure, iterations=1, rounds=1
    )
    print(
        f"\nstateless: {stateless*1e6:.1f} µs  "
        f"history-aware: {history*1e6:.1f} µs  "
        f"store-backed: {backed*1e6:.1f} µs"
    )
    assert stateless < history < backed


def test_batch_fusion_throughput_meets_speedup_floor(benchmark, capsys):
    """The vectorized batch core's recorded perf baseline.

    Feeds a 10'000-round, 8-module matrix through the legacy per-round
    loop and through :meth:`FusionEngine.process_batch`, asserts
    bit-identical outputs, and enforces the speedup floor: >=5x for the
    stateless kernels, >=20x for the segment-vectorized history voters
    (avoc, clustering).  The measured numbers are written to
    ``BENCH_latency.json`` in the repo root as the recorded baseline.
    """
    import pathlib
    import time

    import numpy as np

    from benchmarks.baseline_io import write_baseline
    from repro.fusion.engine import FusionEngine
    from repro.types import Round as _Round
    from repro.voting.registry import create_voter

    rng = np.random.default_rng(42)
    matrix = 18.0 + 0.1 * rng.standard_normal((10_000, 8))
    modules = [f"E{i+1}" for i in range(8)]

    def legacy(algorithm):
        engine = FusionEngine(create_voter(algorithm), roster=modules)
        start = time.perf_counter()
        values = [
            engine.process(
                _Round.from_mapping(
                    number, dict(zip(modules, row.tolist()))
                )
            ).value
            for number, row in enumerate(matrix)
        ]
        return time.perf_counter() - start, np.asarray(values, dtype=float)

    def batched(algorithm):
        engine = FusionEngine(create_voter(algorithm), roster=modules)
        start = time.perf_counter()
        batch = engine.process_batch(matrix, modules)
        return time.perf_counter() - start, batch.values

    floors = {"average": 5.0, "median": 5.0, "clustering": 20.0, "avoc": 20.0}

    def measure():
        report = {}
        for algorithm, floor in floors.items():
            loop_s, loop_values = legacy(algorithm)
            batch_s, batch_values = batched(algorithm)
            np.testing.assert_array_equal(loop_values, batch_values)
            report[algorithm] = {
                "rounds": int(matrix.shape[0]),
                "modules": int(matrix.shape[1]),
                "loop_seconds": round(loop_s, 4),
                "batch_seconds": round(batch_s, 4),
                "speedup": round(loop_s / batch_s, 2),
                "floor": floor,
                "batch_rounds_per_second": round(
                    matrix.shape[0] / batch_s, 1
                ),
            }
        return report

    report = benchmark.pedantic(measure, iterations=1, rounds=1)
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_latency.json"
    write_baseline(out, report)
    with capsys.disabled():
        for algorithm, row in report.items():
            print(
                f"\n{algorithm}: loop {row['loop_seconds']*1e3:.0f} ms, "
                f"batch {row['batch_seconds']*1e3:.0f} ms, "
                f"{row['speedup']:.1f}x (floor {row['floor']:.0f}x)"
            )
    for algorithm, row in report.items():
        assert row["speedup"] >= row["floor"], (
            f"{algorithm}: {row['speedup']:.2f}x below the "
            f"{row['floor']:.0f}x floor"
        )


def test_instrumented_fuse_stays_within_5pct_of_baseline(benchmark, capsys):
    """Observability must be free: instrumented fuse() keeps its speed.

    Two assertions, both load-independent ratios (absolute rounds/sec
    on a shared host swings far more than 5% between runs):

    * **zero-cost**: :meth:`FusionEngine.process_batch` against a live
      registry is within 5% of the same call against ``NULL_REGISTRY``
      (the disabled path, i.e. the pre-instrumentation baseline).
      Samples are interleaved and best-of-5 so load drift hits both
      sides equally.
    * **committed baseline**: the instrumented batch path keeps at
      least 95% of the per-algorithm ``speedup`` recorded in
      ``BENCH_latency.json`` — the same batch-vs-legacy-loop quantity
      the floor test records, so machine speed cancels out of the
      comparison against the committed numbers.
    """
    import json
    import pathlib
    import time

    import numpy as np

    from repro.fusion.engine import FusionEngine
    from repro.obs import NULL_REGISTRY, MetricsRegistry
    from repro.types import Round as _Round
    from repro.voting.registry import create_voter

    baseline_path = (
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_latency.json"
    )
    if not baseline_path.is_file():
        pytest.skip("no recorded BENCH_latency.json baseline")
    recorded = json.loads(baseline_path.read_text())

    rng = np.random.default_rng(42)
    matrix = 18.0 + 0.1 * rng.standard_normal((10_000, 8))
    modules = [f"E{i+1}" for i in range(8)]

    def batch_sample(algorithm, registry, inner):
        # One sample times `inner` consecutive batches so fast kernels
        # (sub-millisecond per batch) aren't judged on scheduler jitter.
        engine = FusionEngine(
            create_voter(algorithm), roster=modules, registry=registry
        )
        start = time.perf_counter()
        for _ in range(inner):
            engine.process_batch(matrix, modules)
        return (time.perf_counter() - start) / inner

    def loop_seconds(algorithm):
        engine = FusionEngine(
            create_voter(algorithm), roster=modules, registry=NULL_REGISTRY
        )
        start = time.perf_counter()
        for number, row in enumerate(matrix):
            engine.process(
                _Round.from_mapping(number, dict(zip(modules, row.tolist())))
            )
        return time.perf_counter() - start

    def overhead_sample(algorithm, registry, rows, inner):
        # Like batch_sample, but over a row slice: slow kernels are
        # sampled in ~25 ms slices so one load burst cannot shadow a
        # whole sampling side (the ratio is per-round, so a slice
        # measures the same per-round cost as the full matrix).
        engine = FusionEngine(
            create_voter(algorithm), roster=modules, registry=registry
        )
        sub = matrix[:rows]
        start = time.perf_counter()
        for _ in range(inner):
            engine.process_batch(sub, modules)
        return (time.perf_counter() - start) / inner

    def measure_one(algorithm):
        warmup = batch_sample(algorithm, NULL_REGISTRY, 1)
        throughput = matrix.shape[0] / max(warmup, 1e-9)
        rows = max(1000, min(10_000, int(throughput * 0.025)))
        inner = max(1, min(30, int(0.025 / max(rows / throughput, 1e-9))))
        # Paired samples: each (instrumented, disabled) pair runs
        # back-to-back, so a load burst inflates both sides of the
        # ratio; the min pair ratio is the cleanest overhead estimate.
        overhead = min(
            overhead_sample(algorithm, MetricsRegistry(), rows, inner)
            / overhead_sample(algorithm, NULL_REGISTRY, rows, inner)
            for _ in range(8)
        ) - 1.0
        full_batch = min(
            batch_sample(algorithm, MetricsRegistry(), inner=1)
            for _ in range(2)
        )
        return {
            "rows": rows,
            "overhead": overhead,
            "speedup": loop_seconds(algorithm) / full_batch,
        }

    def check(row, algorithm):
        failures = []
        if row["overhead"] > 0.05:
            failures.append(
                f"{algorithm}: instrumentation costs {row['overhead']:.1%} "
                f"(>5%) vs the disabled path"
            )
        committed = recorded[algorithm]["speedup"]
        if row["speedup"] < 0.95 * committed:
            failures.append(
                f"{algorithm}: instrumented speedup {row['speedup']:.2f}x "
                f"is >5% below the recorded {committed:.2f}x"
            )
        return failures

    def measure():
        # A shared host's load bursts can exceed the 5% margin, so each
        # algorithm gets up to 3 measurement attempts; a genuine
        # regression fails all of them.
        report, failures = {}, []
        for algorithm in sorted(recorded):
            for attempt in range(3):
                row = measure_one(algorithm)
                problems = check(row, algorithm)
                if not problems:
                    break
            report[algorithm] = row
            failures.extend(problems)
        return report, failures

    report, failures = benchmark.pedantic(measure, iterations=1, rounds=1)
    with capsys.disabled():
        for algorithm, row in report.items():
            print(
                f"\n{algorithm}: instrumentation overhead "
                f"{row['overhead']:+.1%}, "
                f"speedup {row['speedup']:.1f}x "
                f"(recorded {recorded[algorithm]['speedup']:.1f}x)"
            )
    assert not failures, "; ".join(failures)
