"""Fault-magnitude envelope: the §8 conclusion, quantified.

The paper concludes that "inherently reliable systems can benefit more
from history-aware voting as it can more easily root out more nuanced
quality issues".  The sweep makes that concrete: history-aware voters
recover from *smaller* (more nuanced) faults than the stateless
clustering voter, whose hard grouping threshold only bites once the
fault leaves the agreement envelope; sub-margin faults are
undetectable for everyone, and the plain average never recovers.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.datasets.light_uc1 import UC1Config, generate_uc1_dataset
from repro.experiments.robustness import run_robustness_sweep


def test_fault_magnitude_envelope(benchmark):
    clean = generate_uc1_dataset(UC1Config(n_rounds=300))
    result = benchmark.pedantic(
        run_robustness_sweep, args=(clean,), iterations=1, rounds=1
    )

    rows = []
    for algorithm in result.algorithms:
        rows.append(
            [algorithm]
            + [round(v, 3) for v in result.residual[algorithm]]
            + [result.breakdown_delta(algorithm)]
        )
    print("\nResidual |error| vs injected offset (kilolumen):")
    print(
        render_table(
            ["algorithm"] + [f"Δ={d}" for d in result.deltas] + ["recovers after"],
            rows,
        )
    )

    margin_index = result.deltas.index(0.5)  # well inside the 0.9 margin
    # (a) Sub-margin faults are undetectable: every algorithm carries
    # roughly the naive delta/5 error there.
    for algorithm in result.algorithms:
        assert result.residual[algorithm][margin_index] > 0.05

    # (b) The plain average never recovers; its residual is linear in Δ.
    avg = result.series("average")
    assert avg[-1] > avg[0] * 10

    # (c) History-aware voters recover from smaller faults than the
    # stateless clustering voter (the §8 "more nuanced issues" claim).
    me_break = result.breakdown_delta("me")
    clustering_break = result.breakdown_delta("clustering")
    assert me_break < clustering_break

    # (d) Everything robust recovers for the paper's +6 fault.
    six = result.deltas.index(6.0)
    for algorithm in ("me", "hybrid", "clustering", "avoc"):
        assert result.residual[algorithm][six] < 0.15
