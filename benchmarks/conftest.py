"""Shared fixtures for the benchmark/reproduction suite.

The full-size experiment results are computed once per session; the
individual benchmarks time representative slices and assert the
paper-shape properties on the full-size results.
"""

from __future__ import annotations

import pytest

from repro.datasets.ble_uc2 import UC2Config
from repro.datasets.light_uc1 import UC1Config
from repro.experiments import run_fig6, run_fig7


def pytest_configure(config):
    # The reproduction assertions live in benchmark tests; make sure
    # they are not silently skipped when run without --benchmark-only.
    config.addinivalue_line("markers", "repro: paper reproduction benchmark")


@pytest.fixture(scope="session")
def fig6_full():
    """The full 10'000-round UC-1 comparison (paper scale)."""
    return run_fig6(UC1Config())


@pytest.fixture(scope="session")
def fig7_full():
    """The full 297-round UC-2 comparison (paper scale)."""
    return run_fig7(UC2Config())
