"""Tiered history store baseline (the million-series scaling tentpole).

Three recorded sections, written to ``BENCH_store.json``:

* **cold_start** — wall-clock to rehydrate every series' state from a
  cold store: the packed mmap-segment store versus the historical
  one-JSONL-log-per-series layout, at ``STORE_BENCH_SERIES`` series
  (default 100k; the env knob lets the CI smoke run smaller).  Floor:
  packed >= 5x faster.  Enforced only at >= 50k series — tiny
  populations measure file-system noise, so smaller runs record honest
  numbers with ``enforced: false``.
* **residency** — peak traced heap while streaming updates through a
  :class:`TieredHistoryStore` with a bounded hot set versus an
  unbounded one.  The bounded run must stay within its hot-set
  capacity and allocate less than the unbounded run (tracemalloc is
  the proxy for steady-state RSS: the mmap segments live outside the
  Python heap by design).
* **identity** — random vote traces driven through engines whose
  history is evicted and rehydrated mid-stream, compared to
  always-resident references.  Bit-identity is always enforced; there
  is no host on which state divergence is acceptable.
"""

from __future__ import annotations

import os
import pathlib
import random
import time
import tracemalloc

from benchmarks.baseline_io import merge_baseline
from repro.history import (
    JsonlStateStore,
    PackedHistoryStore,
    TieredHistoryStore,
)
from repro.voting.history import HistoryRecords

_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_store.json"

COLD_START_FLOOR = 5.0

#: Series population for the cold-start sweep.  100k by default (the
#: paper-scale point the floor is calibrated at); the CI smoke sets the
#: env knob lower and records with ``enforced: false``.
N_SERIES = int(os.environ.get("STORE_BENCH_SERIES", "100000"))

#: The cold-start floor is only enforced at a population large enough
#: that per-file open() cost dominates over filesystem noise.
ENFORCE_MIN_SERIES = 50_000

MODULES = ("E1", "E2", "E3", "E4", "E5")


def _merge_report(key, payload):
    merge_baseline(_OUT, key, payload)


def _state(k: int):
    rng = random.Random(k)
    return {m: round(rng.random(), 6) for m in MODULES}, k % 977


def test_cold_start_rehydration(benchmark, tmp_path, capsys):
    """Full cold rehydration: packed segments vs per-series JSONL logs."""
    series = [f"series-{k:06d}" for k in range(N_SERIES)]

    packed = PackedHistoryStore(tmp_path / "packed")
    for k, key in enumerate(series):
        records, updates = _state(k)
        packed.write(key, records, updates)
    packed.close()

    jsonl = JsonlStateStore(tmp_path / "jsonl")
    for k, key in enumerate(series):
        records, updates = _state(k)
        jsonl.write(key, records, updates)

    def cold_packed():
        store = PackedHistoryStore(tmp_path / "packed")
        start = time.perf_counter()
        loaded = sum(1 for key in store.series() if store.read(key))
        elapsed = time.perf_counter() - start
        store.close()
        assert loaded == N_SERIES
        return elapsed

    def cold_jsonl():
        store = JsonlStateStore(tmp_path / "jsonl")  # fresh: nothing cached
        start = time.perf_counter()
        loaded = sum(1 for key in series if store.read(key))
        elapsed = time.perf_counter() - start
        assert loaded == N_SERIES
        return elapsed

    def measure():
        return {"packed": cold_packed(), "jsonl": cold_jsonl()}

    timings = benchmark.pedantic(measure, iterations=1, rounds=1)
    speedup = timings["jsonl"] / timings["packed"]
    enforced = N_SERIES >= ENFORCE_MIN_SERIES
    _merge_report(
        "cold_start",
        {
            "n_series": N_SERIES,
            "packed_seconds": timings["packed"],
            "jsonl_seconds": timings["jsonl"],
            "speedup": speedup,
            "floor": COLD_START_FLOOR,
            "enforced": enforced,
        },
    )
    with capsys.disabled():
        print(
            f"\ncold-start rehydration at {N_SERIES} series: "
            f"packed {timings['packed']:.3f}s vs jsonl "
            f"{timings['jsonl']:.3f}s -> {speedup:.1f}x "
            + ("(enforced)" if enforced else "(recorded only: small run)")
        )
    if enforced:
        assert speedup >= COLD_START_FLOOR


def test_steady_state_residency(benchmark, tmp_path, capsys):
    """Bounded hot set holds less heap than keeping every series live."""
    n_series = min(N_SERIES, 20_000)
    hot_bound = 1_024
    rounds = 3

    def drive(directory, hot_series):
        store = TieredHistoryStore(
            PackedHistoryStore(directory), hot_series=hot_series
        )
        tracemalloc.start()
        for _ in range(rounds):
            for k in range(n_series):
                records, updates = _state(k)
                store.put_state(f"series-{k:06d}", records, updates + 1)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        hot_size = store.hot_size
        store.close()
        return peak, hot_size

    def measure():
        unbounded_peak, unbounded_hot = drive(tmp_path / "unbounded", None)
        bounded_peak, bounded_hot = drive(tmp_path / "bounded", hot_bound)
        return {
            "bounded_peak": bounded_peak,
            "unbounded_peak": unbounded_peak,
            "bounded_hot": bounded_hot,
            "unbounded_hot": unbounded_hot,
        }

    out = benchmark.pedantic(measure, iterations=1, rounds=1)
    hot_within_bound = out["bounded_hot"] <= hot_bound
    bounded_under = out["bounded_peak"] < out["unbounded_peak"]
    enforced = n_series >= 10_000
    _merge_report(
        "residency",
        {
            "n_series": n_series,
            "rounds": rounds,
            "hot_bound": hot_bound,
            "hot_size": out["bounded_hot"],
            "hot_within_bound": hot_within_bound,
            "bounded_peak_bytes": out["bounded_peak"],
            "unbounded_peak_bytes": out["unbounded_peak"],
            "bounded_under_unbounded": bounded_under,
            "enforced": enforced,
        },
    )
    with capsys.disabled():
        print(
            f"\nsteady-state heap at {n_series} series x {rounds} rounds: "
            f"bounded({hot_bound}) {out['bounded_peak'] / 1e6:.1f}MB vs "
            f"unbounded {out['unbounded_peak'] / 1e6:.1f}MB "
            f"(hot set {out['bounded_hot']} vs {out['unbounded_hot']})"
        )
    assert hot_within_bound
    if enforced:
        assert bounded_under


def test_evict_rehydrate_identity(benchmark, tmp_path, capsys):
    """Evicted-and-rehydrated engines stay bit-identical mid-stream."""
    n_series = 64
    n_rounds = 40

    def run():
        store = TieredHistoryStore(
            PackedHistoryStore(tmp_path / "identity", segment_bytes=4096),
            hot_series=8,
        )
        references = {
            f"series-{k}": HistoryRecords() for k in range(n_series)
        }
        rng = random.Random(1202)
        identical = True
        for round_no in range(n_rounds):
            for key, reference in references.items():
                # A fresh HistoryRecords per round = the worst case:
                # every series rehydrates through the tiny hot set
                # (and most rounds, from a cold eviction).
                live = HistoryRecords(store=store.store_for(key))
                scores = {m: rng.random() for m in MODULES}
                live.update(scores)
                reference.update(scores)
                identical = identical and (
                    live.snapshot() == reference.snapshot()
                    and live.update_count == reference.update_count
                )
        store.compact()
        # Re-check the full population after compaction moved the blocks.
        for key, reference in references.items():
            live = HistoryRecords(store=store.store_for(key))
            identical = identical and (
                live.snapshot() == reference.snapshot()
                and live.update_count == reference.update_count
            )
        evictions, rehydrations = store.evictions, store.rehydrations
        store.close()
        return identical, evictions, rehydrations

    identical, evictions, rehydrations = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    _merge_report(
        "identity",
        {
            "n_series": n_series,
            "rounds": n_rounds,
            "evictions": evictions,
            "rehydrations": rehydrations,
            "bit_identical": identical,
        },
    )
    with capsys.disabled():
        print(
            f"\nevict/rehydrate identity: {n_series} series x {n_rounds} "
            f"rounds, {evictions} evictions, {rehydrations} rehydrations "
            f"-> bit_identical={identical}"
        )
    assert identical
    assert evictions > 0 and rehydrations > 0
