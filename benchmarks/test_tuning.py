"""Tuning benchmark: the Q4 claim, quantified.

The paper argues the VDX customisation exists because "there is no
optimal voting method for all applications" (Q3) and the specification
"allows us to address" per-scenario customisation (Q4).  This benchmark
demonstrates the payoff: parameters tuned for UC-1 differ from
parameters tuned for UC-2, and each tuned configuration beats the
other scenario's tuned configuration on its home scenario.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.datasets.ble_uc2 import UC2Config, generate_uc2_dataset
from repro.datasets.injection import offset_fault
from repro.datasets.light_uc1 import UC1Config, generate_uc1_dataset
from repro.tuning import (
    Choice,
    Continuous,
    ParameterSpace,
    grid_search,
    uc1_fault_recovery_objective,
    uc2_stability_objective,
)
from repro.voting.avoc import AvocVoter


def _space():
    return ParameterSpace(
        {
            "error": Continuous(0.03, 0.15),
            "collation": Choice(["MEAN", "MEAN_NEAREST_NEIGHBOR"]),
        },
        base=AvocVoter.default_params(),
    )


def test_per_scenario_tuning_pays_off(benchmark):
    clean = generate_uc1_dataset(UC1Config(n_rounds=300))
    faulty = offset_fault(clean, "E4", 6.0)
    uc2 = generate_uc2_dataset(UC2Config())

    uc1_objective = uc1_fault_recovery_objective(clean, faulty)
    uc2_objective = uc2_stability_objective(uc2)

    def tune_both():
        uc1_result = grid_search(uc1_objective, _space(), points_per_dimension=4)
        uc2_result = grid_search(uc2_objective, _space(), points_per_dimension=4)
        return uc1_result, uc2_result

    uc1_result, uc2_result = benchmark.pedantic(tune_both, iterations=1, rounds=1)

    rows = [
        ["UC-1 tuned", uc1_result.best_assignment["collation"],
         round(uc1_result.best_assignment["error"], 3),
         round(uc1_result.best_score, 2),
         round(uc2_objective(uc1_result.best_params), 2)],
        ["UC-2 tuned", uc2_result.best_assignment["collation"],
         round(uc2_result.best_assignment["error"], 3),
         round(uc1_objective(uc2_result.best_params), 2),
         round(uc2_result.best_score, 2)],
    ]
    print("\nPer-scenario tuning (lower scores are better):")
    print(render_table(
        ["configuration", "collation", "error", "UC-1 score", "UC-2 score"],
        rows,
    ))
    # Each scenario's tuned configuration is at least as good on its
    # home scenario as the other scenario's choice (Q3/Q4).
    assert uc1_result.best_score <= uc1_objective(uc2_result.best_params) + 1e-9
    assert uc2_result.best_score <= uc2_objective(uc1_result.best_params) + 1e-9
    # And UC-2 prefers averaging (the paper's headline UC-2 finding).
    assert uc2_result.best_assignment["collation"] == "MEAN"
