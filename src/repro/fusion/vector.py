"""Multi-dimensional generalisation of the AVOC bootstrap (§5).

For vector-valued readings the paper sketches two layers:

1. an unsupervised clustering algorithm — "Meanshift or X-Means" —
   groups whole vectors, because per-dimension agreement cannot see
   *correlated* errors (a module slightly off on every axis passes each
   axis's margin while being jointly far from everyone);
2. voting is then "applied for each dimension separately, leaving other
   data fusion techniques to process the multi-dimensional results".

:class:`VectorFusion` implements exactly that: an optional vector-level
clustering prefilter (self-calibrated the AVOC way — dimensions are
whitened by their per-round dynamic margins so one relative error
setting covers all axes), followed by the per-dimension
:class:`~repro.fusion.pipeline.MultiDimensionalPipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..clustering.dbscan import dbscan
from ..clustering.meanshift import mean_shift
from ..clustering.xmeans import xmeans
from ..exceptions import ConfigurationError
from ..types import VoteOutcome
from ..voting.agreement import dynamic_margin
from ..voting.base import Voter
from .pipeline import MultiDimensionalPipeline

#: ``agreement`` is the direct generalisation of the 1-D AVOC grouping
#: (hard cutoff at soft_threshold margins, connected components);
#: ``meanshift``/``xmeans`` are the unsupervised alternatives §5 names.
_CLUSTERING_METHODS = ("none", "agreement", "meanshift", "xmeans")


@dataclass(frozen=True)
class VectorRoundResult:
    """One fused vector round: output, per-dim outcomes, pruned modules."""

    round_number: int
    value: np.ndarray
    outcomes: Dict[str, VoteOutcome]
    pruned: Tuple[str, ...]


def _whiten(matrix: np.ndarray, error: float, min_margin: float) -> np.ndarray:
    """Scale each dimension by its dynamic agreement margin.

    After whitening, a Euclidean distance of 1 means "one agreement
    margin apart", so clustering bandwidths are dimension-free.
    """
    scaled = np.empty_like(matrix)
    for axis in range(matrix.shape[1]):
        margin = dynamic_margin(matrix[:, axis], error, min_margin)
        scaled[:, axis] = matrix[:, axis] / margin
    return scaled


class VectorFusion:
    """Vector-level outlier pruning plus per-dimension voting.

    Args:
        voter_factory: zero-argument callable producing a fresh voter
            per dimension.
        dimensions: number of components or component names.
        clustering: ``"agreement"`` (default — the direct
            generalisation of the 1-D grouping), ``"meanshift"``,
            ``"xmeans"``, or ``"none"`` (pure per-dimension voting,
            AVOC's own §5 choice).
        error: relative agreement threshold used for whitening.
        soft_threshold: margin multiple used as the clustering
            bandwidth in whitened space (mirrors the 1-D AVOC step).
        min_margin: absolute floor for per-dimension margins.
        min_modules: never prune below this many surviving modules.
    """

    def __init__(
        self,
        voter_factory: Callable[[], Voter],
        dimensions,
        clustering: str = "agreement",
        error: float = 0.05,
        soft_threshold: float = 2.0,
        min_margin: float = 1e-9,
        min_modules: int = 2,
    ):
        if clustering not in _CLUSTERING_METHODS:
            raise ConfigurationError(
                f"clustering must be one of {_CLUSTERING_METHODS}"
            )
        if error <= 0:
            raise ConfigurationError("error must be positive")
        if min_modules < 1:
            raise ConfigurationError("min_modules must be >= 1")
        self.clustering = clustering
        self.error = error
        self.soft_threshold = soft_threshold
        self.min_margin = min_margin
        self.min_modules = min_modules
        self.pipeline = MultiDimensionalPipeline(voter_factory, dimensions)
        self.rounds_voted = 0
        self.modules_pruned = 0

    @property
    def n_dimensions(self) -> int:
        return self.pipeline.n_dimensions

    # -- clustering prefilter ---------------------------------------------

    def _winning_modules(self, modules: List[str], matrix: np.ndarray):
        if self.clustering == "none" or len(modules) <= self.min_modules:
            return list(modules)
        whitened = _whiten(matrix, self.error, self.min_margin)
        if self.clustering == "agreement":
            # Hard cutoff at soft_threshold whitened margins, grouped by
            # connected components — DBSCAN with min_samples=1, exactly
            # like the 1-D bootstrap step.
            result = dbscan(whitened, eps=self.soft_threshold, min_samples=1)
            winners = result.clusters()[0]
        elif self.clustering == "meanshift":
            result = mean_shift(whitened, bandwidth=self.soft_threshold)
            winners = result.clusters()[0] if result.n_clusters else range(len(modules))
        else:  # xmeans
            result = xmeans(whitened, k_min=1, k_max=max(2, len(modules) // 2))
            labels = np.asarray(result.labels)
            counts = np.bincount(labels)
            winners = np.flatnonzero(labels == counts.argmax())
        winners = sorted(int(i) for i in winners)
        if len(winners) < self.min_modules:
            return list(modules)
        return [modules[i] for i in winners]

    # -- voting ----------------------------------------------------------

    def vote(
        self, round_number: int, vectors: Mapping[str, Sequence[float]]
    ) -> VectorRoundResult:
        """Fuse one round of per-module coordinate vectors."""
        if not vectors:
            raise ConfigurationError("vector round has no submissions")
        modules = list(vectors)
        matrix = np.asarray([list(vectors[m]) for m in modules], dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.n_dimensions:
            raise ConfigurationError(
                f"expected {self.n_dimensions}-component vectors, got shape "
                f"{matrix.shape}"
            )
        survivors = self._winning_modules(modules, matrix)
        pruned = tuple(m for m in modules if m not in survivors)
        self.modules_pruned += len(pruned)
        fused, outcomes = self.pipeline.vote(
            round_number, {m: vectors[m] for m in survivors}
        )
        self.rounds_voted += 1
        return VectorRoundResult(
            round_number=round_number,
            value=fused,
            outcomes=outcomes,
            pruned=pruned,
        )

    def run(self, rounds: Sequence[Mapping[str, Sequence[float]]]):
        """Fuse a sequence of vector rounds."""
        return [self.vote(i, vectors) for i, vectors in enumerate(rounds)]

    def reset(self) -> None:
        self.pipeline.reset()
        self.rounds_voted = 0
        self.modules_pruned = 0
