"""Multi-dimensional fusion pipeline (§5 Generalisation).

For multi-dimensional data the paper recommends voting "on each
dimension separately, leaving other data fusion techniques to process
the multi-dimensional results" — choosing one output *vector* is
non-trivial because error correlation across dimensions grows quickly.
:class:`MultiDimensionalPipeline` implements exactly that: one
independent voter (and history) per dimension, fed from vector-valued
readings, producing one fused vector per round.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..types import Round, VoteOutcome
from ..voting.base import Voter


class MultiDimensionalPipeline:
    """Per-dimension voting over vector-valued sensor readings.

    Args:
        voter_factory: zero-argument callable producing a fresh voter;
            called once per dimension so each dimension gets independent
            history.
        dimensions: number of vector components, or dimension names.
    """

    def __init__(self, voter_factory: Callable[[], Voter], dimensions):
        if isinstance(dimensions, int):
            if dimensions < 1:
                raise ConfigurationError("dimensions must be >= 1")
            self.dimension_names: Tuple[str, ...] = tuple(
                f"dim{i}" for i in range(dimensions)
            )
        else:
            self.dimension_names = tuple(dimensions)
            if not self.dimension_names:
                raise ConfigurationError("dimension names must be non-empty")
        self.voters: Dict[str, Voter] = {
            name: voter_factory() for name in self.dimension_names
        }

    @property
    def n_dimensions(self) -> int:
        return len(self.dimension_names)

    def vote(
        self, round_number: int, vectors: Mapping[str, Sequence[float]]
    ) -> Tuple[np.ndarray, Dict[str, VoteOutcome]]:
        """Fuse one round of vector readings.

        Args:
            round_number: the round index.
            vectors: per-module coordinate vectors, all of length
                ``n_dimensions``.

        Returns:
            The fused output vector and the per-dimension outcomes.
        """
        for module, vector in vectors.items():
            if len(vector) != self.n_dimensions:
                raise ConfigurationError(
                    f"module {module!r} submitted {len(vector)} components, "
                    f"expected {self.n_dimensions}"
                )
        outcomes: Dict[str, VoteOutcome] = {}
        fused = np.empty(self.n_dimensions)
        for axis, name in enumerate(self.dimension_names):
            component_round = Round.from_mapping(
                round_number,
                {module: vector[axis] for module, vector in vectors.items()},
            )
            outcome = self.voters[name].vote(component_round)
            outcomes[name] = outcome
            fused[axis] = float("nan") if outcome.value is None else outcome.value
        return fused, outcomes

    def run(
        self, rounds: Sequence[Mapping[str, Sequence[float]]]
    ) -> List[np.ndarray]:
        """Fuse a sequence of vector rounds; returns fused vectors."""
        return [self.vote(i, vectors)[0] for i, vectors in enumerate(rounds)]

    def reset(self) -> None:
        for voter in self.voters.values():
            voter.reset()
