"""Pre-vote value-based exclusion (VDX ``exclusion``).

VDL's second voting step "excluding outliers" survives in VDX as an
optional filter applied before the voter sees the round:

* ``DEVIATION`` — drop values more than ``threshold`` standard
  deviations away from the round mean (classic z-score pruning);
* ``RANGE`` — drop values farther than ``threshold`` (absolute units)
  from the round median.

Exclusion never removes so many values that the round becomes empty:
when the filter would reject everything, the original round is returned
untouched (pruning everything is indistinguishable from a broken
filter, and the voter's own mechanisms handle dissent better).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..types import Round

_MODES = ("NONE", "DEVIATION", "RANGE")


def exclude_values(
    voting_round: Round, mode: str, threshold: float
) -> Tuple[Round, Tuple[str, ...]]:
    """Apply value-based exclusion to a round.

    Returns:
        A (possibly filtered) round and the names of excluded modules.
    """
    mode = mode.upper()
    if mode not in _MODES:
        raise ConfigurationError(f"exclusion mode must be one of {_MODES}")
    if mode == "NONE":
        return voting_round, ()
    if threshold <= 0:
        raise ConfigurationError("exclusion requires a positive threshold")

    present = voting_round.present
    if len(present) < 3:
        # With fewer than 3 values no robust outlier criterion exists.
        return voting_round, ()
    values = np.asarray([float(r.value) for r in present])

    if mode == "DEVIATION":
        std = float(values.std())
        if std == 0:
            return voting_round, ()
        scores = np.abs(values - values.mean()) / std
        keep_mask = scores <= threshold
    else:  # RANGE
        keep_mask = np.abs(values - np.median(values)) <= threshold

    if not keep_mask.any():
        return voting_round, ()

    excluded = tuple(r.module for r, keep in zip(present, keep_mask) if not keep)
    if not excluded:
        return voting_round, ()
    kept_readings = tuple(
        r
        for r in voting_round.readings
        if r.missing or r.module not in excluded
    )
    filtered = Round(number=voting_round.number, readings=kept_readings)
    return filtered, excluded
