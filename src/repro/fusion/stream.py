"""Streaming ingest: from sensor events to voting rounds.

Recorded datasets arrive as neat rounds; live deployments do not.  A
real middleware ingests *events* — ``(module, value, timestamp)`` — at
whatever rate each sensor produces them, and must decide which events
form a round.  :class:`StreamingFusion` implements the standard
tumbling-window policy: virtual time is divided into fixed windows of
``window`` seconds, each module's latest event inside a window is its
reading for that round, and a window is voted once an event arrives
past its end (watermark semantics; out-of-order events within the
allowed lateness are still accepted).

This is the ingest discipline the paper's UC-1 hub implies (sensors
polled at 8 samples/s become synchronous rounds at the sink) made
explicit and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..exceptions import ConfigurationError
from ..fusion.engine import FusionEngine, FusionResult
from ..types import Round


@dataclass(frozen=True)
class SensorEvent:
    """One sensor observation in arrival order."""

    module: str
    value: Optional[float]
    timestamp: float


class StreamingFusion:
    """Tumbling-window round assembly in front of a fusion engine.

    Args:
        engine: the engine that votes completed windows.
        window: window length in seconds (one voting round per window).
        allowed_lateness: how far behind the watermark an event may
            arrive and still be placed into its (unvoted) window.
        start_time: timestamp where window 0 begins.

    Events must be fed in non-decreasing *watermark* order: the
    watermark is the maximum timestamp seen, and windows whose end is
    more than ``allowed_lateness`` behind it are closed and voted.
    """

    def __init__(
        self,
        engine: FusionEngine,
        window: float,
        allowed_lateness: float = 0.0,
        start_time: float = 0.0,
    ):
        if window <= 0:
            raise ConfigurationError("window must be positive")
        if allowed_lateness < 0:
            raise ConfigurationError("allowed_lateness must be non-negative")
        self.engine = engine
        self.window = window
        self.allowed_lateness = allowed_lateness
        self.start_time = start_time
        self._buckets: Dict[int, Dict[str, Optional[float]]] = {}
        self._watermark = float("-inf")
        self._next_to_vote = 0
        self.results: List[FusionResult] = []
        self.events_accepted = 0
        self.events_late = 0

    # -- window arithmetic --------------------------------------------------

    def window_of(self, timestamp: float) -> int:
        """The window index a timestamp falls into."""
        return int((timestamp - self.start_time) // self.window)

    def _window_end(self, index: int) -> float:
        return self.start_time + (index + 1) * self.window

    # -- ingest -------------------------------------------------------------

    def push(self, event: SensorEvent) -> List[FusionResult]:
        """Ingest one event; returns any rounds voted as a consequence."""
        if event.timestamp < self.start_time:
            raise ConfigurationError(
                f"event at {event.timestamp} precedes start_time {self.start_time}"
            )
        index = self.window_of(event.timestamp)
        if index < self._next_to_vote:
            # The window was already voted: the event is too late.
            self.events_late += 1
            return []
        self._buckets.setdefault(index, {})[event.module] = event.value
        self.events_accepted += 1
        self._watermark = max(self._watermark, event.timestamp)
        return self._advance()

    def _advance(self) -> List[FusionResult]:
        # Windows the watermark has passed are voted in order — empty
        # ones too: a window where no sensor produced anything is the
        # §7 all-values-missing scenario and goes through the engine's
        # fault policy like any other degraded round.
        voted: List[FusionResult] = []
        while (
            self._window_end(self._next_to_vote) + self.allowed_lateness
            <= self._watermark
        ):
            voted.append(self._vote_window(self._next_to_vote))
        return voted

    def _vote_window(self, index: int) -> FusionResult:
        bucket = self._buckets.pop(index, {})
        mapping = {module: bucket.get(module) for module in self.engine.roster}
        mapping.update(bucket)
        voting_round = Round.from_mapping(
            index, mapping, timestamp=self._window_end(index)
        )
        result = self.engine.process(voting_round)
        self.results.append(result)
        self._next_to_vote = index + 1
        return result

    def flush(self) -> List[FusionResult]:
        """Vote every window up to the last open one (end of stream).

        Empty windows in between are voted as all-missing rounds, the
        same way :meth:`push` treats them when the watermark passes.
        """
        voted = []
        for index in sorted(self._buckets):
            while self._next_to_vote <= index:
                voted.append(self._vote_window(self._next_to_vote))
        return voted
