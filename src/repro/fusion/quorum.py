"""Quorum rules: when is a round eligible for voting?

VDX models quorum as a mode plus a percentage (Listing 1 uses
``UNTIL``/100: all known modules must submit).  The engine evaluates the
rule against the full module roster, which may be wider than the round's
submissions — a module that has gone silent still counts toward the
denominator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..types import Round

_MODES = ("NONE", "ANY", "UNTIL")


@dataclass(frozen=True)
class QuorumRule:
    """Quorum evaluation for one engine.

    Attributes:
        mode: ``NONE`` (always eligible), ``ANY`` (at least one value),
            or ``UNTIL`` (at least ``percentage`` % of the roster).
        percentage: required submission percentage for ``UNTIL``.
    """

    mode: str = "NONE"
    percentage: float = 100.0

    def __post_init__(self):
        mode = self.mode.upper()
        if mode not in _MODES:
            raise ConfigurationError(f"quorum mode must be one of {_MODES}")
        object.__setattr__(self, "mode", mode)
        if not 0.0 <= self.percentage <= 100.0:
            raise ConfigurationError("quorum percentage must be in [0, 100]")

    def required_count(self, roster_size: int) -> int:
        """Minimum number of submissions for ``roster_size`` modules."""
        if self.mode == "NONE":
            return 0
        if self.mode == "ANY":
            return 1
        return math.ceil(roster_size * self.percentage / 100.0)

    def satisfied(self, voting_round: Round, roster_size: int) -> bool:
        """Whether the round meets this quorum rule."""
        return voting_round.submitted_count >= self.required_count(roster_size)
