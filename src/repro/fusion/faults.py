"""Fault-handling policies for the §7 fault scenarios.

The paper identifies two fault families in the BLE experiment and
explicitly leaves their handling to client code ("these behaviors are
currently not modelled by VDX itself"):

* **missing values** — unreachable beacons.  A minority of gaps merely
  reduces redundancy; when the majority (or all) values are missing the
  result is untrustworthy and "the system should either revert to the
  last accepted result, or raise an error";
* **conflicting results** — no absolute majority exists, or a tie
  between tallies; a tie-break (e.g. proximity to the previous output)
  may apply.

:class:`FaultPolicy` makes that choice explicit and reusable, and is the
"high-level description of the desired fault handling policy" the paper
proposes as a future VDX extension.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

#: What to do when a round is rejected (quorum failure, majority of
#: values missing, or unresolved conflict).
_ACTIONS = ("last_value", "raise", "skip")


@dataclass(frozen=True)
class FaultPolicy:
    """Behaviour on degraded rounds.

    Attributes:
        on_missing_majority: action when more than ``missing_tolerance``
            of the roster failed to submit a value.
        on_conflict: action when the voter raises
            :class:`~repro.exceptions.NoMajorityError`.
        on_quorum_failure: action when the quorum rule rejects a round.
        missing_tolerance: largest tolerated *missing* fraction in
            [0, 1); the default 0.5 implements the paper's "majority or
            all values missing" criterion.
    """

    on_missing_majority: str = "last_value"
    on_conflict: str = "last_value"
    on_quorum_failure: str = "skip"
    missing_tolerance: float = 0.5

    def __post_init__(self):
        for name in ("on_missing_majority", "on_conflict", "on_quorum_failure"):
            action = getattr(self, name)
            if action not in _ACTIONS:
                raise ConfigurationError(
                    f"{name} must be one of {_ACTIONS}, got {action!r}"
                )
        if not 0.0 <= self.missing_tolerance < 1.0:
            raise ConfigurationError("missing_tolerance must be in [0, 1)")

    def majority_missing(self, submitted: int, roster_size: int) -> bool:
        """True when the missing fraction exceeds the tolerance."""
        if roster_size <= 0:
            return True
        missing_fraction = 1.0 - submitted / roster_size
        return missing_fraction > self.missing_tolerance


#: Policy objects for the common configurations.
STRICT = FaultPolicy(
    on_missing_majority="raise", on_conflict="raise", on_quorum_failure="raise"
)
LENIENT = FaultPolicy(
    on_missing_majority="skip", on_conflict="skip", on_quorum_failure="skip"
)
HOLD_LAST = FaultPolicy()
