"""Fusion middleware: the layer around a voter that the paper's §7
fault scenarios demand.

A bare voter turns one round of values into one output.  Deployments
need more: pre-vote value exclusion (VDX ``exclusion``), quorum
enforcement, policies for rounds with missing values or unresolvable
conflicts ("the system should either revert to the last accepted result,
or raise an error"), and per-dimension pipelines for multi-dimensional
data (§5 Generalisation).  That glue lives here.
"""

from .quorum import QuorumRule
from .faults import FaultPolicy
from .exclusion import exclude_values
from .engine import FusionEngine, FusionResult
from .batch import BatchResult, fuse, process_matrix
from .pipeline import MultiDimensionalPipeline
from .vector import VectorFusion, VectorRoundResult
from .stream import SensorEvent, StreamingFusion

__all__ = [
    "BatchResult",
    "SensorEvent",
    "StreamingFusion",
    "QuorumRule",
    "FaultPolicy",
    "exclude_values",
    "fuse",
    "process_matrix",
    "FusionEngine",
    "FusionResult",
    "MultiDimensionalPipeline",
    "VectorFusion",
    "VectorRoundResult",
]
