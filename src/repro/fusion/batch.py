"""Batched fusion: run a whole rounds × modules matrix in one call.

:func:`process_matrix` is the engine behind
:meth:`FusionEngine.process_batch` and the top-level :func:`fuse`
facade.  It evaluates the engine's fault/quorum policy for every round
up front with array arithmetic, then dispatches to one of five
vectorized kernels selected by :meth:`Voter.batch_kernel`:

``stateless``
    CollationVoter (mean / median / nearest-neighbour) — fully
    vectorized across rounds.
``clustering``
    ClusteringOnlyVoter — per-round sorted-runs clustering on
    compacted values with vectorized margins.
``plurality``
    PluralityVoter — sequential tally loop carrying the tie-break.
``incoherence``
    IncoherenceMaskingVoter — dynamic margins precomputed for all
    rounds, then a sequential loop over the voter's own
    ``_apply``/``_outcome`` core (the mask hysteresis is a genuine
    cross-round dependency).
``history``
    The Standard/Me/Sdt/Hybrid/AVOC family — margins and pairwise
    agreement scores precomputed for all rounds, then a tight
    sequential loop over preallocated float arrays (history is a
    genuine cross-round dependency).

Every path is *bit-identical* to the per-round
:meth:`FusionEngine.process` loop, including engine statistics,
``last_accepted`` carry-over, voter history state and raised
exceptions.  Voters or engine configurations without a kernel
(custom ``vote`` overrides, exclusion rules, history stores,
weighted-majority collation) transparently fall back to the exact
legacy loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import FusionError, QuorumNotReachedError
from ..types import Round, VoteOutcome, is_missing
from ..voting import kernels
from ..voting.base import HistoryAwareVoter, Voter
from .engine import FusionEngine, FusionResult

__all__ = ["BatchResult", "fuse", "process_matrix"]

# Reason codes for degraded rounds (0 = votable).
_MISSING = 1  # majority of roster values absent
_QUORUM_ENGINE = 2  # engine QuorumRule not satisfied
_QUORUM_VOTER = 3  # deprecated voter-level quorum_percentage
_CONFLICT = 4  # no majority (plurality tie)
_EMPTY = 5  # no values at all (EmptyRoundError from the voter)

#: Reason code → degraded-round metric label (matches engine._degraded).
_REASON_LABELS_BY_CODE = {
    _MISSING: "majority_missing",
    _QUORUM_ENGINE: "quorum",
    _QUORUM_VOTER: "quorum",
    _CONFLICT: "conflict",
    _EMPTY: "empty",
}


@dataclass
class BatchResult:
    """The outcome of fusing a rounds × modules matrix in one batch.

    Attributes:
        modules: column names, in matrix order.
        values: per-round fused output; NaN where the round produced
            no value (status ``skipped``).
        statuses: per-round status, ``ok`` / ``held`` / ``skipped``.
        weights: rounds × modules weight matrix (NaN where a module
            was absent or the round was degraded); populated only when
            the batch ran with ``diagnostics=True``.
        results: full per-round :class:`FusionResult` list with
            :class:`VoteOutcome` diagnostics; populated only when the
            batch ran with ``diagnostics=True``.
    """

    modules: Tuple[str, ...]
    values: np.ndarray
    statuses: np.ndarray
    weights: Optional[np.ndarray] = None
    results: Optional[List[FusionResult]] = None

    @property
    def n_rounds(self) -> int:
        return int(self.values.shape[0])

    @property
    def ok(self) -> np.ndarray:
        """Boolean mask of rounds that produced a regular fused value."""
        return self.statuses == "ok"

    def module_weight(self, module: str) -> np.ndarray:
        """One module's weight series (requires ``diagnostics=True``)."""
        if self.weights is None:
            raise FusionError(
                "weights not recorded; re-run the batch with diagnostics=True"
            )
        try:
            column = self.modules.index(module)
        except ValueError:
            raise FusionError(f"no module named {module!r} in this batch")
        return self.weights[:, column]

    def to_results(self) -> List[FusionResult]:
        """Per-round :class:`FusionResult` objects.

        When the batch was run with diagnostics the stored results are
        returned as-is; otherwise a minimal list (value + status, no
        outcome) is synthesised from the arrays.
        """
        if self.results is not None:
            return list(self.results)
        out: List[FusionResult] = []
        for number in range(self.n_rounds):
            status = str(self.statuses[number])
            value = None if status == "skipped" else float(self.values[number])
            out.append(
                FusionResult(round_number=number, value=value, status=status)
            )
        return out


def process_matrix(
    engine: FusionEngine,
    matrix: Any,
    modules: Optional[Sequence[str]] = None,
    diagnostics: bool = False,
) -> BatchResult:
    """Fuse every row of ``matrix`` through ``engine`` in one batch.

    Accepts the same inputs as the legacy ``run_matrix`` loop (NaN or
    None marks a missing reading) and mutates the engine exactly as
    that loop would: roster learning, ``rounds_processed`` /
    ``rounds_degraded``, ``last_accepted`` and voter history all end
    up in the same state, and ``raise`` fault policies raise the same
    exception at the same round.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise FusionError(f"expected a 2-D matrix, got shape {matrix.shape}")
    if modules is None:
        modules = [f"E{i + 1}" for i in range(matrix.shape[1])]
    modules = list(modules)
    if len(modules) != matrix.shape[1]:
        raise FusionError("module name count does not match matrix columns")
    n_rounds, n_modules = matrix.shape
    if n_rounds == 0:
        # The legacy loop never touched the roster for an empty matrix.
        return BatchResult(
            modules=tuple(modules),
            values=np.zeros(0),
            statuses=np.zeros(0, dtype="<U7"),
            weights=np.zeros((0, n_modules)) if diagnostics else None,
            results=[] if diagnostics else None,
        )

    kernel = None
    if (
        engine.exclusion == "NONE"
        and n_modules > 0
        and len(set(modules)) == n_modules
    ):
        kernel = engine.voter.batch_kernel()
    if kernel is None:
        return _fallback(engine, matrix, modules, diagnostics)

    for module in modules:
        if module not in engine.roster:
            engine.roster.append(module)

    ctx = _BatchContext(engine, matrix, modules, diagnostics)
    if kernel == "stateless":
        _run_stateless(ctx)
    elif kernel == "clustering":
        _run_clustering(ctx)
    elif kernel == "plurality":
        _run_plurality(ctx)
    elif kernel == "incoherence":
        _run_incoherence(ctx)
    elif kernel == "history":
        _run_history(ctx)
    else:  # pragma: no cover - registry/hook mismatch
        raise FusionError(f"unknown batch kernel {kernel!r}")
    return ctx.finish()


def fuse(
    values: Any,
    voter: Union[str, Voter, Any] = "avoc",
    modules: Optional[Sequence[str]] = None,
    *,
    params: Optional[Any] = None,
    quorum: Optional[Any] = None,
    fault_policy: Optional[Any] = None,
    roster: Optional[Sequence[str]] = None,
    diagnostics: bool = False,
) -> BatchResult:
    """Fuse a value matrix in one call — the top-level facade.

    Args:
        values: rounds × modules array-like (a single round may be
            passed as a 1-D sequence); NaN or None marks a missing
            reading.
        voter: an algorithm name from the registry (``"avoc"``,
            ``"average"``, ...), a ready :class:`Voter` instance, or a
            :class:`~repro.vdx.spec.VotingSpec` document.
        modules: optional column names (default ``E1..En``).
        params: optional :class:`VoterParams` overrides, only valid
            with a registry name.
        quorum: optional :class:`QuorumRule` for the engine.
        fault_policy: optional :class:`FaultPolicy` for the engine.
        roster: optional expected module roster (defaults to the
            matrix columns).
        diagnostics: record per-round weights and full
            :class:`FusionResult` objects on the returned
            :class:`BatchResult`.

    Returns:
        A :class:`BatchResult` — ``result.values`` is the fused output
        series.

    Example:
        >>> import repro
        >>> repro.fuse([[1.0, 1.1, 1.2]], "average").values
        array([1.1])
    """
    matrix = np.asarray(values, dtype=float)
    if matrix.ndim == 1:
        matrix = matrix[None, :]

    engine: FusionEngine
    if isinstance(voter, Voter):
        if params is not None:
            raise FusionError("params only apply when voter is a name")
        engine = FusionEngine(
            voter, roster=roster, quorum=quorum, fault_policy=fault_policy
        )
    elif isinstance(voter, str):
        from ..voting.registry import create_voter

        engine = FusionEngine(
            create_voter(voter, params=params),
            roster=roster,
            quorum=quorum,
            fault_policy=fault_policy,
        )
    else:
        from ..vdx.factory import build_engine
        from ..vdx.spec import VotingSpec

        if not isinstance(voter, VotingSpec):
            raise FusionError(
                "voter must be an algorithm name, a Voter instance or a "
                f"VotingSpec, got {type(voter).__name__}"
            )
        if params is not None:
            raise FusionError("params only apply when voter is a name")
        engine = build_engine(voter, fault_policy=fault_policy)
        if quorum is not None:
            engine.quorum = quorum
        if roster is not None:
            engine.roster = list(roster)
    return engine.process_batch(matrix, modules, diagnostics=diagnostics)


def _fallback(
    engine: FusionEngine,
    matrix: np.ndarray,
    modules: List[str],
    diagnostics: bool,
) -> BatchResult:
    """The exact legacy per-round loop, packaged as a BatchResult."""
    results: List[FusionResult] = []
    for number, row in enumerate(matrix):
        mapping = {
            m: (None if is_missing(v) else float(v))
            for m, v in zip(modules, row)
        }
        results.append(engine.process(Round.from_mapping(number, mapping)))
    values = np.asarray(
        [np.nan if r.value is None else float(r.value) for r in results]
    )
    statuses = np.asarray([r.status for r in results], dtype="<U7")
    if not diagnostics:
        return BatchResult(tuple(modules), values, statuses)
    weights = np.full(matrix.shape, np.nan)
    for number, result in enumerate(results):
        if result.outcome is not None:
            recorded = result.outcome.weights
            for column, module in enumerate(modules):
                if module in recorded:
                    weights[number, column] = recorded[module]
    return BatchResult(tuple(modules), values, statuses, weights, results)


class _BatchContext:
    """Shared per-batch state: policy evaluation, outputs, bookkeeping."""

    def __init__(
        self,
        engine: FusionEngine,
        matrix: np.ndarray,
        modules: List[str],
        diagnostics: bool,
    ):
        self.engine = engine
        self.matrix = matrix
        self.modules = modules
        self.diagnostics = diagnostics
        self.n_rounds, self.n_modules = matrix.shape
        self.mask = ~np.isnan(matrix)
        self.counts = self.mask.sum(axis=1)
        self.roster_size = len(engine.roster)

        policy = engine.fault_policy
        reasons = np.zeros(self.n_rounds, dtype=np.int8)
        if self.roster_size <= 0:
            reasons[:] = _MISSING
        else:
            missing_fraction = 1.0 - self.counts / self.roster_size
            reasons[missing_fraction > policy.missing_tolerance] = _MISSING
        required = engine.quorum.required_count(self.roster_size)
        if required > 0:
            reasons[(reasons == 0) & (self.counts < required)] = _QUORUM_ENGINE
        # Deprecated voter-level quorum: HistoryAwareVoter.vote checks
        # ceil(len(readings) * pct / 100) against the submitted count.
        pct = getattr(
            getattr(engine.voter, "params", None), "quorum_percentage", 0.0
        )
        if isinstance(engine.voter, HistoryAwareVoter) and pct > 0:
            voter_required = math.ceil(self.n_modules * pct / 100.0)
            reasons[
                (reasons == 0) & (self.counts < voter_required)
            ] = _QUORUM_VOTER
        # A fully-empty round that slipped past every earlier check
        # (missing_tolerance >= 1, no quorum) raises EmptyRoundError
        # inside the voter, which the engine maps to on_missing_majority.
        reasons[(reasons == 0) & (self.counts == 0)] = _EMPTY
        self.reasons = reasons
        self.actions = {
            _MISSING: policy.on_missing_majority,
            _QUORUM_ENGINE: policy.on_quorum_failure,
            _QUORUM_VOTER: policy.on_quorum_failure,
            _CONFLICT: policy.on_conflict,
            _EMPTY: policy.on_missing_majority,
        }
        cutoff = self.n_rounds
        for code, action in self.actions.items():
            if action == "raise":
                hits = np.flatnonzero(reasons == code)
                if hits.size and hits[0] < cutoff:
                    cutoff = int(hits[0])
        self.cutoff = cutoff
        self.votable = reasons == 0
        self.votable[cutoff:] = False

        self.outputs = np.full(self.n_rounds, np.nan)
        self.out_weights = (
            np.full((self.n_rounds, self.n_modules), np.nan)
            if diagnostics
            else None
        )
        self.outcomes: Optional[List[Optional[VoteOutcome]]] = (
            [None] * self.n_rounds if diagnostics else None
        )
        self.writebacks: List[Any] = []

    def _observe(self, cutoff: int) -> None:
        """Mirror the engine-stat mutations into the metrics registry.

        Runs before the ``raise``-policy exception, so a rejected batch
        still records the rounds it consumed — exactly like the
        per-round loop, where ``_degraded`` counts before raising.
        """
        obs = self.engine._obs
        if not obs.enabled:
            return
        processed = cutoff + (1 if cutoff < self.n_rounds else 0)
        obs.rounds.inc(processed)
        obs.batch_rounds.inc(processed)
        codes = self.reasons[:processed]
        if not codes.any():
            return
        counts = np.bincount(codes, minlength=6)
        for code, label in _REASON_LABELS_BY_CODE.items():
            hits = int(counts[code])
            if hits:
                obs.degraded[label].inc(hits)
        quorum = int(counts[_QUORUM_ENGINE] + counts[_QUORUM_VOTER])
        if quorum:
            obs.quorum_failures.inc(quorum)

    def mark_conflict(self, round_number: int) -> bool:
        """Record a NoMajorityError; False means the kernel must stop
        (the conflict policy is ``raise``)."""
        self.reasons[round_number] = _CONFLICT
        self.votable[round_number] = False
        if self.actions[_CONFLICT] == "raise":
            self.cutoff = round_number
            self.votable[round_number:] = False
            return False
        return True

    def finish(self) -> BatchResult:
        engine = self.engine
        cutoff = self.cutoff
        statuses = np.full(self.n_rounds, "ok", dtype="<U7")
        values = self.outputs
        last = engine.last_accepted
        degraded = 0
        results: Optional[List[FusionResult]] = (
            [] if self.diagnostics else None
        )

        if results is None and cutoff == self.n_rounds and not self.reasons.any():
            # Pure fast path: every round voted, nothing to replay.
            if self.n_rounds:
                last = float(values[-1])
        else:
            for number in range(cutoff):
                code = int(self.reasons[number])
                if code == 0:
                    value = float(values[number])
                    last = value
                    if results is not None:
                        results.append(
                            FusionResult(
                                round_number=number,
                                value=value,
                                status="ok",
                                outcome=self.outcomes[number],
                            )
                        )
                    continue
                degraded += 1
                if self.actions[code] == "last_value" and last is not None:
                    statuses[number] = "held"
                    values[number] = last
                    if results is not None:
                        results.append(
                            FusionResult(
                                round_number=number, value=last, status="held"
                            )
                        )
                else:
                    statuses[number] = "skipped"
                    values[number] = np.nan
                    if results is not None:
                        results.append(
                            FusionResult(
                                round_number=number, value=None, status="skipped"
                            )
                        )

        engine.rounds_processed += cutoff
        engine.rounds_degraded += degraded
        engine.last_accepted = last
        self._observe(cutoff)
        for writeback in self.writebacks:
            writeback()
        if cutoff < self.n_rounds:
            engine.rounds_processed += 1
            engine.rounds_degraded += 1
            code = int(self.reasons[cutoff])
            if code in (_QUORUM_ENGINE, _QUORUM_VOTER):
                raise QuorumNotReachedError(
                    int(self.counts[cutoff]),
                    engine.quorum.required_count(self.roster_size),
                )
            if code == _CONFLICT:
                raise FusionError(f"round {cutoff} rejected: no majority")
            reason = (
                "no values present"
                if code == _EMPTY
                else "majority of values missing"
            )
            raise FusionError(f"round {cutoff} rejected: {reason}")
        return BatchResult(
            modules=tuple(self.modules),
            values=values,
            statuses=statuses,
            weights=self.out_weights,
            results=results,
        )


def _present_modules(ctx: _BatchContext, columns: np.ndarray) -> List[str]:
    return [ctx.modules[int(j)] for j in columns]


def _run_stateless(ctx: _BatchContext) -> None:
    voter = ctx.engine.voter
    out = kernels.batch_collate(
        voter.collation, ctx.matrix, ctx.mask, ctx.counts, ctx.votable
    )
    ctx.outputs[ctx.votable] = out[ctx.votable]
    if ctx.diagnostics:
        ctx.out_weights[ctx.votable[:, None] & ctx.mask] = 1.0
        for number in np.flatnonzero(ctx.votable):
            present = _present_modules(ctx, np.flatnonzero(ctx.mask[number]))
            ctx.outcomes[number] = VoteOutcome(
                round_number=int(number),
                value=float(out[number]),
                weights={m: 1.0 for m in present},
            )


def _run_clustering(ctx: _BatchContext) -> None:
    voter = ctx.engine.voter
    params = voter.params
    margins = kernels.batch_dynamic_margins(
        ctx.matrix, params.error, params.min_margin, ctx.counts
    )
    cluster_margins = margins * params.soft_threshold
    collation = params.collation.upper()
    # Winner selection and collation are row-parallel: the winning-run
    # membership mask doubles as a presence mask, so collating the
    # winning values is just batch_collate over that mask.
    winners = kernels.batch_cluster_runs(
        ctx.matrix, cluster_margins, ctx.mask, ctx.counts, ctx.votable
    )
    winner_counts = winners.sum(axis=1)
    out = kernels.batch_collate(
        collation, ctx.matrix, winners, winner_counts, ctx.votable
    )
    ctx.outputs[ctx.votable] = out[ctx.votable]
    if ctx.diagnostics:
        for number in np.flatnonzero(ctx.votable):
            present = np.flatnonzero(ctx.mask[number])
            margin = float(cluster_margins[number])
            # The full run-size list is diagnostic-only; the fused value
            # and weights above come from the vectorized winner mask.
            runs = kernels.sorted_runs(ctx.matrix[number, present], margin)
            in_cluster = winners[number, present].astype(float)
            ctx.out_weights[number, present] = in_cluster
            names = _present_modules(ctx, present)
            weights = {m: float(w) for m, w in zip(names, in_cluster)}
            ctx.outcomes[number] = VoteOutcome(
                round_number=int(number),
                value=float(out[number]),
                weights=weights,
                eliminated=tuple(
                    m for m, w in zip(names, in_cluster) if w == 0.0
                ),
                used_bootstrap=True,
                diagnostics={
                    "cluster_sizes": [int(run.size) for run in runs],
                    "margin": margin,
                },
            )


def _run_plurality(ctx: _BatchContext) -> None:
    voter = ctx.engine.voter
    tie_break = voter._last_output
    for number in np.flatnonzero(ctx.votable):
        if number >= ctx.cutoff:
            break
        values = ctx.matrix[number, ctx.mask[number]].tolist()
        tallies: Dict[float, float] = {}
        for value in values:
            tallies[value] = tallies.get(value, 0.0) + 1.0
        top = max(tallies.values())
        winners = [v for v, tally in tallies.items() if tally == top]
        if len(winners) == 1:
            winner = winners[0]
        elif tie_break is not None and tie_break in winners:
            winner = tie_break
        else:
            if not ctx.mark_conflict(int(number)):
                break
            continue
        tie_break = winner
        ctx.outputs[number] = winner
        if ctx.diagnostics:
            ctx.out_weights[number, ctx.mask[number]] = 1.0
            present = _present_modules(ctx, np.flatnonzero(ctx.mask[number]))
            ctx.outcomes[number] = VoteOutcome(
                round_number=int(number),
                value=winner,
                weights={m: 1.0 for m in present},
                diagnostics={"tallies": tallies},
            )

    def writeback() -> None:
        voter._last_output = tie_break

    ctx.writebacks.append(writeback)


def _run_incoherence(ctx: _BatchContext) -> None:
    """IncoherenceMaskingVoter: batch margins + the voter's own core.

    The dynamic margin is the only per-round quantity that vectorizes
    (it dominates the scalar cost via ``np.median``); the mask/score
    recurrence itself is replayed through the voter's ``_apply`` and
    ``_outcome`` methods so the two paths cannot drift apart.  State is
    mutated in place — the votable set is fixed up front and this
    kernel never marks conflicts, so there is no writeback to defer.
    """
    voter = ctx.engine.voter
    params = voter.params
    margins = kernels.batch_dynamic_margins(
        ctx.matrix, params.error, params.min_margin, ctx.counts
    )
    ensured = False
    for number in np.flatnonzero(ctx.votable):
        if number >= ctx.cutoff:
            break
        if not ensured:
            # The scalar path ensures every round with the full module
            # roster; once is equivalent (ensure only inserts zeros).
            voter._ensure(ctx.modules)
            ensured = True
        columns = np.flatnonzero(ctx.mask[number])
        names = _present_modules(ctx, columns)
        values = [float(v) for v in ctx.matrix[number, columns]]
        margin = float(margins[number])
        output, weights = voter._apply(names, values, margin)
        ctx.outputs[number] = output
        if ctx.diagnostics:
            ctx.out_weights[number, columns] = weights
            ctx.outcomes[number] = voter._outcome(
                int(number), names, values, weights, margin, output
            )


#: Adaptive segment-scan block sizing: start small so event-dense
#: stretches (repeated clips / reseeds) waste little speculative scan
#: work, and double up while blocks commit cleanly so long event-free
#: stretches amortise the per-block overhead.
_SCAN_BLOCK_MIN = 16
_SCAN_BLOCK_MAX = 1024


def _run_history(ctx: _BatchContext) -> None:
    engine = ctx.engine
    voter = engine.voter
    params = voter.params
    from ..voting.avoc import AvocVoter

    history = voter.history
    existing = list(history.modules)
    known = set(existing)
    universe = existing + [m for m in ctx.modules if m not in known]
    n_univ = len(universe)
    state = np.asarray([history.get(m) for m in universe], dtype=float)
    column_of = {m: i for i, m in enumerate(universe)}
    cols = np.asarray([column_of[m] for m in ctx.modules], dtype=np.intp)

    update_count0 = history.update_count
    avoc = isinstance(voter, AvocVoter)
    bootstraps = voter.bootstraps_used if avoc else 0
    bootstrap_mode = params.bootstrap_mode if avoc else "never"
    auto_bootstrap = bootstrap_mode == "auto"
    failure_tolerance = getattr(voter, "FAILURE_TOLERANCE", 0.05)

    source = voter.weight_source
    eliminates = voter.eliminates and params.elimination != "none"
    fixed_elimination = params.elimination == "fixed"
    elimination_cutoff = params.elimination_threshold
    additive = history.policy == "additive"
    reward, penalty = history.reward, history.penalty
    learning_rate = history.learning_rate
    one_minus_lr = 1.0 - learning_rate
    collation = params.collation.upper()
    collate = kernels.collation_function(collation)

    margins = kernels.batch_dynamic_margins(
        ctx.matrix, params.error, params.min_margin, ctx.counts
    )
    scores_all = kernels.batch_agreement_scores(
        ctx.matrix,
        margins,
        voter.agreement_kind,
        params.soft_threshold,
        ctx.mask,
        ctx.counts,
        ctx.votable,
    )

    # The clamp and the state-independent half of the record update are
    # the same expression for every round — hoist them out of the scan.
    clamped_all = np.minimum(np.maximum(scores_all, 0.0), 1.0)
    if additive:
        step_all = reward * clamped_all - penalty * (1.0 - clamped_all)
    else:
        step_all = learning_rate * clamped_all

    votable_idx = np.flatnonzero(ctx.votable)
    n_v = int(votable_idx.size)
    if n_v:
        mask_v = ctx.mask[votable_idx]
        counts_v = ctx.counts[votable_idx]
        # Steps and presence in record-universe column space: absent
        # modules carry a 0.0 step (additive: x + 0.0 == x bitwise) and
        # a False presence bit (EMA skips them entirely).
        step_univ = np.zeros((n_v, n_univ))
        step_univ[:, cols] = np.where(mask_v, step_all[votable_idx], 0.0)
        present_univ = np.zeros((n_v, n_univ), dtype=bool)
        present_univ[:, cols] = mask_v

        before_univ = np.empty((n_v, n_univ))
        is_bootstrap = np.zeros(n_v, dtype=bool)

        def scalar_round(i: int) -> None:
            """One segment-boundary round, exactly as the scalar loop.

            Handles the rounds the vectorized scans cannot express:
            AVOC bootstrap reseeds and additive updates the clamp
            actually alters.
            """
            nonlocal bootstraps
            before_univ[i] = state
            number = int(votable_idx[i])
            present = np.flatnonzero(mask_v[i])
            slots = cols[present]
            values = ctx.matrix[number, present]
            records = state[slots]

            bootstrap = False
            if bootstrap_mode == "always":
                bootstrap = values.size > 0
            elif auto_bootstrap:
                bootstrap = (
                    update_count0 + i == 0
                    and bool(np.all(np.abs(records - 1.0) <= 1e-12))
                ) or (
                    values.size > 0
                    and bool(np.all(records <= failure_tolerance))
                )
            if bootstrap:
                is_bootstrap[i] = True
                bootstraps += 1
                margin = float(margins[number] * params.soft_threshold)
                runs = kernels.sorted_runs(values, margin)
                winners = np.sort(runs[0])
                value = collate(values[winners], None)
                seeded = np.zeros(values.size)
                seeded[winners] = 1.0
                state[slots] = seeded
                ctx.outputs[number] = value
                if ctx.diagnostics:
                    ctx.out_weights[number, present] = seeded
                    names = _present_modules(ctx, present)
                    ctx.outcomes[number] = VoteOutcome(
                        round_number=number,
                        value=value,
                        weights={m: float(w) for m, w in zip(names, seeded)},
                        history=dict(zip(universe, state.tolist())),
                        agreement={m: float(w) for m, w in zip(names, seeded)},
                        eliminated=tuple(
                            m for m, w in zip(names, seeded) if w == 0.0
                        ),
                        used_bootstrap=True,
                        diagnostics={
                            "cluster_sizes": [int(run.size) for run in runs],
                            "margin": margin,
                        },
                    )
                return
            step = step_univ[i, slots]
            if additive:
                updated = records + step
            else:
                updated = one_minus_lr * records + step
            state[slots] = np.minimum(np.maximum(updated, 0.0), 1.0)

        i = 0
        block = _SCAN_BLOCK_MIN
        if auto_bootstrap and update_count0 == 0:
            # The "fresh set" trigger needs update_count == 0, which
            # only the very first voted round can satisfy — check it
            # scalar, then the scans only watch the "failed" trigger.
            scalar_round(0)
            i = 1
        while i < n_v:
            if bootstrap_mode == "always":
                scalar_round(i)
                i += 1
                continue
            b = min(block, n_v - i)
            steps_b = step_univ[i : i + b]
            if additive:
                befores_b, finals_b, events_b = kernels.additive_scan(
                    state, steps_b
                )
            else:
                befores_b, finals_b = kernels.ema_scan(
                    state, steps_b, present_univ[i : i + b], one_minus_lr
                )
                events_b = None
            if auto_bootstrap:
                # "All present records failed" reseeds *before* the
                # round's update, so it also ends the segment.
                failed_b = np.all(
                    (befores_b[:, cols] <= failure_tolerance)
                    | ~mask_v[i : i + b],
                    axis=1,
                )
                events_b = failed_b if events_b is None else events_b | failed_b
            committed = b
            if events_b is not None and events_b.any():
                committed = int(np.argmax(events_b))
            before_univ[i : i + committed] = befores_b[:committed]
            if committed == b:
                state = finals_b
                block = min(block * 2, _SCAN_BLOCK_MAX)
            else:
                # befores row `committed` is the state after the last
                # committed round — rolling back is free.
                state = befores_b[committed].copy()
                block = _SCAN_BLOCK_MIN
            i += committed
            if committed < b:
                scalar_round(i)
                i += 1

        regular = ~is_bootstrap
        if regular.any():
            values_v = ctx.matrix[votable_idx]
            scores_v = scores_all[votable_idx]
            records_v = before_univ[:, cols]
            if source == "history":
                weights_v = records_v.copy()
            elif source == "agreement":
                weights_v = scores_v.copy()
            else:
                weights_v = np.ones((n_v, ctx.n_modules))
            if eliminates:
                if fixed_elimination:
                    eliminated_v = records_v < elimination_cutoff
                else:
                    means = kernels.batch_masked_mean(
                        records_v, mask_v, counts_v, regular
                    )
                    eliminated_v = records_v < (means[:, None] - 1e-12)
                weights_v[eliminated_v] = 0.0
            out_v = kernels.batch_weighted_collate(
                collation, values_v, weights_v, mask_v, counts_v, regular
            )
            sel = np.flatnonzero(regular)
            ctx.outputs[votable_idx[sel]] = out_v[sel]
            if ctx.diagnostics:
                for i in sel.tolist():
                    number = int(votable_idx[i])
                    present = np.flatnonzero(mask_v[i])
                    names = _present_modules(ctx, present)
                    weights = weights_v[i, present]
                    # The next round's before-state is this round's
                    # after-state; the last round's is the final state.
                    after = before_univ[i + 1] if i + 1 < n_v else state
                    ctx.out_weights[number, present] = weights
                    ctx.outcomes[number] = VoteOutcome(
                        round_number=number,
                        value=float(out_v[i]),
                        weights={
                            m: float(w) for m, w in zip(names, weights)
                        },
                        history=dict(zip(universe, after.tolist())),
                        agreement={
                            m: float(s)
                            for m, s in zip(names, scores_v[i, present])
                        },
                        eliminated=tuple(
                            m for m, w in zip(names, weights) if w == 0.0
                        ),
                    )

    update_count = update_count0 + n_v
    rounds_voted = voter._rounds_voted + n_v
    # HistoryAwareVoter.vote calls history.ensure() even when its own
    # (deprecated) quorum check then rejects the round — those rounds
    # materialise records without updating them.
    limit = min(ctx.cutoff + 1, ctx.n_rounds)
    materialised = bool(n_v) or bool(
        np.any(
            (ctx.reasons[:limit] == _QUORUM_VOTER)
            | (ctx.reasons[:limit] == _EMPTY)
        )
    )

    def writeback() -> None:
        if materialised:
            history.absorb(dict(zip(universe, state)), update_count)
        voter._rounds_voted = rounds_voted
        if avoc:
            voter._bootstraps_used = bootstraps

    ctx.writebacks.append(writeback)
