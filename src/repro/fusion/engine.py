"""The fusion engine: a voter wrapped in deployment policy.

One engine instance owns one voter, one quorum rule, one exclusion
filter and one fault policy, and processes rounds (or whole recorded
matrices, as the paper's reproducible evaluation does) into
:class:`FusionResult` objects.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import (
    EmptyRoundError,
    FusionError,
    NoMajorityError,
    QuorumNotReachedError,
)
from ..obs import EngineInstruments, get_default_registry
from ..types import Round, VoteOutcome
from ..voting.base import Voter
from .exclusion import exclude_values
from .faults import FaultPolicy
from .quorum import QuorumRule

#: Engine degraded-round reason → metric label.
_REASON_LABELS = {
    "majority of values missing": "majority_missing",
    "quorum": "quorum",
    "no majority": "conflict",
    "no values present": "empty",
}


@dataclass(frozen=True)
class FusionResult:
    """One round's engine-level result.

    ``status`` is ``"ok"`` for a regular vote, ``"held"`` when the fault
    policy substituted the last accepted value, and ``"skipped"`` when
    the round produced no output at all.
    """

    round_number: int
    value: Optional[Any]
    status: str
    excluded: Tuple[str, ...] = ()
    outcome: Optional[VoteOutcome] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class FusionEngine:
    """Policy wrapper around a voter.

    Args:
        voter: the voting algorithm instance.
        roster: known module names.  When None, the roster is learned
            from the first round and extended as new modules appear.
        quorum: quorum rule (default: no quorum requirement).  When no
            rule is given and the voter carries a non-zero (deprecated)
            ``quorum_percentage``, that percentage is adopted as an
            ``UNTIL`` rule so the engine stays the single enforcement
            point.
        exclusion: VDX exclusion mode.
        exclusion_threshold: threshold for the exclusion mode.
        fault_policy: behaviour on degraded rounds.
        registry: metrics registry to instrument against (default: the
            process-global registry from :mod:`repro.obs`; instruments
            are resolved once, here, so a registry swap only affects
            engines constructed afterwards).
    """

    def __init__(
        self,
        voter: Voter,
        roster: Optional[Sequence[str]] = None,
        quorum: Optional[QuorumRule] = None,
        exclusion: str = "NONE",
        exclusion_threshold: float = 0.0,
        fault_policy: Optional[FaultPolicy] = None,
        registry=None,
    ):
        self.voter = voter
        self.roster: List[str] = list(roster) if roster else []
        if quorum is None:
            deprecated_pct = getattr(
                getattr(voter, "params", None), "quorum_percentage", 0.0
            )
            if deprecated_pct > 0:
                quorum = QuorumRule(mode="UNTIL", percentage=deprecated_pct)
        self.quorum = quorum or QuorumRule()
        self.exclusion = exclusion.upper()
        self.exclusion_threshold = exclusion_threshold
        self.fault_policy = fault_policy or FaultPolicy()
        self.last_accepted: Optional[Any] = None
        self.rounds_processed = 0
        self.rounds_degraded = 0
        self._obs = EngineInstruments(
            registry if registry is not None else get_default_registry(),
            getattr(voter, "name", type(voter).__name__),
            voter,
        )

    @classmethod
    def from_spec(
        cls, spec, voter: Voter, fault_policy=None, registry=None
    ) -> "FusionEngine":
        """Build an engine configured by a VDX specification."""
        return cls(
            voter=voter,
            quorum=QuorumRule(mode=spec.quorum, percentage=spec.quorum_percentage),
            exclusion=spec.exclusion,
            exclusion_threshold=spec.exclusion_threshold,
            fault_policy=fault_policy,
            registry=registry,
        )

    # -- degraded-round handling -----------------------------------------

    def _degraded(self, voting_round: Round, action: str, reason: str) -> FusionResult:
        self.rounds_degraded += 1
        self._obs.degraded[_REASON_LABELS[reason]].inc()
        if reason == "quorum":
            self._obs.quorum_failures.inc()
        if action == "raise":
            if reason == "quorum":
                raise QuorumNotReachedError(
                    voting_round.submitted_count,
                    self.quorum.required_count(len(self.roster)),
                )
            raise FusionError(f"round {voting_round.number} rejected: {reason}")
        if action == "last_value" and self.last_accepted is not None:
            return FusionResult(
                round_number=voting_round.number,
                value=self.last_accepted,
                status="held",
            )
        return FusionResult(
            round_number=voting_round.number, value=None, status="skipped"
        )

    # -- main entry ---------------------------------------------------------

    def process(self, voting_round: Round) -> FusionResult:
        """Run one round through exclusion, quorum, fault policy and vote."""
        if not self._obs.enabled:
            return self._process(voting_round)
        # Timestamps bracket the call only — no clock value ever feeds
        # the fused output, so determinism is untouched.
        start = time.perf_counter()
        try:
            return self._process(voting_round)
        finally:
            self._obs.round_seconds.observe(time.perf_counter() - start)

    def _process(self, voting_round: Round) -> FusionResult:
        self.rounds_processed += 1
        self._obs.rounds.inc()
        for module in voting_round.modules:
            if module not in self.roster:
                self.roster.append(module)

        policy = self.fault_policy
        if policy.majority_missing(voting_round.submitted_count, len(self.roster)):
            return self._degraded(
                voting_round, policy.on_missing_majority, "majority of values missing"
            )
        if not self.quorum.satisfied(voting_round, len(self.roster)):
            return self._degraded(voting_round, policy.on_quorum_failure, "quorum")

        filtered, excluded = exclude_values(
            voting_round, self.exclusion, self.exclusion_threshold
        )
        try:
            outcome = self.voter.vote(filtered)
        except NoMajorityError:
            return self._degraded(voting_round, policy.on_conflict, "no majority")
        except EmptyRoundError:
            return self._degraded(
                voting_round, policy.on_missing_majority, "no values present"
            )
        if not outcome.quorum_reached or outcome.value is None:
            return self._degraded(voting_round, policy.on_quorum_failure, "quorum")
        self.last_accepted = outcome.value
        return FusionResult(
            round_number=voting_round.number,
            value=outcome.value,
            status="ok",
            excluded=excluded,
            outcome=outcome,
        )

    def run(self, rounds) -> List[FusionResult]:
        """Process an iterable of rounds in order."""
        return [self.process(r) for r in rounds]

    def process_batch(
        self,
        matrix: np.ndarray,
        modules: Optional[Sequence[str]] = None,
        diagnostics: bool = False,
    ):
        """Process a recorded rounds × modules matrix in one batch.

        NaN (or None) entries are treated as missing values.  The fused
        series comes back as a :class:`~repro.fusion.batch.BatchResult`
        whose arrays are bit-identical to running :meth:`process` row by
        row — including engine statistics, ``last_accepted`` carry-over,
        voter history state and ``raise`` fault-policy exceptions — but
        computed through the vectorized kernels in
        :mod:`repro.voting.kernels` where the voter supports them.

        Args:
            matrix: rounds × modules array-like of readings.
            modules: optional column names (default ``E1..En``).
            diagnostics: also record the per-round weight matrix and
                full :class:`FusionResult` objects (slower; needed by
                :meth:`run_matrix` compatibility callers).
        """
        from .batch import process_matrix

        if not self._obs.enabled:
            return process_matrix(self, matrix, modules, diagnostics=diagnostics)
        start = time.perf_counter()
        try:
            return process_matrix(self, matrix, modules, diagnostics=diagnostics)
        finally:
            self._obs.batch_seconds.observe(time.perf_counter() - start)

    def run_matrix(
        self, matrix: np.ndarray, modules: Optional[Sequence[str]] = None
    ) -> List[FusionResult]:
        """Process a recorded dataset matrix (rounds × modules).

        .. deprecated:: 1.0
            Use :func:`repro.fuse` / :func:`repro.fuse_many` (or
            :meth:`process_batch` directly); ``run_matrix`` is a thin
            compatibility wrapper and will be removed in 2.0.

        NaN entries are treated as missing values, matching the UC-2
        dataset's unreachable-beacon gaps.  Compatibility wrapper over
        :meth:`process_batch` — outputs are bit-identical to the
        original per-round loop.
        """
        warnings.warn(
            "FusionEngine.run_matrix is deprecated; use repro.fuse() / "
            "repro.fuse_many() (or FusionEngine.process_batch) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.process_batch(matrix, modules, diagnostics=True).to_results()

    def output_series(self, results: Sequence[FusionResult]) -> np.ndarray:
        """Extract the output values as a float array (NaN for skips)."""
        return np.asarray(
            [float("nan") if r.value is None else float(r.value) for r in results]
        )

    def statistics(self) -> Dict[str, Any]:
        """Operational summary: throughput, degradation, availability."""
        processed = self.rounds_processed
        degraded = self.rounds_degraded
        return {
            "rounds_processed": processed,
            "rounds_degraded": degraded,
            "availability": (processed - degraded) / processed if processed else 0.0,
            "roster_size": len(self.roster),
            "last_accepted": self.last_accepted,
            "algorithm": getattr(self.voter, "name", type(self.voter).__name__),
        }

    def reset(self) -> None:
        """Reset voter state and engine counters (roster is kept)."""
        self.voter.reset()
        self.last_accepted = None
        self.rounds_processed = 0
        self.rounds_degraded = 0
