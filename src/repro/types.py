"""Core value types shared across the library.

The voting stack passes data around in a small number of immutable
shapes:

* :class:`Reading` — one sensor's value for one round (possibly missing).
* :class:`Round` — the set of readings submitted for one voting round.
* :class:`VoteOutcome` — the fused output of one round plus diagnostics.

All numeric voting operates on ``float`` values; categorical voting
(strings, JSON blobs) uses the same containers with ``value`` holding an
arbitrary hashable object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .exceptions import EmptyRoundError

#: Sentinel used in dataset matrices for a missing measurement.
MISSING = float("nan")


def is_missing(value: Any) -> bool:
    """Return True when ``value`` represents a missing measurement.

    ``None`` and ``NaN`` floats both count as missing; any other value —
    including 0.0 and empty strings — is a real reading.
    """
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return False


@dataclass(frozen=True)
class Reading:
    """A single measurement submitted by one module for one round."""

    module: str
    value: Any
    timestamp: float = 0.0

    @property
    def missing(self) -> bool:
        return is_missing(self.value)


@dataclass(frozen=True)
class Round:
    """All readings submitted for one voting round.

    ``values`` preserves submission order; module names must be unique
    within a round.
    """

    number: int
    readings: Tuple[Reading, ...]

    def __post_init__(self):
        names = [r.module for r in self.readings]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate module names in round {self.number}: {names}")

    @classmethod
    def from_mapping(
        cls, number: int, values: Mapping[str, Any], timestamp: float = 0.0
    ) -> "Round":
        """Build a round from a ``{module: value}`` mapping."""
        readings = tuple(
            Reading(module=m, value=v, timestamp=timestamp) for m, v in values.items()
        )
        return cls(number=number, readings=readings)

    @classmethod
    def from_row(
        cls,
        number: int,
        modules: Sequence[str],
        row: Sequence[Any],
        timestamp: float = 0.0,
    ) -> "Round":
        """Build a round from parallel module names and values.

        NaN and None entries become missing readings — the dataset-
        matrix convention used by :meth:`FusionEngine.process_batch`.
        """
        readings = tuple(
            Reading(
                module=m,
                value=None if is_missing(v) else float(v),
                timestamp=timestamp,
            )
            for m, v in zip(modules, row)
        )
        return cls(number=number, readings=readings)

    @classmethod
    def from_values(
        cls, number: int, values: Sequence[Any], prefix: str = "E", start: int = 1
    ) -> "Round":
        """Build a round from positional values, naming modules E1, E2, ..."""
        readings = tuple(
            Reading(module=f"{prefix}{start + i}", value=v)
            for i, v in enumerate(values)
        )
        return cls(number=number, readings=readings)

    @property
    def modules(self) -> Tuple[str, ...]:
        return tuple(r.module for r in self.readings)

    @property
    def present(self) -> Tuple[Reading, ...]:
        """Readings that actually carry a value."""
        return tuple(r for r in self.readings if not r.missing)

    @property
    def submitted_count(self) -> int:
        return len(self.present)

    def value_of(self, module: str) -> Any:
        for r in self.readings:
            if r.module == module:
                return r.value
        raise KeyError(module)

    def require_nonempty(self) -> None:
        if not self.present:
            raise EmptyRoundError(f"round {self.number} has no present values")


@dataclass(frozen=True)
class VoteOutcome:
    """The result of fusing one round.

    Attributes:
        round_number: which round this outcome belongs to.
        value: the fused output value (None when the round was rejected).
        weights: per-module weight actually used in the collation.
        history: per-module history record *after* this round's update.
        agreement: per-module agreement score for this round.
        eliminated: modules zero-weighted by module elimination.
        used_bootstrap: True when the AVOC clustering step produced this
            output instead of the regular weighted path.
        quorum_reached: False when the round was rejected for lack of quorum.
        diagnostics: free-form extra information (cluster sizes, ties, ...).
    """

    round_number: int
    value: Optional[Any]
    weights: Dict[str, float] = field(default_factory=dict)
    history: Dict[str, float] = field(default_factory=dict)
    agreement: Dict[str, float] = field(default_factory=dict)
    eliminated: Tuple[str, ...] = ()
    used_bootstrap: bool = False
    quorum_reached: bool = True
    diagnostics: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Series:
    """A named series of per-round values, as plotted in the paper's figures."""

    name: str
    values: List[float] = field(default_factory=list)

    def append(self, value: float) -> None:
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, idx):
        return self.values[idx]
