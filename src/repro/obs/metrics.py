"""Dependency-free metric instruments: Counter, Gauge, Histogram.

Each instrument is a *family*: a metric name plus a (possibly empty)
tuple of label names.  ``family.labels(*values)`` returns the child
bound to those label values, creating it on first use; a family with no
labels acts as its own single child, so ``registry.counter(...).inc()``
works directly.

All mutation is thread-safe: children serialise updates behind a lock
(a plain ``+=`` on a Python float attribute is a read-modify-write and
is *not* atomic across threads).  Reads used by the text exposition
take the same lock, so a rendered snapshot is internally consistent
per child.

Histograms use fixed buckets chosen at family creation; the default
:data:`DEFAULT_LATENCY_BUCKETS` is an exponential ladder from 10 µs to
~5 s, wide enough for a stateless vote and a datastore-backed round
alike.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "exponential_buckets",
    "format_value",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def exponential_buckets(
    start: float, factor: float, count: int
) -> Tuple[float, ...]:
    """``count`` upper bounds growing geometrically from ``start``."""
    if start <= 0:
        raise ValueError(f"bucket start must be positive, got {start}")
    if factor <= 1.0:
        raise ValueError(f"bucket factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"bucket count must be >= 1, got {count}")
    bounds = []
    bound = float(start)
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


#: 10 µs .. ~5.2 s in powers of two — the fixed latency ladder shared by
#: every duration histogram in the system.
DEFAULT_LATENCY_BUCKETS = exponential_buckets(1e-5, 2.0, 20)


def format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


class _CounterChild:
    """One labelled counter series: a monotonically increasing float."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _GaugeChild:
    """One labelled gauge series: a settable value or a read callback."""

    __slots__ = ("_lock", "_value", "_function")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._function: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._function = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._function = None
            self._value += amount

    def set_function(self, function: Callable[[], float]) -> None:
        """Evaluate ``function`` at render time instead of storing a value.

        This keeps hot paths clock- and bookkeeping-free: the gauge costs
        nothing until someone actually renders or reads it.
        """
        with self._lock:
            self._function = function

    @property
    def value(self) -> float:
        with self._lock:
            function = self._function
            if function is None:
                return self._value
        try:
            return float(function())
        except Exception:
            return float("nan")


class _HistogramChild:
    """One labelled histogram series with fixed upper bounds."""

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def bucket_counts(self) -> Dict[float, int]:
        """Cumulative count per upper bound (``inf`` key = total)."""
        with self._lock:
            counts = list(self._counts)
        cumulative: Dict[float, int] = {}
        running = 0
        for bound, count in zip(self._bounds, counts):
            running += count
            cumulative[bound] = running
        cumulative[float("inf")] = running + counts[-1]
        return cumulative


class _Family:
    """Shared family machinery: label management and text exposition."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labels)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not self.labelnames:
            # A label-less family is its own single series.
            self._children[()] = self._make_child()

    def _make_child(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *values: Any) -> Any:
        """The child bound to these label values (created on first use)."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label values "
                f"({', '.join(self.labelnames)}), got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def _items(self) -> List[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())

    @property
    def _default(self) -> Any:
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled by ({', '.join(self.labelnames)}); "
                "use .labels(...)"
            )
        return self._children[()]

    # -- text exposition ---------------------------------------------------

    def render_lines(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, child in self._items():
            lines.extend(self._render_child(key, child))
        return lines

    def _render_child(
        self, key: Tuple[str, ...], child: Any
    ) -> List[str]:
        label_text = _render_labels(self.labelnames, key)
        return [f"{self.name}{label_text} {format_value(child.value)}"]


class Counter(_Family):
    """A monotonically increasing count (name should end in ``_total``)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    @property
    def value(self) -> float:
        return self._default.value


class Gauge(_Family):
    """A value that can go up and down (or be computed at render time)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def set_function(self, function: Callable[[], float]) -> None:
        self._default.set_function(function)

    @property
    def value(self) -> float:
        return self._default.value


class Histogram(_Family):
    """A distribution over fixed buckets (defaults to the latency ladder)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        bounds = tuple(
            sorted(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS))
        )
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be distinct")
        self.buckets = bounds
        super().__init__(name, help, labels)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    @property
    def sum(self) -> float:
        return self._default.sum

    @property
    def count(self) -> int:
        return self._default.count

    def bucket_counts(self) -> Dict[float, int]:
        return self._default.bucket_counts()

    def _render_child(
        self, key: Tuple[str, ...], child: Any
    ) -> List[str]:
        lines = []
        for bound, count in child.bucket_counts().items():
            le = "+Inf" if bound == float("inf") else format_value(bound)
            label_text = _render_labels(
                self.labelnames + ("le",), key + (le,)
            )
            lines.append(f"{self.name}_bucket{label_text} {count}")
        label_text = _render_labels(self.labelnames, key)
        lines.append(f"{self.name}_sum{label_text} {format_value(child.sum)}")
        lines.append(f"{self.name}_count{label_text} {child.count}")
        return lines
