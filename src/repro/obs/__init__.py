"""repro.obs — dependency-free observability for the fusion system.

A small Prometheus-style metrics layer: :class:`Counter`,
:class:`Gauge` and :class:`Histogram` instruments collected in a
:class:`MetricsRegistry` with a text exposition
(:meth:`MetricsRegistry.render`).  The fusion engine, the voter
service and the parallel runtime all instrument themselves against the
process-global default registry unless a registry is injected
explicitly; :func:`disable` swaps the default for a shared no-op
registry, making instrumentation in components constructed afterwards
literally free.

Quick use::

    import repro
    from repro.obs import get_default_registry

    repro.fuse([[1.0, 1.1, 0.9]], "avoc")
    print(get_default_registry().render())
"""

from .instruments import (
    ClusterInstruments,
    EngineInstruments,
    IngestInstruments,
    OpsInstruments,
    RuntimeInstruments,
    ServiceInstruments,
    StoreInstruments,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    exponential_buckets,
)
from .registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    get_default_registry,
    set_default_registry,
    use_registry,
)

__all__ = [
    "ClusterInstruments",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EngineInstruments",
    "IngestInstruments",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "OpsInstruments",
    "RuntimeInstruments",
    "ServiceInstruments",
    "StoreInstruments",
    "disable",
    "enable",
    "exponential_buckets",
    "get_default_registry",
    "set_default_registry",
    "use_registry",
]
