"""Metric registries: the process-global default, and injectable ones.

A :class:`MetricsRegistry` owns metric families keyed by name; asking
for an existing name returns the existing family (so every component
layer can declare its instruments idempotently against the same
registry).  ``registry.render()`` produces the Prometheus text format.

Disabling observability is a *registry swap*, not a flag checked on
every increment: :func:`disable` points the module-level default at
:data:`NULL_REGISTRY`, whose instruments are shared do-nothing objects.
Components resolve their registry once, at construction, so an engine
built while observability is disabled carries pure no-op instruments —
the property the zero-overhead benchmark assertion in
``benchmarks/test_latency.py`` pins down.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Sequence

from .metrics import Counter, Gauge, Histogram, _Family, format_value

__all__ = [
    "NULL_REGISTRY",
    "MetricsRegistry",
    "NullRegistry",
    "disable",
    "enable",
    "get_default_registry",
    "set_default_registry",
    "use_registry",
]


class MetricsRegistry:
    """A named collection of metric families with text exposition."""

    #: Instrument sites may consult this to skip clock reads entirely.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- family factories -------------------------------------------------

    def _get_or_create(
        self, cls: type, name: str, help: str, labels: Sequence[str], **kwargs: Any
    ) -> Any:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}, not {cls.kind}"  # type: ignore[attr-defined]
                    )
                if family.labelnames != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{family.labelnames}, not {tuple(labels)}"
                    )
                return family
            family = cls(name, help, labels, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    # -- introspection -----------------------------------------------------

    def families(self) -> Dict[str, _Family]:
        """Name → family snapshot (insertion-independent, sorted)."""
        with self._lock:
            return dict(sorted(self._families.items()))

    def render(self) -> str:
        """The Prometheus text exposition of every family, sorted by name.

        Every line is ``# HELP``/``# TYPE`` metadata or a
        ``name{labels} value`` sample.
        """
        lines = []
        for family in self.families().values():
            lines.extend(family.render_lines())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A structured (JSON-safe) snapshot of every family."""
        out: Dict[str, Dict[str, Any]] = {}
        for name, family in self.families().items():
            samples: Dict[str, Any] = {}
            for key, child in family._items():
                label = ",".join(
                    f"{n}={v}" for n, v in zip(family.labelnames, key)
                )
                if isinstance(family, Histogram):
                    total = child.count
                    buckets = {
                        ("+Inf" if bound == float("inf") else format_value(bound)):
                            (cumulative / total if total else 0.0)
                        for bound, cumulative in child.bucket_counts().items()
                    }
                    samples[label] = {
                        "count": total,
                        "sum": child.sum,
                        "buckets": buckets,
                    }
                else:
                    samples[label] = child.value
            out[name] = {"type": family.kind, "samples": samples}
        return out


class _NullInstrument:
    """One shared object that satisfies every instrument interface."""

    __slots__ = ()

    def labels(self, *values: Any) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, function: Any) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def sum(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    def bucket_counts(self) -> Dict[float, int]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """A registry whose instruments do nothing and render to nothing."""

    enabled = False

    def counter(self, name: str, help: str, labels: Sequence[str] = ()) -> Any:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> Any:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Any:
        return _NULL_INSTRUMENT

    def families(self) -> Dict[str, _Family]:
        return {}


#: The shared do-nothing registry :func:`disable` swaps in.
NULL_REGISTRY = NullRegistry()

_DEFAULT = MetricsRegistry()
_active = _DEFAULT
_swap_lock = threading.Lock()


def get_default_registry() -> MetricsRegistry:
    """The registry components fall back to when none is injected."""
    return _active


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default; returns the previous registry."""
    global _active
    with _swap_lock:
        previous = _active
        _active = registry
    return previous


def disable() -> None:
    """Turn observability off: the default becomes :data:`NULL_REGISTRY`.

    Only affects components constructed *after* the call — instruments
    are resolved at construction time, which is exactly what makes the
    enabled path branch-free.
    """
    set_default_registry(NULL_REGISTRY)


def enable() -> None:
    """Re-point the default at the process-global registry."""
    set_default_registry(_DEFAULT)


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` as the process default."""
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)
