"""Pre-bound instrument bundles for the engine, service and runtime layers.

Each bundle declares its metric families against a registry once, at
component construction, and keeps direct references to the labelled
children so the hot paths do a single attribute lookup and a no-lock
branch on ``enabled`` before touching a clock.  Against
:data:`~repro.obs.registry.NULL_REGISTRY` every child is the shared
no-op instrument, which is what makes instrumentation free when
observability is disabled.

The metric catalogue these bundles implement is documented in
``docs/observability.md``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List

from .registry import MetricsRegistry

__all__ = [
    "ClusterInstruments",
    "EngineInstruments",
    "OpsInstruments",
    "RuntimeInstruments",
    "ServiceInstruments",
    "StoreInstruments",
]

#: Degraded-round reason labels shared by the per-round and batch paths.
DEGRADED_REASONS = ("majority_missing", "quorum", "conflict", "empty")


def _history_summary(
    history: Any, reduce: Callable[[List[float]], float]
) -> Callable[[], float]:
    def read() -> float:
        records = list(history.snapshot().values())
        return reduce(records) if records else 0.0

    return read


class EngineInstruments:
    """Fusion-engine metrics: round counters, latency, history summaries."""

    __slots__ = (
        "enabled",
        "rounds",
        "degraded",
        "quorum_failures",
        "round_seconds",
        "batch_seconds",
        "batch_rounds",
    )

    def __init__(
        self, registry: MetricsRegistry, algorithm: str, voter: Any = None
    ):
        self.enabled = registry.enabled
        self.rounds = registry.counter(
            "fusion_rounds_total",
            "Rounds processed by the fusion engine.",
            labels=("algorithm",),
        ).labels(algorithm)
        degraded = registry.counter(
            "fusion_rounds_degraded_total",
            "Rounds that did not produce a regular vote, by reason.",
            labels=("algorithm", "reason"),
        )
        self.degraded = {
            reason: degraded.labels(algorithm, reason)
            for reason in DEGRADED_REASONS
        }
        self.quorum_failures = registry.counter(
            "fusion_quorum_failures_total",
            "Rounds rejected because the quorum rule was not satisfied.",
            labels=("algorithm",),
        ).labels(algorithm)
        self.round_seconds = registry.histogram(
            "fusion_round_seconds",
            "Wall time of one FusionEngine.process call.",
            labels=("algorithm",),
        ).labels(algorithm)
        self.batch_seconds = registry.histogram(
            "fusion_batch_seconds",
            "Wall time of one FusionEngine.process_batch call.",
            labels=("algorithm",),
        ).labels(algorithm)
        self.batch_rounds = registry.counter(
            "fusion_batch_rounds_total",
            "Rounds fused through the vectorized batch kernels.",
            labels=("algorithm",),
        ).labels(algorithm)
        history = getattr(voter, "history", None)
        if history is not None and hasattr(history, "snapshot"):
            summary = registry.gauge(
                "fusion_history_record",
                "Summary of the voter's per-module history records.",
                labels=("algorithm", "stat"),
            )
            # Render-time callbacks: the voting hot path never pays for
            # these, and the last engine constructed per algorithm wins.
            summary.labels(algorithm, "min").set_function(
                _history_summary(history, min)
            )
            summary.labels(algorithm, "max").set_function(
                _history_summary(history, max)
            )
            summary.labels(algorithm, "mean").set_function(
                _history_summary(history, lambda r: sum(r) / len(r))
            )


class ServiceInstruments:
    """Voter-service metrics: per-op request counters, latency, errors."""

    __slots__ = ("enabled", "requests", "errors", "request_seconds")

    def __init__(self, registry: MetricsRegistry, operations: Iterable[str]):
        self.enabled = registry.enabled
        requests = registry.counter(
            "service_requests_total",
            "Requests dispatched by the voter service, by operation.",
            labels=("op",),
        )
        errors = registry.counter(
            "service_errors_total",
            "Requests that raised a handled error, by operation.",
            labels=("op",),
        )
        seconds = registry.histogram(
            "service_request_seconds",
            "Wall time spent dispatching one request, by operation.",
            labels=("op",),
        )
        ops = list(operations)
        self.requests: Dict[str, Any] = {op: requests.labels(op) for op in ops}
        self.errors: Dict[str, Any] = {op: errors.labels(op) for op in ops}
        self.request_seconds: Dict[str, Any] = {
            op: seconds.labels(op) for op in ops
        }


class ClusterInstruments:
    """Cluster metrics: per-shard traffic, rebalances, failover latency.

    Backend ids are dynamic (shards join and leave), so the per-shard
    counters are resolved through ``labels()`` per call rather than
    pre-bound; every call site sits behind a network round-trip, so the
    dict lookup is noise there.
    """

    __slots__ = (
        "enabled",
        "_shard_requests",
        "_shard_errors",
        "requests",
        "rebalances",
        "rebalanced_series",
        "replica_disagreements",
        "failover_seconds",
        "batch_rounds",
        "backends_alive",
    )

    def __init__(self, registry: MetricsRegistry):
        self.enabled = registry.enabled
        self._shard_requests = registry.counter(
            "cluster_shard_requests_total",
            "Requests the gateway dispatched to each backend shard.",
            labels=("backend",),
        )
        self._shard_errors = registry.counter(
            "cluster_shard_errors_total",
            "Gateway->shard calls that ultimately failed, by backend.",
            labels=("backend",),
        )
        self.requests = registry.counter(
            "cluster_gateway_requests_total",
            "Requests dispatched by the cluster gateway, by operation.",
            labels=("op",),
        )
        self.rebalances = registry.counter(
            "cluster_rebalance_total",
            "Ring rebalances triggered by backend join/leave.",
        )
        self.rebalanced_series = registry.counter(
            "cluster_rebalanced_series_total",
            "Series handed off to a new replica set during rebalances.",
        )
        self.replica_disagreements = registry.counter(
            "cluster_replica_disagreements_total",
            "Rounds where the replica set answered with conflicting results.",
        )
        self.failover_seconds = registry.histogram(
            "cluster_failover_seconds",
            "Time from detecting a dead backend to its replacement "
            "answering a ping.",
        )
        self.batch_rounds = registry.histogram(
            "cluster_batch_rounds",
            "Rounds per gateway->shard micro-batch flush.",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, float("inf")),
        )
        self.backends_alive = registry.gauge(
            "cluster_backends_alive",
            "Backends currently believed alive by the gateway.",
        )

    def shard_request(self, backend: str) -> None:
        self._shard_requests.labels(backend).inc()

    def shard_error(self, backend: str) -> None:
        self._shard_errors.labels(backend).inc()


class IngestInstruments:
    """Async ingest-tier metrics: fan-in load, backpressure, framings.

    The frame counter is pre-bound per wire framing (the two framings
    are static), everything else is a plain gauge/counter — the async
    loop touches these on every message, so lookups stay out of the
    hot path.
    """

    __slots__ = (
        "enabled",
        "open_connections",
        "queued_votes",
        "backpressure_drops",
        "slow_consumer_disconnects",
        "coalesced_rounds",
        "frames_v2_json",
        "frames_v3_binary",
    )

    def __init__(self, registry: MetricsRegistry):
        self.enabled = registry.enabled
        self.open_connections = registry.gauge(
            "ingest_open_connections",
            "Sensor connections currently held by the async ingest tier.",
        )
        self.queued_votes = registry.gauge(
            "ingest_queued_votes",
            "Votes buffered in the ingest coalescer, not yet flushed.",
        )
        self.backpressure_drops = registry.counter(
            "ingest_backpressure_drops_total",
            "Votes refused because a per-connection or global queue "
            "bound was hit.",
        )
        self.slow_consumer_disconnects = registry.counter(
            "ingest_slow_consumer_disconnects_total",
            "Connections dropped because the peer did not drain "
            "responses within the grace period.",
        )
        self.coalesced_rounds = registry.histogram(
            "ingest_coalesced_rounds",
            "Rounds per coalesced vote_batch flush to the fusion sink.",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, float("inf")),
        )
        frames = registry.counter(
            "ingest_frames_total",
            "Messages decoded by the ingest tier, by wire framing.",
            labels=("version",),
        )
        self.frames_v2_json = frames.labels("2-json")
        self.frames_v3_binary = frames.labels("3-binary")


class StoreInstruments:
    """Tiered-history-store metrics: residency, churn, compaction cost.

    The hot-set gauge and the segment-byte gauges are render-time
    callbacks reading the store directly, so the per-round store path
    never pays for them; the churn counters are bumped by the store on
    eviction/rehydration/write-back, which are already off the
    per-round fast path.
    """

    __slots__ = (
        "enabled",
        "evictions",
        "rehydrations",
        "writebacks",
        "compaction_seconds",
    )

    def __init__(self, registry: MetricsRegistry, store: Any = None):
        self.enabled = registry.enabled
        self.evictions = registry.counter(
            "store_evictions_total",
            "Series evicted from the tiered history store's hot set.",
        )
        self.rehydrations = registry.counter(
            "store_rehydrations_total",
            "Series rehydrated from the backing store into the hot set.",
        )
        self.writebacks = registry.counter(
            "store_writebacks_total",
            "Dirty series states written back to the backing store.",
        )
        self.compaction_seconds = registry.histogram(
            "store_compaction_seconds",
            "Wall time of one backing-store compaction pass.",
        )
        if store is not None:
            # Last store constructed against a registry wins, matching
            # the fusion_history_record precedent in EngineInstruments.
            registry.gauge(
                "store_hot_series",
                "Series resident in the tiered store's hot set.",
            ).set_function(lambda: float(store.hot_size))
            segment_bytes = registry.gauge(
                "store_segment_bytes",
                "Bytes held by the backing store's segment files.",
                labels=("state",),
            )
            backing = getattr(store, "backing", None)
            segment_bytes.labels("live").set_function(
                lambda: float(getattr(backing, "live_bytes", 0))
            )
            segment_bytes.labels("dead").set_function(
                lambda: float(getattr(backing, "dead_bytes", 0))
            )


class OpsInstruments:
    """Operations-subsystem metrics: dashboard traffic, alerts, tuning.

    The alert gauge is resolved through ``labels()`` per severity at
    evaluation time (severities are user-declared, not static), the
    dashboard counter per request path; both sit behind an HTTP
    round-trip or a snapshot tick, so nothing here is hot.
    """

    __slots__ = (
        "enabled",
        "alerts_firing",
        "dashboard_requests",
        "snapshot_seconds",
        "tuning_trials",
        "tuning_cache_hits",
    )

    def __init__(self, registry: MetricsRegistry):
        self.enabled = registry.enabled
        self.alerts_firing = registry.gauge(
            "ops_alerts_firing",
            "Alert rules currently in the firing state, by severity.",
            labels=("severity",),
        )
        self.dashboard_requests = registry.counter(
            "ops_dashboard_requests_total",
            "HTTP requests served by the operations dashboard, by path.",
            labels=("path",),
        )
        self.snapshot_seconds = registry.histogram(
            "ops_snapshot_seconds",
            "Wall time of one dashboard snapshot collection tick.",
        )
        self.tuning_trials = registry.counter(
            "ops_tuning_trials_total",
            "Trials evaluated against a live cluster by tuning.live.",
        )
        self.tuning_cache_hits = registry.counter(
            "ops_tuning_cache_hits_total",
            "Live-tuning trials answered from the memoization cache.",
        )


class RuntimeInstruments:
    """Worker-pool metrics: dispatch volume, crashes, wall vs worker time."""

    __slots__ = (
        "enabled",
        "chunks",
        "crashes",
        "series",
        "wall_seconds",
        "worker_seconds",
    )

    def __init__(self, registry: MetricsRegistry):
        self.enabled = registry.enabled
        self.chunks = registry.counter(
            "runtime_pool_chunks_total",
            "Work chunks dispatched by WorkerPool.map (in-process runs "
            "count as one chunk).",
        )
        self.crashes = registry.counter(
            "runtime_pool_worker_crashes_total",
            "WorkerPool.map calls aborted by a task exception or a "
            "killed worker.",
        )
        self.series = registry.counter(
            "runtime_fuse_many_series_total",
            "Series fused through repro.fuse_many.",
        )
        self.wall_seconds = registry.gauge(
            "runtime_pool_wall_seconds",
            "Wall time of the most recent WorkerPool.map call.",
        )
        self.worker_seconds = registry.gauge(
            "runtime_pool_worker_seconds",
            "Aggregate in-task time of the most recent WorkerPool.map "
            "call (ratio to wall time = effective parallelism).",
        )
