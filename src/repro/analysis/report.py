"""Plain-text rendering of tables and series.

The paper presents its results as plots (and on the demonstrator's LCD
screen); in this library every figure is regenerated as aligned text —
a table of summary rows plus downsampled series — so results diff
cleanly and need no plotting dependency.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import List, Mapping, Sequence, Union

import numpy as np

_BLOCKS = "▁▂▃▄▅▆▇█"


def save_series_csv(
    path: Union[str, Path], series: Mapping[str, Sequence[float]]
) -> None:
    """Write named per-round series as a CSV (one column per series).

    Series may have different lengths; shorter ones leave trailing
    cells empty.  NaN values become empty cells.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = list(series)
    columns = [np.asarray(series[name], dtype=float) for name in names]
    length = max((c.shape[0] for c in columns), default=0)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["round"] + names)
        for i in range(length):
            row: List[str] = [str(i)]
            for column in columns:
                if i >= column.shape[0] or math.isnan(column[i]):
                    row.append("")
                else:
                    row.append(repr(float(column[i])))
            writer.writerow(row)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], precision: int = 4
) -> str:
    """Render an aligned text table with a header separator line."""

    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            if math.isnan(cell):
                return "nan"
            return f"{cell:.{precision}g}"
        return str(cell)

    table = [[fmt(c) for c in headers]] + [[fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = []
    for n, row in enumerate(table):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        if n == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A unicode block sparkline of the series (NaN rendered as space)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # Downsample by block mean.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.asarray(
            [
                np.nanmean(arr[a:b]) if b > a and not np.isnan(arr[a:b]).all() else np.nan
                for a, b in zip(edges[:-1], edges[1:])
            ]
        )
    finite = arr[~np.isnan(arr)]
    if finite.size == 0:
        return " " * arr.size
    low, high = float(finite.min()), float(finite.max())
    span = high - low or 1.0
    chars = []
    for v in arr:
        if np.isnan(v):
            chars.append(" ")
        else:
            level = int((v - low) / span * (len(_BLOCKS) - 1))
            chars.append(_BLOCKS[level])
    return "".join(chars)


def render_series(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    show_range: bool = True,
) -> str:
    """Render named series as labelled sparklines with min/max annotations."""
    if not series:
        return ""
    label_width = max(len(name) for name in series)
    lines: List[str] = []
    for name, values in series.items():
        arr = np.asarray(values, dtype=float)
        line = f"{name.ljust(label_width)}  {sparkline(arr, width)}"
        if show_range:
            finite = arr[~np.isnan(arr)]
            if finite.size:
                line += f"  [{finite.min():.4g}, {finite.max():.4g}]"
            else:
                line += "  [all missing]"
        lines.append(line)
    return "\n".join(lines)
