"""Per-module reliability diagnosis.

Voting tells a deployment *what the true value is*; operations teams
also need to know *which sensor to go and replace*.  This module turns
a run of :class:`~repro.types.VoteOutcome` objects into a per-module
report: agreement statistics, exclusion frequency, final record, and a
coarse fault classification derived from the module's residual against
the fused output:

* ``healthy`` — agrees with the consensus;
* ``offset`` — stable bias away from the consensus (miscalibration);
* ``drift`` — bias that grows over time (aging transducer);
* ``erratic`` — large residual variance without a stable bias;
* ``silent`` — mostly missing values (connectivity/power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.dataset import Dataset
from ..types import VoteOutcome

#: Fault classes the classifier can emit.
FAULT_CLASSES = ("healthy", "offset", "drift", "erratic", "silent")


@dataclass(frozen=True)
class ModuleReport:
    """Diagnosis of one module over a run."""

    module: str
    rounds_present: int
    rounds_missing: int
    mean_agreement: float
    exclusion_fraction: float
    final_record: float
    residual_bias: float
    residual_trend: float
    residual_std: float
    classification: str

    @property
    def rounds_total(self) -> int:
        return self.rounds_present + self.rounds_missing


def _classify(
    present_fraction: float,
    bias: float,
    trend: float,
    spread: float,
    scale: float,
) -> str:
    """Coarse fault classification from residual statistics.

    ``scale`` is the magnitude reference (the agreement margin), so the
    thresholds adapt to the data's units, like the voters themselves.
    """
    if present_fraction < 0.5:
        return "silent"
    # Drift must dominate both the unit scale and the module's own
    # noise — a fitted slope smaller than the residual spread is just
    # noise masquerading as a trend.
    if abs(trend) > 0.5 * scale and abs(trend) > spread:
        return "drift"
    if abs(bias) > scale:
        return "offset"
    if spread > 2.0 * scale:
        return "erratic"
    return "healthy"


def diagnose(
    dataset: Dataset,
    outcomes: Sequence[VoteOutcome],
    error: float = 0.05,
) -> Dict[str, ModuleReport]:
    """Diagnose every module of a recorded run.

    Args:
        dataset: the raw readings that were voted on.
        outcomes: the voter's outcomes, aligned with the dataset rounds.
        error: relative agreement threshold used to scale thresholds.

    Returns:
        One :class:`ModuleReport` per module.
    """
    if len(outcomes) != dataset.n_rounds:
        raise ValueError(
            f"outcome count {len(outcomes)} does not match dataset rounds "
            f"{dataset.n_rounds}"
        )
    fused = np.asarray(
        [np.nan if o.value is None else float(o.value) for o in outcomes]
    )
    scale = float(np.nanmedian(np.abs(fused))) * error if len(fused) else 0.0
    scale = max(scale, 1e-9)

    reports: Dict[str, ModuleReport] = {}
    for module in dataset.modules:
        column = dataset.column(module)
        present_mask = ~np.isnan(column)
        residual = column - fused
        valid = present_mask & ~np.isnan(fused)
        residual_valid = residual[valid]

        agreements: List[float] = [
            o.agreement[module] for o in outcomes if module in o.agreement
        ]
        exclusions = [
            module in o.eliminated or o.weights.get(module, 1.0) == 0.0
            for o in outcomes
            if o.weights or o.eliminated
        ]
        final_record = next(
            (o.history[module] for o in reversed(outcomes) if module in o.history),
            float("nan"),
        )

        if residual_valid.size >= 2:
            bias = float(residual_valid.mean())
            x = np.flatnonzero(valid).astype(float)
            slope = float(np.polyfit(x, residual_valid, 1)[0])
            trend = slope * dataset.n_rounds  # residual change over the run
            spread = float(residual_valid.std())
        else:
            bias, trend, spread = float("nan"), 0.0, float("nan")

        present_fraction = float(present_mask.mean()) if len(column) else 0.0
        classification = _classify(present_fraction, bias, trend, spread, scale)
        reports[module] = ModuleReport(
            module=module,
            rounds_present=int(present_mask.sum()),
            rounds_missing=int((~present_mask).sum()),
            mean_agreement=float(np.mean(agreements)) if agreements else float("nan"),
            exclusion_fraction=float(np.mean(exclusions)) if exclusions else 0.0,
            final_record=final_record,
            residual_bias=bias,
            residual_trend=trend,
            residual_std=spread,
            classification=classification,
        )
    return reports


def worst_module(reports: Dict[str, ModuleReport]) -> Optional[str]:
    """The module most in need of attention (None if all healthy).

    Priority: silent > drift > offset > erratic; ties break on the
    larger exclusion fraction.
    """
    priority = {"silent": 4, "drift": 3, "offset": 2, "erratic": 1, "healthy": 0}
    candidates = [r for r in reports.values() if r.classification != "healthy"]
    if not candidates:
        return None
    best = max(
        candidates,
        key=lambda r: (priority[r.classification], r.exclusion_fraction),
    )
    return best.module
