"""Series summary statistics used across experiments and reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


def _clean(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    return arr[~np.isnan(arr)]


def rmse(series: Sequence[float], reference: Sequence[float]) -> float:
    """Root-mean-square error between two aligned series (NaN-skipping)."""
    a = np.asarray(series, dtype=float)
    b = np.asarray(reference, dtype=float)
    if a.shape != b.shape:
        raise ValueError("series shapes differ")
    diff = a - b
    diff = diff[~np.isnan(diff)]
    if diff.size == 0:
        return float("nan")
    return float(np.sqrt((diff**2).mean()))


def mae(series: Sequence[float], reference: Sequence[float]) -> float:
    """Mean absolute error between two aligned series (NaN-skipping)."""
    a = np.asarray(series, dtype=float)
    b = np.asarray(reference, dtype=float)
    if a.shape != b.shape:
        raise ValueError("series shapes differ")
    diff = np.abs(a - b)
    diff = diff[~np.isnan(diff)]
    if diff.size == 0:
        return float("nan")
    return float(diff.mean())


def max_abs(values: Sequence[float]) -> float:
    """Largest absolute value in the series (NaN-skipping)."""
    arr = _clean(values)
    if arr.size == 0:
        return float("nan")
    return float(np.abs(arr).max())


def availability(statuses: Sequence[str]) -> float:
    """Fraction of rounds that produced a regular output.

    ``statuses`` are :class:`~repro.fusion.engine.FusionResult` statuses;
    only ``"ok"`` counts — held and skipped rounds both mean the voter
    could not answer from that round's data.  This is the metric a MooN
    deployment trades for integrity.
    """
    statuses = list(statuses)
    if not statuses:
        return 0.0
    return sum(1 for s in statuses if s == "ok") / len(statuses)


@dataclass(frozen=True)
class SeriesSummary:
    """min/max/mean/std/count summary of one series."""

    count: int
    minimum: float
    maximum: float
    mean: float
    std: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "std": self.std,
        }


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Summary statistics of a series, ignoring NaN entries."""
    arr = _clean(values)
    if arr.size == 0:
        nan = float("nan")
        return SeriesSummary(count=0, minimum=nan, maximum=nan, mean=nan, std=nan)
    return SeriesSummary(
        count=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        std=float(arr.std()),
    )
