"""Analysis metrics for the paper's evaluation.

* :mod:`repro.analysis.convergence` — rounds-to-converge and the
  bootstrap "4×" boost metric (Fig. 6-f, abstract claim).
* :mod:`repro.analysis.diff` — error-injection differentials
  (Fig. 6-e): voting on raw values vs voting on error-injected values.
* :mod:`repro.analysis.ambiguity` — closest-stack ambiguity for UC-2
  (Fig. 7's "number of rounds while it is ambiguous which stack ... is
  closest").
* :mod:`repro.analysis.stats` — series summary statistics.
* :mod:`repro.analysis.report` — plain-text tables and series renderers
  (the library's stand-in for the paper's plots and LCD display).
"""

from .convergence import (
    convergence_boost,
    convergence_round,
    rounds_above_tolerance,
    stable_value_distance,
)
from .diff import error_injection_diff, run_voter_series
from .ambiguity import ambiguous_rounds, closest_stack_series, classification_accuracy
from .stats import availability, mae, max_abs, rmse, summarize
from .report import render_series, render_table, sparkline
from .reliability import FAULT_CLASSES, ModuleReport, diagnose, worst_module

__all__ = [
    "convergence_round",
    "convergence_boost",
    "rounds_above_tolerance",
    "stable_value_distance",
    "error_injection_diff",
    "run_voter_series",
    "ambiguous_rounds",
    "closest_stack_series",
    "classification_accuracy",
    "availability",
    "rmse",
    "mae",
    "max_abs",
    "summarize",
    "render_table",
    "render_series",
    "sparkline",
    "FAULT_CLASSES",
    "ModuleReport",
    "diagnose",
    "worst_module",
]
