"""Error-injection differentials (Fig. 6-e).

Fig. 6-e plots, per algorithm, the difference between voting on the raw
values and voting on the error-injected values — zero means the voter
fully masked the fault.  :func:`error_injection_diff` computes that
series for a fresh pair of voter instances.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..datasets.dataset import Dataset
from ..fusion.engine import FusionEngine
from ..voting.base import Voter


def run_voter_series(
    voter: Voter,
    dataset: Dataset,
    engine_factory: Optional[Callable[[Voter], FusionEngine]] = None,
) -> np.ndarray:
    """Run one voter over a dataset; returns the output series.

    The voter is reset first so recorded datasets always start from a
    fresh history.  A custom ``engine_factory`` can layer quorum /
    exclusion / fault policies around the voter; by default a plain
    engine with the hold-last-value policy is used.  The dataset goes
    through the vectorized :meth:`FusionEngine.process_batch` path,
    which is bit-identical to the per-round loop.
    """
    voter.reset()
    if engine_factory is None:
        engine = FusionEngine(voter, roster=list(dataset.modules))
    else:
        engine = engine_factory(voter)
    return engine.process_batch(dataset.matrix, list(dataset.modules)).values


def error_injection_diff(
    make_voter: Callable[[], Voter],
    clean: Dataset,
    faulty: Dataset,
    engine_factory: Optional[Callable[[Voter], FusionEngine]] = None,
) -> np.ndarray:
    """Fig. 6-e series: fault-vote output minus clean-vote output.

    ``make_voter`` must build a *fresh* voter per call so the two runs
    have independent histories — passing a shared instance would leak
    the clean run's records into the faulty run.
    """
    if clean.n_rounds != faulty.n_rounds:
        raise ValueError("clean and faulty datasets must have equal length")
    clean_out = run_voter_series(make_voter(), clean, engine_factory)
    fault_out = run_voter_series(make_voter(), faulty, engine_factory)
    return fault_out - clean_out
