"""Convergence metrics (Fig. 6-f and the abstract's 4× claim).

The paper measures "voting rounds required to converge back to the
baseline" after an error injection, and claims the clustering bootstrap
"boosts the convergence of the measurements by 4×".  We formalise:

* :func:`convergence_round` — settling time: the first (0-indexed)
  round that opens a window of ``window`` consecutive in-tolerance
  rounds.  The persistence window makes the metric robust to the
  isolated spikes that mean-nearest-neighbour selection produces long
  after the fault transient is over (the paper's own Fig. 6-e shows
  those "few spikes" for Hybrid);
* :func:`convergence_boost` — the ratio of 1-indexed convergence rounds
  between a baseline algorithm and AVOC (1-indexed so an
  instantly-converged voter scores 1 rather than dividing by zero).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _as_abs(diff: Sequence[float]) -> np.ndarray:
    arr = np.abs(np.asarray(diff, dtype=float))
    return np.nan_to_num(arr, nan=np.inf)


def convergence_round(
    diff: Sequence[float], tolerance: float, window: int = 10
) -> int:
    """Settling round: first round opening ``window`` in-tolerance rounds.

    Returns ``len(diff)`` when no such window exists.  A NaN diff
    (skipped round) counts as out of tolerance.  A series shorter than
    the window settles when its entire remainder is in tolerance.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if window < 1:
        raise ValueError("window must be >= 1")
    arr = _as_abs(diff)
    n = arr.size
    if n == 0:
        return 0
    ok = arr < tolerance
    run = 0
    for i in range(n):
        run = run + 1 if ok[i] else 0
        needed = min(window, n - (i - run + 1))
        if run >= needed and run > 0:
            return i - run + 1
    return n


def rounds_above_tolerance(diff: Sequence[float], tolerance: float) -> int:
    """How many rounds violate the tolerance anywhere in the series."""
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    return int((_as_abs(diff) >= tolerance).sum())


def convergence_boost(
    baseline_diff: Sequence[float],
    improved_diff: Sequence[float],
    tolerance: float,
) -> float:
    """Convergence speed-up of ``improved`` over ``baseline``.

    Computed on 1-indexed convergence rounds:
    ``(baseline_round + 1) / (improved_round + 1)``, so a voter that is
    correct from round 0 scores round 1.
    """
    baseline = convergence_round(baseline_diff, tolerance) + 1
    improved = convergence_round(improved_diff, tolerance) + 1
    return baseline / improved


def stable_value_distance(
    outputs: Sequence[float],
    baseline: Sequence[float],
    tail_fraction: float = 0.2,
) -> float:
    """How far the new stable value sits from the original (§7 metric b).

    Mean absolute difference over the final ``tail_fraction`` of the
    series, where both algorithms have settled.
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail_fraction must be in (0, 1]")
    out = np.asarray(outputs, dtype=float)
    base = np.asarray(baseline, dtype=float)
    if out.shape != base.shape:
        raise ValueError("series shapes differ")
    if out.size == 0:
        raise ValueError("empty series")
    start = int(out.size * (1.0 - tail_fraction))
    tail = np.abs(out[start:] - base[start:])
    tail = tail[~np.isnan(tail)]
    if tail.size == 0:
        return float("nan")
    return float(tail.mean())
