"""Closest-stack ambiguity metrics for UC-2 (Fig. 7).

The BLE experiment asks one question per round: which beacon stack is
the robot closest to?  The paper compares fusion methods by "the number
of rounds while it is ambiguous which stack of sensors is closest to
the robot".  A round is ambiguous when the fused RSSI of the two stacks
is within a separation margin (or either output is missing) — the
stronger-RSSI stack cannot be called with confidence.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _pair(a: Sequence[float], b: Sequence[float]):
    arr_a = np.asarray(a, dtype=float)
    arr_b = np.asarray(b, dtype=float)
    if arr_a.shape != arr_b.shape:
        raise ValueError("stack series must have equal length")
    return arr_a, arr_b


def ambiguous_rounds(
    stack_a: Sequence[float], stack_b: Sequence[float], margin_db: float = 5.0
) -> int:
    """Rounds where the closest stack cannot be determined.

    A round is ambiguous when either fused value is missing or the two
    fused RSSI values lie within ``margin_db`` of each other.
    """
    if margin_db < 0:
        raise ValueError("margin_db must be non-negative")
    arr_a, arr_b = _pair(stack_a, stack_b)
    missing = np.isnan(arr_a) | np.isnan(arr_b)
    close = np.abs(arr_a - arr_b) < margin_db
    return int((missing | close).sum())


def closest_stack_series(
    stack_a: Sequence[float], stack_b: Sequence[float]
) -> np.ndarray:
    """Per-round closest-stack call: 'A', 'B' or '?' (missing data).

    Higher RSSI (less negative) means closer.
    """
    arr_a, arr_b = _pair(stack_a, stack_b)
    calls = np.where(arr_a >= arr_b, "A", "B").astype(object)
    calls[np.isnan(arr_a) | np.isnan(arr_b)] = "?"
    return np.asarray(calls)


def unstable_rounds(
    stack_a: Sequence[float], stack_b: Sequence[float], window: int = 9
) -> int:
    """Rounds whose closest-stack call is not locally unanimous.

    A positioning consumer reads the call over a short window; a round
    is *unstable* when the calls inside its surrounding ``window`` are
    not all identical (or any is missing).  A clean fusion output is
    unstable only around the true crossover; a noisy one flips the call
    in extra regions.  This captures the paper's "ambiguous which stack
    ... is closest at any given time" more robustly than the raw
    RSSI-margin count, which is dominated by the trend's slope.
    """
    if window < 1 or window % 2 == 0:
        raise ValueError("window must be a positive odd integer")
    calls = closest_stack_series(stack_a, stack_b)
    n = calls.shape[0]
    half = window // 2
    unstable = 0
    for i in range(n):
        lo, hi = max(0, i - half), min(n, i + half + 1)
        segment = calls[lo:hi]
        if "?" in segment or len(set(segment)) > 1:
            unstable += 1
    return unstable


def classification_accuracy(
    stack_a: Sequence[float],
    stack_b: Sequence[float],
    truth: Sequence[str],
) -> float:
    """Fraction of rounds whose closest-stack call matches the truth.

    Rounds with missing fused outputs count as wrong — a positioning
    system that cannot answer has not answered correctly.
    """
    calls = closest_stack_series(stack_a, stack_b)
    truth_arr = np.asarray(list(truth), dtype=object)
    if truth_arr.shape != calls.shape:
        raise ValueError("truth length does not match series length")
    return float((calls == truth_arr).mean())
