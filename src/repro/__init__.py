"""repro — reproduction of AVOC: History-Aware Data Fusion for Reliable
IoT Analytics (Middleware 2022).

Public API highlights:

* :func:`repro.fuse` — one-call batched fusion of a rounds × modules
  value matrix through any registered algorithm (the vectorized fast
  path; see :meth:`FusionEngine.process_batch`).
* :func:`repro.fuse_many` — the same over *many* matrices at once,
  fanned out across worker processes with shared-memory input transfer
  (:mod:`repro.runtime`; results are worker-count invariant).
* :mod:`repro.voting` — the voting algorithm zoo (AVOC, Hybrid, Me, Sdt,
  Standard, clustering-only, stateless baselines, MLV, categorical).
* :mod:`repro.vdx` — the VDX voting-definition specification: parse,
  validate and instantiate voters from JSON documents.
* :mod:`repro.fusion` — the fusion engine: quorum, fault policies and
  multi-dimensional pipelines around a voter.
* :mod:`repro.sensors` / :mod:`repro.datasets` — sensor models and the
  UC-1 (light) and UC-2 (BLE RSSI) evaluation datasets.
* :mod:`repro.simulation` — discrete-event IoT deployment simulator.
* :mod:`repro.analysis` — convergence, ambiguity and diff metrics used
  by the paper's figures.
* :mod:`repro.service` — the networked voter-service prototype;
  :func:`repro.connect` dials any endpoint (voter, shard, gateway or
  async ingest tier) and returns the unified :class:`FusionClient`
  facade with auto-negotiated v2-JSON / v3-binary framing.
* :mod:`repro.tuning` — parameter search (grid + genetic) per scenario.
* :mod:`repro.obs` — dependency-free metrics (counters, gauges,
  histograms) instrumenting the engine, service and runtime layers,
  with a Prometheus-style text exposition.
"""

from . import obs
from .fusion import (
    BatchResult,
    FaultPolicy,
    FusionEngine,
    FusionResult,
    MultiDimensionalPipeline,
    QuorumRule,
    VectorFusion,
    fuse,
)
from .runtime import fuse_many
from .service.facade import FusionClient, connect
from .types import MISSING, Reading, Round, Series, VoteOutcome, is_missing
from .voting import (
    AvocVoter,
    CategoricalMajorityVoter,
    ClusteringOnlyVoter,
    HybridVoter,
    MaximumLikelihoodVoter,
    MeanVoter,
    MedianVoter,
    ModuleEliminationVoter,
    PluralityVoter,
    SoftDynamicThresholdVoter,
    StandardVoter,
    Voter,
    VoterParams,
    available_algorithms,
    create_voter,
)

__version__ = "1.0.0"

__all__ = [
    "MISSING",
    "Reading",
    "Round",
    "Series",
    "VoteOutcome",
    "is_missing",
    "fuse",
    "fuse_many",
    "BatchResult",
    "FaultPolicy",
    "FusionEngine",
    "FusionResult",
    "MultiDimensionalPipeline",
    "QuorumRule",
    "VectorFusion",
    "FusionClient",
    "connect",
    "Voter",
    "VoterParams",
    "AvocVoter",
    "CategoricalMajorityVoter",
    "ClusteringOnlyVoter",
    "HybridVoter",
    "MaximumLikelihoodVoter",
    "MeanVoter",
    "MedianVoter",
    "ModuleEliminationVoter",
    "PluralityVoter",
    "SoftDynamicThresholdVoter",
    "StandardVoter",
    "available_algorithms",
    "create_voter",
    "obs",
    "__version__",
]
