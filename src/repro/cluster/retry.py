"""Bounded exponential backoff and a circuit breaker.

Shared by every gateway→backend call in :mod:`repro.cluster.gateway`
and, opt-in, by :meth:`repro.service.client.VoterClient.request`.  Both
pieces are deliberately clock-injectable so tests never sleep.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type

from ..exceptions import ConfigurationError, ReproError

__all__ = ["CircuitBreaker", "CircuitOpenError", "RetryPolicy", "call_with_retry"]


class CircuitOpenError(ReproError):
    """The circuit breaker is open: the call was not attempted."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff schedule.

    ``delay(attempt)`` for attempts 0, 1, 2… is
    ``min(base_delay * multiplier**attempt, max_delay)``; a call is
    tried at most ``1 + max_retries`` times.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return min(self.base_delay * self.multiplier**attempt, self.max_delay)

    def delays(self) -> Iterator[float]:
        """The full backoff schedule, one delay per allowed retry."""
        for attempt in range(self.max_retries):
            yield self.delay(attempt)


class CircuitBreaker:
    """Three-state (closed / open / half-open) failure guard.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` refuses instantly (no network timeout paid per
    request against a dead backend).  After ``reset_timeout`` seconds
    one probe call is let through (half-open); its success closes the
    circuit, its failure re-opens it for another timeout.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ConfigurationError("reset_timeout must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._probe_state()

    def _probe_state(self) -> str:
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = "half-open"
        return self._state

    def allow(self) -> bool:
        """Whether a call may be attempted right now."""
        with self._lock:
            state = self._probe_state()
            if state == "half-open":
                # One probe at a time: re-open until it reports back.
                self._state = "open"
                self._opened_at = self._clock()
                return True
            return state == "closed"

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._failures >= self.failure_threshold or self._state != "closed":
                self._state = "open"
                self._opened_at = self._clock()


def call_with_retry(
    fn: Callable[[], object],
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    breaker: Optional[CircuitBreaker] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
):
    """Call ``fn`` under ``policy``, optionally guarded by ``breaker``.

    Only exceptions in ``retry_on`` are retried; anything else
    propagates immediately.  The breaker sees one success/failure per
    *attempt*, so a flapping backend opens it even when retries
    eventually succeed elsewhere.
    """
    attempt = 0
    while True:
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError("circuit breaker is open")
        try:
            result = fn()
        except retry_on as exc:
            if breaker is not None:
                breaker.record_failure()
            if attempt >= policy.max_retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay(attempt))
            attempt += 1
        else:
            if breaker is not None:
                breaker.record_success()
            return result
