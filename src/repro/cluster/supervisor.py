"""The cluster supervisor: spawn, monitor, restart, rebalance.

:class:`FusionCluster` assembles the whole sharded deployment from one
constructor call: it spawns ``n_shards`` :class:`ManagedBackend`
processes, places them on a :class:`~repro.cluster.ring.HashRing` with
``replicas``-way replica sets, fronts them with a
:class:`~repro.cluster.gateway.ClusterGateway`, and runs a monitor
thread that restarts any backend that stops answering — resuming it
over the same history directory so its reliability records survive the
crash.

Membership changes rebalance with a **history handoff**: when a
backend joins or leaves, only the series whose replica set actually
changed (see :meth:`HashRing.moved_keys`) are touched, and each new
owner is seeded with the voter history read from a surviving old
owner.  Replicated reads mask the window while a handoff is in
flight — the majority still comes from the old owners.
"""

from __future__ import annotations

import queue
import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..exceptions import ReproError
from ..history import DEFAULT_HOT_SERIES
from ..obs import ClusterInstruments, MetricsRegistry, get_default_registry
from ..service.client import VoterClient
from ..vdx.spec import VotingSpec
from .backend import ManagedBackend
from .gateway import ClusterGateway
from .ring import DEFAULT_VNODES, HashRing

__all__ = ["FusionCluster"]


class FusionCluster:
    """A supervised, sharded fusion cluster behind one gateway address.

    Args:
        spec: the voting scheme every shard hosts.
        n_shards: number of backend shards to spawn.
        replicas: replica-set size per series (clamped to ``n_shards``).
        host / port: gateway bind address (port 0 picks a free port).
        history_root: directory for per-backend history logs; a
            temporary directory (cleaned up on :meth:`stop`) when None.
        mode: backend mode — ``"process"`` (default where ``fork``
            exists) or ``"thread"``.
        store: per-shard history storage tier — ``"packed"``,
            ``"jsonl"``, ``"sqlite"`` or ``"memory"`` (default: the
            historical per-series JSONL logs).
        max_resident_series: per-shard LRU bound on live engines / hot
            history states; ``None`` keeps everything resident.
        maintenance_interval: when set, each shard runs a background
            thread compacting its store (dead packed-segment space,
            watermark log) every this many seconds.
        probe_interval: seconds between monitor liveness sweeps.
        auto_restart: restart backends that die; turn off to observe
            raw failover behaviour (e.g. the bit-identity benchmark).
        vnodes / seed: ring geometry (see :class:`HashRing`).
        registry: metrics registry shared by gateway and supervisor.
    """

    def __init__(
        self,
        spec: VotingSpec,
        n_shards: int = 3,
        replicas: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        history_root=None,
        mode: Optional[str] = None,
        store: Optional[str] = None,
        max_resident_series: Optional[int] = DEFAULT_HOT_SERIES,
        maintenance_interval: Optional[float] = None,
        probe_interval: float = 0.25,
        auto_restart: bool = True,
        vnodes: int = DEFAULT_VNODES,
        seed: str = "avoc",
        registry: Optional[MetricsRegistry] = None,
    ):
        if n_shards < 1:
            raise ReproError(f"n_shards must be >= 1, got {n_shards}")
        self.spec = spec
        self.n_shards = n_shards
        self.host = host
        self.port = port
        self.mode = mode
        self.store = store
        self.max_resident_series = max_resident_series
        self.maintenance_interval = maintenance_interval
        self.probe_interval = probe_interval
        self.auto_restart = auto_restart
        self.registry = registry if registry is not None else get_default_registry()
        self._obs = ClusterInstruments(self.registry)
        self.ring = HashRing(
            replicas=min(replicas, n_shards), vnodes=vnodes, seed=seed
        )
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if history_root is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="avoc-cluster-")
            history_root = self._tmpdir.name
        self.history_root = Path(history_root)
        self.gateway: Optional[ClusterGateway] = None
        self._backends: Dict[str, ManagedBackend] = {}
        self._next_backend = 0
        self._lock = threading.RLock()
        self._failures: "queue.Queue[str]" = queue.Queue()
        self._stop_event = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The gateway's (host, port)."""
        if self.gateway is None:
            raise ReproError("cluster is not started")
        return self.gateway.address

    @property
    def backends(self) -> Dict[str, ManagedBackend]:
        """Backend id → managed backend (live view; treat as read-only)."""
        return dict(self._backends)

    def start(self) -> "FusionCluster":
        if self._started:
            raise ReproError("cluster already started")
        self._started = True
        self.gateway = ClusterGateway(
            self.spec,
            self.ring,
            host=self.host,
            port=self.port,
            registry=self.registry,
        )
        self.gateway.set_failure_callback(self._failures.put)
        for _ in range(self.n_shards):
            self._spawn_backend()
        self.gateway.start()
        if self.auto_restart:
            self._monitor = threading.Thread(
                target=self._monitor_loop, daemon=True, name="cluster-monitor"
            )
            self._monitor.start()
        return self

    def stop(self) -> None:
        self._stop_event.set()
        monitor, self._monitor = self._monitor, None
        if monitor is not None:
            monitor.join(timeout=5.0)
        gateway, self.gateway = self.gateway, None
        if gateway is not None:
            gateway.stop()
        with self._lock:
            backends, self._backends = dict(self._backends), {}
        for backend in backends.values():
            backend.stop()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "FusionCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def client(self, **kwargs) -> VoterClient:
        """A client connected to the gateway (caller closes it)."""
        host, port = self.address
        client = VoterClient(host, port, **kwargs)
        client.connect()
        return client

    # -- membership ---------------------------------------------------------

    def _spawn_backend(self) -> str:
        """Start one backend, attach it to the gateway and the ring."""
        backend_id = f"b{self._next_backend}"
        self._next_backend += 1
        # The gateway's spec is authoritative once running: a backend
        # spawned after a `configure` must host the current scheme.
        spec = self.gateway.spec if self.gateway is not None else self.spec
        backend = ManagedBackend(
            backend_id,
            spec,
            history_dir=self.history_root / backend_id,
            host=self.host,
            mode=self.mode,
            store=self.store,
            max_resident_series=self.max_resident_series,
            maintenance_interval=self.maintenance_interval,
        )
        address = backend.start()
        with self._lock:
            self._backends[backend_id] = backend
        assert self.gateway is not None
        self.gateway.add_backend(backend_id, address)
        with self.gateway.membership() as ring:
            ring.add_node(backend_id)
        return backend_id

    def add_backend(self) -> str:
        """Scale out by one shard, handing off the series that moved."""
        if self.gateway is None:
            raise ReproError("cluster is not started")
        keys = self.gateway.known_series()
        with self._lock:
            before = {key: self.ring.replica_set(key) for key in keys}
        backend_id = self._spawn_backend()
        moved = self.ring.moved_keys(list(keys), before)
        self._hand_off(moved)
        return backend_id

    def remove_backend(self, backend_id: str) -> None:
        """Scale in: drain ``backend_id``'s series to their new owners."""
        if self.gateway is None:
            raise ReproError("cluster is not started")
        with self._lock:
            backend = self._backends.get(backend_id)
        if backend is None:
            raise ReproError(f"no backend {backend_id!r} in this cluster")
        if len(self._backends) <= 1:
            raise ReproError("cannot remove the last backend")
        keys = self.gateway.known_series()
        before = {key: self.ring.replica_set(key) for key in keys}
        with self.gateway.membership() as ring:
            ring.remove_node(backend_id)
        moved = self.ring.moved_keys(list(keys), before)
        # Hand off while the leaving backend is still answering — it may
        # be the only holder of a series' history.
        self._hand_off(moved)
        self.gateway.remove_backend(backend_id)
        with self._lock:
            self._backends.pop(backend_id, None)
        backend.stop()

    def _hand_off(self, moved: Dict[str, Tuple[List[str], List[str]]]) -> None:
        """Seed each new owner of a moved series with its voter history."""
        if not moved:
            return
        self._obs.rebalances.inc()
        for series, (old_set, new_set) in moved.items():
            snapshot = self._read_history(series, old_set)
            if not snapshot:
                continue
            for target in new_set:
                if target in old_set:
                    continue
                self._sync_history(target, series, snapshot)
            self._obs.rebalanced_series.inc()

    def _read_history(
        self, series: str, owners: List[str]
    ) -> Optional[Dict[str, object]]:
        """The series' full history response (records, update counter,
        voted watermark) from the first owner that answers with data."""
        for backend_id in owners:
            with self._lock:
                backend = self._backends.get(backend_id)
            if backend is None:
                continue
            try:
                with VoterClient(*backend.address, retries=1) as client:
                    response = client.request(
                        {"op": "history", "series": series}
                    )
            except (OSError, ReproError):
                continue  # unknown series here, or the owner just died
            if response.get("records"):
                return response
        return None

    def _sync_history(
        self, backend_id: str, series: str, snapshot: Dict[str, object]
    ) -> None:
        with self._lock:
            backend = self._backends.get(backend_id)
        if backend is None:
            return
        message: Dict[str, object] = {
            "op": "sync_history",
            "series": series,
            "records": snapshot["records"],
        }
        # Version the seed so a stale snapshot cannot rewind the target.
        if snapshot.get("updates") is not None:
            message["updates"] = int(snapshot["updates"])  # type: ignore[arg-type]
        if snapshot.get("watermark") is not None:
            message["watermark"] = int(snapshot["watermark"])  # type: ignore[arg-type]
        try:
            with VoterClient(*backend.address, retries=1) as client:
                client.request(message)
        except (OSError, ReproError):
            pass  # the monitor will restart it; history reloads from disk

    # -- failure handling ----------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(self.probe_interval):
            suspects = set()
            while True:
                try:
                    suspects.add(self._failures.get_nowait())
                except queue.Empty:
                    break
            gateway = self.gateway
            fenced = gateway.fenced_backends() if gateway is not None else ()
            suspects.update(fenced)
            with self._lock:
                backends = dict(self._backends)
            for backend_id, backend in backends.items():
                if not backend.is_alive():
                    suspects.add(backend_id)
            for backend_id in suspects:
                backend = backends.get(backend_id)
                if backend is None:
                    continue
                if (
                    backend_id not in fenced
                    and backend.is_alive()
                    and backend.ping()
                ):
                    continue  # transient: the link's retries handled it
                self._failover(backend_id, backend)

    def _failover(self, backend_id: str, backend: ManagedBackend) -> None:
        """Restart a dead (or fenced) backend, catch it up, re-enable it.

        The restart sequence is divergence-safe: the backend is marked
        *stale* before the gateway is re-pointed at it, so it serves no
        reads and wins no majority ties until
        :meth:`ClusterGateway.resync_backend` has seeded it with the
        history (records + update counter + voted watermark) of a fresh
        surviving replica — covering every round voted during the
        outage.
        """
        started = time.monotonic()
        gateway = self.gateway
        if gateway is not None and backend.spec is not gateway.spec:
            # The cluster was reconfigured while this backend was out
            # (fenced partial `configure`): its on-disk state belongs to
            # the old scheme and must not leak into the new one.
            backend.spec = gateway.spec
            if backend.history_dir is not None:
                shutil.rmtree(backend.history_dir, ignore_errors=True)
        if gateway is not None:
            gateway.mark_stale(backend_id)
        try:
            address = backend.restart()
        except ReproError:
            if gateway is not None:
                gateway.clear_stale(backend_id)
            return  # spawn failed; the next sweep tries again
        if gateway is not None:
            try:
                gateway.update_backend(backend_id, address)
            except ReproError:
                gateway.clear_stale(backend_id)
                return  # detached while restarting (remove_backend race)
        # Wait for the replacement to answer before seeding it.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if backend.ping():
                break
            time.sleep(0.02)
        if gateway is not None:
            try:
                gateway.resync_backend(backend_id)
            except ReproError:
                gateway.clear_stale(backend_id)  # detached mid-resync
        # Failover = detect -> replacement caught up and serving again.
        self._obs.failover_seconds.observe(time.monotonic() - started)

    # -- convenience ----------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """A JSON-safe summary of cluster topology and health."""
        with self._lock:
            backends = dict(self._backends)
        return {
            "gateway": list(self.address),
            "ring": {
                "backends": list(self.ring.nodes),
                "replicas": self.ring.replicas,
                "vnodes": self.ring.vnodes,
            },
            "backends": {
                backend_id: {
                    "address": list(backend.address),
                    "mode": backend.mode,
                    "pid": backend.pid,
                    "restarts": backend.restarts,
                    "alive": backend.is_alive(),
                }
                for backend_id, backend in sorted(backends.items())
            },
        }
