"""Shard backends: a multi-series voter server under process supervision.

:class:`ShardServer` extends the single-engine
:class:`~repro.service.server.VoterServer` to host one
:class:`~repro.fusion.engine.FusionEngine` per *series* key, each with
its own durable history log, and adds the cluster operations:
``vote_batch`` (micro-batched rounds through
:meth:`~repro.fusion.engine.FusionEngine.process_batch`, the PR-1
vectorized hot path) and ``sync_history`` (the rebalance handoff
write).  Voted rounds are cached per series, so a gateway replaying a
round after a transport failure gets the original result back instead
of an ``already voted`` error — the property that makes failover
retries safe.

:class:`ManagedBackend` runs a shard server in a forked subprocess
(falling back to an in-process thread where ``fork`` is unavailable)
with liveness probes and restart-on-crash; the per-series history logs
live on disk, so a restarted shard resumes voting with its reliability
records intact.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import re
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ReproError
from ..history.file import JsonlHistoryStore
from ..runtime.pool import fork_available
from ..service.client import VoterClient
from ..service.protocol import ProtocolError, ok_response
from ..service.server import VoterServer, _numeric, _result_payload
from ..vdx.factory import build_engine
from ..vdx.spec import VotingSpec

__all__ = ["ManagedBackend", "ShardServer"]


def _series_filename(series: str) -> str:
    """A filesystem-safe, collision-free log name for a series key."""
    slug = re.sub(r"[^A-Za-z0-9_.-]", "_", series)[:48]
    digest = hashlib.blake2b(series.encode("utf-8"), digest_size=6).hexdigest()
    return f"{slug}-{digest}.jsonl"


class ShardServer(VoterServer):
    """A voter server hosting many series, one engine per series key.

    Requests without a ``series`` field behave exactly like the plain
    :class:`VoterServer` (single shared engine); requests carrying one
    are routed to that series' engine, created lazily from the same
    VDX spec.  With ``history_dir`` set, each series persists its
    records to its own JSONL log under that directory.
    """

    def __init__(
        self,
        spec: VotingSpec,
        host: str = "127.0.0.1",
        port: int = 0,
        history_dir=None,
        registry=None,
    ):
        super().__init__(spec, host=host, port=port, registry=registry)
        self._history_dir = Path(history_dir) if history_dir is not None else None
        self._engines: Dict[str, Any] = {}
        self._series_pending: Dict[str, Dict[int, Dict[str, Optional[float]]]] = {}
        self._series_voted: Dict[str, Dict[int, Dict[str, Any]]] = {}
        # Rehydrate series hosted before a restart: engines are created
        # lazily, so without the index a freshly restarted shard would
        # answer "unknown series" for history it still holds on disk.
        for series in self._load_series_index():
            self._engine_for(series)

    def _series_index_path(self) -> Optional[Path]:
        if self._history_dir is None:
            return None
        return self._history_dir / "series-index.json"

    def _load_series_index(self) -> List[str]:
        path = self._series_index_path()
        if path is None or not path.exists():
            return []
        try:
            return list(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, ValueError):  # pragma: no cover - corrupt index
            return []

    def _record_series(self, series: str) -> None:
        path = self._series_index_path()
        if path is None:
            return
        known = set(self._load_series_index())
        if series in known:
            return
        known.add(series)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(sorted(known)), encoding="utf-8")

    # -- per-series engines ------------------------------------------------

    def _engine_for(self, series: str, create: bool = True):
        engine = self._engines.get(series)
        if engine is None:
            if not create:
                raise ProtocolError(f"unknown series {series!r}")
            store = None
            if self._history_dir is not None:
                store = JsonlHistoryStore(
                    self._history_dir / _series_filename(series)
                )
            engine = build_engine(
                self.spec, history_store=store, registry=self.registry
            )
            self._engines[series] = engine
            self._record_series(series)
        return engine

    @property
    def series_hosted(self) -> Tuple[str, ...]:
        return tuple(sorted(self._engines))

    # -- series-routed voting ----------------------------------------------

    def _series_vote(
        self, series: str, number: int, values: Dict[str, Optional[float]]
    ) -> Dict[str, Any]:
        from ..types import Round

        voted = self._series_voted.setdefault(series, {})
        cached = voted.get(number)
        if cached is not None:
            return cached  # replayed write: answer with the original result
        engine = self._engine_for(series)
        result = engine.process(Round.from_mapping(number, values))
        payload = _result_payload(result)
        voted[number] = payload
        return payload

    def _op_vote(self, request) -> Dict[str, Any]:
        series = request.get("series")
        if series is None:
            return super()._op_vote(request)
        values = {str(m): _numeric(m, v) for m, v in request["values"].items()}
        return ok_response(result=self._series_vote(series, request["round"], values))

    def _op_vote_batch(self, request) -> Dict[str, Any]:
        # Two passes: assemble and validate every matrix first so a
        # malformed later batch cannot leave earlier ones half-applied.
        prepared: List[Tuple[Dict[str, Any], np.ndarray, List[str], List[int]]] = []
        for batch in request["batches"]:
            series = batch["series"]
            try:
                matrix = np.asarray(batch["rows"], dtype=float)
            except (TypeError, ValueError):
                raise ProtocolError(
                    f"batch for series {series!r} has non-numeric values"
                )
            if matrix.size and np.isinf(matrix).any():
                raise ProtocolError(
                    f"batch for series {series!r} contains non-finite values"
                )
            modules = [str(m) for m in batch["modules"]]
            prepared.append((batch, matrix, modules, list(batch["rounds"])))

        results = []
        for batch, matrix, modules, rounds in prepared:
            series = batch["series"]
            voted = self._series_voted.setdefault(series, {})
            fresh: List[int] = []
            seen = set()
            for i, number in enumerate(rounds):
                if number not in voted and number not in seen:
                    seen.add(number)
                    fresh.append(i)
            if fresh:
                engine = self._engine_for(series)
                outcome = engine.process_batch(matrix[fresh], modules)
                for k, i in enumerate(fresh):
                    value = float(outcome.values[k])
                    voted[rounds[i]] = {
                        "round": rounds[i],
                        "value": None if np.isnan(value) else value,
                        "status": str(outcome.statuses[k]),
                    }
            results.append(
                {"series": series, "results": [voted[n] for n in rounds]}
            )
        return ok_response(results=results)

    # -- incremental submission, per series --------------------------------

    def _op_submit(self, request) -> Dict[str, Any]:
        series = request.get("series")
        if series is None:
            return super()._op_submit(request)
        number = request["round"]
        if number in self._series_voted.get(series, {}):
            raise ProtocolError(f"round {number} was already voted")
        value = _numeric(request["module"], request["value"])
        pending = self._series_pending.setdefault(series, {})
        bucket = pending.setdefault(number, {})
        bucket[request["module"]] = value
        roster = self._engine_for(series).roster
        complete = bool(roster) and set(bucket) >= set(roster)
        if complete:
            payload = self._series_vote(series, number, pending.pop(number))
            return ok_response(accepted=True, voted=True, result=payload)
        return ok_response(accepted=True, voted=False, pending=len(bucket))

    def _op_close_round(self, request) -> Dict[str, Any]:
        series = request.get("series")
        if series is None:
            return super()._op_close_round(request)
        number = request["round"]
        bucket = self._series_pending.get(series, {}).pop(number, None)
        if bucket is None:
            raise ProtocolError(f"no pending submissions for round {number}")
        return ok_response(result=self._series_vote(series, number, bucket))

    # -- inspection ---------------------------------------------------------

    def _op_history(self, request) -> Dict[str, Any]:
        series = request.get("series")
        if series is None:
            return super()._op_history(request)
        engine = self._engine_for(series, create=False)
        history = getattr(engine.voter, "history", None)
        records = history.snapshot() if history is not None else {}
        return ok_response(records=records)

    def _op_stats(self, request) -> Dict[str, Any]:
        series = request.get("series")
        if series is None:
            response = super()._op_stats(request)
            response["series"] = list(self.series_hosted)
            response["series_rounds"] = {
                s: self._engines[s].rounds_processed for s in self.series_hosted
            }
            return response
        engine = self._engine_for(series, create=False)
        return ok_response(series=series, **engine.statistics())

    def _op_reset(self, request) -> Dict[str, Any]:
        series = request.get("series")
        if series is None:
            for engine in self._engines.values():
                engine.reset()
            self._engines.clear()
            self._series_pending.clear()
            self._series_voted.clear()
            return super()._op_reset(request)
        engine = self._engines.pop(series, None)
        if engine is not None:
            history = getattr(engine.voter, "history", None)
            store = getattr(history, "store", None)
            if store is not None:
                store.clear()
        self._series_pending.pop(series, None)
        self._series_voted.pop(series, None)
        path = self._series_index_path()
        if path is not None:
            known = [s for s in self._load_series_index() if s != series]
            path.write_text(json.dumps(known), encoding="utf-8")
        return ok_response(reset=True, series=series)

    def _op_configure(self, request) -> Dict[str, Any]:
        # A scheme swap invalidates every hosted series, records included.
        for engine in self._engines.values():
            history = getattr(engine.voter, "history", None)
            store = getattr(history, "store", None)
            if store is not None:
                store.clear()
        self._engines.clear()
        self._series_pending.clear()
        self._series_voted.clear()
        path = self._series_index_path()
        if path is not None and path.exists():
            path.unlink()
        return super()._op_configure(request)

    # -- rebalance handoff --------------------------------------------------

    def _op_sync_history(self, request) -> Dict[str, Any]:
        series = request["series"]
        engine = self._engine_for(series)
        history = getattr(engine.voter, "history", None)
        if history is None:
            raise ProtocolError(
                f"series {series!r} voter keeps no history records"
            )
        records = {str(m): float(v) for m, v in request["records"].items()}
        history.seed(records, count_as_update=False)
        return ok_response(synced=len(records), series=series)


def _backend_main(spec: VotingSpec, host: str, history_dir, conn) -> None:
    """Subprocess entry: serve one shard until the process is killed."""
    from ..obs import disable

    # The child serves over the wire; its metrics die with it anyway,
    # and a forked copy of the parent registry would only skew labels.
    disable()
    server = ShardServer(spec, host=host, port=0, history_dir=history_dir)
    server.start()
    conn.send(server.address)
    conn.close()
    threading.Event().wait()


class ManagedBackend:
    """One shard backend under supervision.

    Runs a :class:`ShardServer` in a forked subprocess (``mode="process"``,
    the default where ``fork`` exists) or an in-process thread
    (``mode="thread"``, also the no-fork fallback).  Exposes liveness
    probes, SIGKILL for fault injection, and :meth:`restart`, which
    brings a fresh process up over the same history directory so every
    series resumes with its persisted records.
    """

    def __init__(
        self,
        backend_id: str,
        spec: VotingSpec,
        history_dir=None,
        host: str = "127.0.0.1",
        mode: Optional[str] = None,
        probe_timeout: float = 2.0,
    ):
        if mode is None:
            mode = "process" if fork_available() else "thread"
        if mode not in ("process", "thread"):
            raise ReproError(f"unknown backend mode {mode!r}")
        if mode == "process" and not fork_available():
            raise ReproError("process-mode backends need the fork start method")
        self.backend_id = backend_id
        self.spec = spec
        self.host = host
        self.mode = mode
        self.probe_timeout = probe_timeout
        self.history_dir = Path(history_dir) if history_dir is not None else None
        self.restarts = 0
        self._process: Optional[multiprocessing.process.BaseProcess] = None
        self._server: Optional[ShardServer] = None
        self._address: Optional[Tuple[str, int]] = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise ReproError(f"backend {self.backend_id!r} is not started")
        return self._address

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def start(self) -> Tuple[str, int]:
        if self._address is not None:
            raise ReproError(f"backend {self.backend_id!r} already started")
        if self.history_dir is not None:
            self.history_dir.mkdir(parents=True, exist_ok=True)
        if self.mode == "thread":
            self._server = ShardServer(
                self.spec, host=self.host, port=0, history_dir=self.history_dir
            )
            self._server.start()
            self._address = self._server.address
        else:
            ctx = multiprocessing.get_context("fork")
            parent_conn, child_conn = ctx.Pipe()
            self._process = ctx.Process(
                target=_backend_main,
                args=(self.spec, self.host, self.history_dir, child_conn),
                daemon=True,
                name=f"shard-{self.backend_id}",
            )
            self._process.start()
            child_conn.close()
            if not parent_conn.poll(timeout=10.0):
                self._process.kill()
                raise ReproError(
                    f"backend {self.backend_id!r} did not report its address"
                )
            self._address = tuple(parent_conn.recv())
            parent_conn.close()
        return self._address

    def is_alive(self) -> bool:
        """Cheap process/thread liveness (no network round-trip)."""
        if self.mode == "thread":
            return self._server is not None and self._server._tcp is not None
        return self._process is not None and self._process.is_alive()

    def ping(self) -> bool:
        """Network liveness: can the shard answer a ping right now?"""
        if self._address is None:
            return False
        try:
            with VoterClient(*self._address, timeout=self.probe_timeout) as client:
                return client.ping()
        except (OSError, ReproError):
            return False

    def kill(self) -> None:
        """Fault injection: SIGKILL the shard (thread mode: hard stop)."""
        if self.mode == "thread":
            if self._server is not None:
                tcp = self._server._tcp
                self._server.stop()
                if tcp is not None:
                    # A killed process drops every connection; a stopped
                    # listener alone would leave peers' sockets healthy.
                    tcp.close_all_connections()
        elif self._process is not None:
            self._process.kill()
            self._process.join(timeout=5.0)

    def stop(self) -> None:
        """Graceful shutdown (idempotent)."""
        if self.mode == "thread":
            server, self._server = self._server, None
            if server is not None:
                server.stop()
        else:
            process, self._process = self._process, None
            if process is not None:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - stuck child
                    process.kill()
                    process.join(timeout=5.0)
        self._address = None

    def restart(self) -> Tuple[str, int]:
        """Replace a dead (or live) shard with a fresh one.

        The new process binds a new port but reuses the history
        directory, so every series it hosted resumes with the records
        it had persisted before the crash.
        """
        self.stop()
        self.restarts += 1
        return self.start()

    def __enter__(self) -> "ManagedBackend":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
