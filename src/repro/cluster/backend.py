"""Shard backends: a multi-series voter server under process supervision.

:class:`ShardServer` extends the single-engine
:class:`~repro.service.server.VoterServer` to host one
:class:`~repro.fusion.engine.FusionEngine` per *series* key, each with
its own durable history log, and adds the cluster operations:
``vote_batch`` (micro-batched rounds through
:meth:`~repro.fusion.engine.FusionEngine.process_batch`, the PR-1
vectorized hot path) and ``sync_history`` (the rebalance/failover
seeding write).  Voted rounds are cached per series, so a gateway
replaying a round after a transport failure gets the original result
back instead of an ``already voted`` error — the property that makes
failover retries safe.  The cache is bounded (gateway retries are
short-lived); beyond it a persisted per-series *voted watermark* — the
highest round number ever voted, appended to a log next to the history
stores — guarantees a round is never applied to history twice, even
across a crash: a replay that falls behind the cache is refused
instead of re-applied, and the replica set's majority answers it.

:class:`ManagedBackend` runs a shard server in a forked subprocess
(falling back to an in-process thread where ``fork`` is unavailable)
with liveness probes and restart-on-crash; the per-series history logs
live on disk, so a restarted shard resumes voting with its reliability
records intact.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ReproError
from ..history import (
    DEFAULT_HOT_SERIES,
    JsonlStateStore,
    MemoryStateStore,
    PackedHistoryStore,
    SqliteStateStore,
    TieredHistoryStore,
    series_filename,
)
from ..runtime.pool import fork_available
from ..service.client import VoterClient
from ..service.protocol import ErrorCode, ProtocolError, ok_response
from ..service.server import VoterServer, _numeric, _result_payload
from ..util import atomic_write
from ..vdx.factory import build_engine
from ..vdx.spec import VotingSpec

__all__ = ["ManagedBackend", "ShardServer", "STORE_KINDS"]

#: Storage tiers selectable per shard (the ``--store`` knob).
STORE_KINDS = ("packed", "jsonl", "sqlite", "memory")

#: Replay-cache payloads kept per series.  Gateway retries are
#: short-lived (bounded backoff), so a small window is plenty; rounds
#: evicted from it are still protected against double-application by
#: the persisted voted watermark.
DEFAULT_REPLAY_CACHE_ROUNDS = 1024

#: Watermark-log appends between compactions (the log is append-only
#: per voted round; compaction rewrites it to one line per series).
_WATERMARK_COMPACT_EVERY = 4096


# Kept as an alias: the naming scheme moved to repro.history.bulk so the
# JSONL bulk store shares it, and existing imports keep working.
_series_filename = series_filename


class ShardServer(VoterServer):
    """A voter server hosting many series, one engine per series key.

    Requests without a ``series`` field behave exactly like the plain
    :class:`VoterServer` (single shared engine); requests carrying one
    are routed to that series' engine, created lazily from the same
    VDX spec.  With ``history_dir`` set, each series persists through a
    :class:`~repro.history.tiered.TieredHistoryStore` over the selected
    ``store`` backing (``jsonl`` by default — the historical
    one-log-per-series layout; ``packed`` for the mmap segment store
    that scales to millions of series; ``sqlite``; ``memory``).

    Engine residency is LRU-bounded at ``max_resident_series``: idle
    engines are flushed through the tiered store and dropped, and any
    known series — hosted before a restart, or evicted — is rehydrated
    transparently on its next request, bit-identically to an engine
    that never left memory.
    """

    #: Shards deduplicate rounds and replay cached results, so peers
    #: (via ``hello``) may safely re-send a ``vote`` after a transport
    #: failure.
    _replays_votes = True

    def __init__(
        self,
        spec: VotingSpec,
        host: str = "127.0.0.1",
        port: int = 0,
        history_dir=None,
        registry=None,
        replay_cache_rounds: int = DEFAULT_REPLAY_CACHE_ROUNDS,
        store: Optional[str] = None,
        max_resident_series: Optional[int] = DEFAULT_HOT_SERIES,
        maintenance_interval: Optional[float] = None,
    ):
        super().__init__(spec, host=host, port=port, registry=registry)
        self._history_dir = Path(history_dir) if history_dir is not None else None
        self.replay_cache_rounds = max(1, int(replay_cache_rounds))
        if max_resident_series is not None and max_resident_series < 1:
            raise ReproError(
                f"max_resident_series must be >= 1 or None, "
                f"got {max_resident_series}"
            )
        self.max_resident_series = max_resident_series
        self._engines: "OrderedDict[str, Any]" = OrderedDict()
        self._series_pending: Dict[str, Dict[int, Dict[str, Optional[float]]]] = {}
        self._series_voted: Dict[str, Dict[int, Dict[str, Any]]] = {}
        self._series_watermark: Dict[str, int] = self._load_watermarks()
        self._watermark_appends = 0
        self._tiered = self._build_tiered_store(store, maintenance_interval)
        # Series hosted before a restart (or evicted since): engines are
        # created lazily on their first request, so a freshly restarted
        # shard answers for the history it holds on disk without paying
        # a cold-start rehydration of every series up front.
        self._known_series = set(self._load_series_index())
        if self._tiered is not None:
            self._known_series.update(self._tiered.series())

    def _build_tiered_store(
        self, store: Optional[str], maintenance_interval: Optional[float]
    ) -> Optional[TieredHistoryStore]:
        if store is None:
            # Default: durable shards keep the historical one-JSONL-log-
            # per-series layout; store-less shards stay store-less so the
            # vectorized batch kernel (store-free only) stays engaged.
            store = "jsonl" if self._history_dir is not None else None
        if store is None:
            return None
        if store not in STORE_KINDS:
            raise ReproError(
                f"unknown store {store!r}; expected one of {STORE_KINDS}"
            )
        if store != "memory" and self._history_dir is None:
            raise ReproError(f"store {store!r} requires a history directory")
        if store == "packed":
            backing = PackedHistoryStore(self._history_dir / "packed")
        elif store == "jsonl":
            backing = JsonlStateStore(self._history_dir)
        elif store == "sqlite":
            backing = SqliteStateStore(self._history_dir / "series-state.db")
        else:
            backing = MemoryStateStore()
        return TieredHistoryStore(
            backing,
            hot_series=self.max_resident_series,
            registry=self.registry,
            maintenance_interval=maintenance_interval,
            maintenance_hook=self._background_maintenance,
        )

    def _background_maintenance(self) -> None:
        """Maintenance-thread hook: compact the watermark log off-path."""
        with self._lock:
            if self._watermark_appends >= _WATERMARK_COMPACT_EVERY:
                self._write_watermarks()

    @property
    def tiered_store(self) -> Optional[TieredHistoryStore]:
        """The shard's tiered history store (None for store-less shards)."""
        return self._tiered

    def stop(self) -> None:
        super().stop()
        if self._tiered is not None:
            self._tiered.close()

    def _series_index_path(self) -> Optional[Path]:
        if self._history_dir is None:
            return None
        return self._history_dir / "series-index.json"

    def _load_series_index(self) -> List[str]:
        path = self._series_index_path()
        if path is None or not path.exists():
            return []
        try:
            return list(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, ValueError):  # pragma: no cover - corrupt index
            return []

    def _record_series(self, series: str) -> None:
        self._known_series.add(series)
        path = self._series_index_path()
        if path is None:
            return
        known = set(self._load_series_index())
        if series in known:
            return
        known.add(series)
        # Atomic rewrite: a crash mid-write must leave the previous
        # complete index, never a truncated one that would make the
        # restarted shard forget every series it hosts.
        atomic_write(path, json.dumps(sorted(known)))

    # -- voted watermarks ----------------------------------------------------

    def _watermark_path(self) -> Optional[Path]:
        if self._history_dir is None:
            return None
        return self._history_dir / "voted-rounds.jsonl"

    def _load_watermarks(self) -> Dict[str, int]:
        path = self._watermark_path()
        watermarks: Dict[str, int] = {}
        if path is None or not path.exists():
            return watermarks
        try:
            for line in path.read_text(encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                entry = json.loads(line)
                series, number = str(entry["series"]), int(entry["round"])
                if number > watermarks.get(series, number - 1):
                    watermarks[series] = number
        except (OSError, ValueError, KeyError):  # pragma: no cover - corrupt log
            return watermarks
        return watermarks

    def _write_watermarks(self) -> None:
        path = self._watermark_path()
        if path is None:
            return
        lines = [
            json.dumps({"series": series, "round": number})
            for series, number in sorted(self._series_watermark.items())
        ]
        atomic_write(path, "".join(line + "\n" for line in lines))
        self._watermark_appends = 0

    def _record_watermark(self, series: str, number: int) -> None:
        """Advance (never rewind) the persisted voted watermark."""
        current = self._series_watermark.get(series)
        if current is not None and number <= current:
            return
        self._series_watermark[series] = number
        path = self._watermark_path()
        if path is None:
            return
        if self._watermark_appends >= _WATERMARK_COMPACT_EVERY:
            self._write_watermarks()
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"series": series, "round": number}) + "\n")
        self._watermark_appends += 1

    def _already_voted(self, series: str, number: int) -> bool:
        """Voted before but no cached payload left to replay?"""
        if number in self._series_voted.get(series, {}):
            return False
        watermark = self._series_watermark.get(series)
        return watermark is not None and number <= watermark

    def _cache_result(
        self, series: str, number: int, payload: Dict[str, Any]
    ) -> None:
        voted = self._series_voted.setdefault(series, {})
        voted[number] = payload
        while len(voted) > self.replay_cache_rounds:
            voted.pop(next(iter(voted)))

    # -- per-series engines ------------------------------------------------

    def _engine_for(self, series: str, create: bool = True):
        engine = self._engines.get(series)
        if engine is not None:
            self._engines.move_to_end(series)
            return engine
        known = series in self._known_series
        if not create and not known:
            raise ProtocolError(
                f"unknown series {series!r}", code=ErrorCode.UNKNOWN_SERIES
            )
        # A known-but-not-resident series (evicted, or hosted before a
        # restart) rehydrates here: the engine is rebuilt from the spec
        # and its HistoryRecords restore ``(records, update_count)``
        # through the tiered store, bit-identically to an engine that
        # never left memory.
        store = (
            self._tiered.store_for(series) if self._tiered is not None else None
        )
        engine = build_engine(
            self.spec, history_store=store, registry=self.registry
        )
        self._engines[series] = engine
        if not known:
            self._record_series(series)
        self._evict_engines()
        return engine

    def _evict_engines(self) -> None:
        """Drop least-recently-used engines beyond the residency bound."""
        if self.max_resident_series is None or self._tiered is None:
            return
        while len(self._engines) > self.max_resident_series:
            series, engine = self._engines.popitem(last=False)
            history = getattr(engine.voter, "history", None)
            if history is not None:
                history.persist()
            self._tiered.evict(series)

    @property
    def series_hosted(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self._engines) | self._known_series))

    @property
    def resident_series(self) -> Tuple[str, ...]:
        """Series with a live engine right now (LRU order, oldest first)."""
        return tuple(self._engines)

    # -- series-routed voting ----------------------------------------------

    def _series_vote(
        self, series: str, number: int, values: Dict[str, Optional[float]]
    ) -> Dict[str, Any]:
        from ..types import Round

        cached = self._series_voted.get(series, {}).get(number)
        if cached is not None:
            return cached  # replayed write: answer with the original result
        if self._already_voted(series, number):
            # Voted before this process (re)started, or evicted from the
            # bounded cache: refuse rather than apply to history twice.
            raise ProtocolError(
                f"round {number} was already voted",
                code=ErrorCode.ALREADY_VOTED,
            )
        engine = self._engine_for(series)
        result = engine.process(Round.from_mapping(number, values))
        payload = _result_payload(result)
        self._cache_result(series, number, payload)
        self._record_watermark(series, number)
        return payload

    def _op_vote(self, request) -> Dict[str, Any]:
        series = request.get("series")
        if series is None:
            return super()._op_vote(request)
        values = {str(m): _numeric(m, v) for m, v in request["values"].items()}
        return ok_response(result=self._series_vote(series, request["round"], values))

    def _op_vote_batch(self, request) -> Dict[str, Any]:
        # Two passes: assemble and validate every matrix first so a
        # malformed later batch cannot leave earlier ones half-applied.
        prepared: List[Tuple[Dict[str, Any], np.ndarray, List[str], List[int]]] = []
        for batch in request["batches"]:
            series = batch["series"]
            try:
                matrix = np.asarray(batch["rows"], dtype=float)
            except (TypeError, ValueError):
                raise ProtocolError(
                    f"batch for series {series!r} has non-numeric values",
                    code=ErrorCode.INVALID_VALUE,
                )
            if matrix.size and np.isinf(matrix).any():
                raise ProtocolError(
                    f"batch for series {series!r} contains non-finite values",
                    code=ErrorCode.INVALID_VALUE,
                )
            modules = [str(m) for m in batch["modules"]]
            rounds = list(batch["rounds"])
            for number in rounds:
                if self._already_voted(series, number):
                    raise ProtocolError(
                        f"round {number} for series {series!r} was "
                        "already voted",
                        code=ErrorCode.ALREADY_VOTED,
                    )
            prepared.append((batch, matrix, modules, rounds))

        results = []
        for batch, matrix, modules, rounds in prepared:
            series = batch["series"]
            voted = self._series_voted.get(series, {})
            # Assemble into a batch-local map first: the shared cache may
            # evict rounds of this very batch once they are inserted.
            answers: Dict[int, Dict[str, Any]] = {
                n: voted[n] for n in rounds if n in voted
            }
            fresh: List[int] = []
            seen = set()
            for i, number in enumerate(rounds):
                if number not in answers and number not in seen:
                    seen.add(number)
                    fresh.append(i)
            if fresh:
                engine = self._engine_for(series)
                outcome = engine.process_batch(matrix[fresh], modules)
                for k, i in enumerate(fresh):
                    value = float(outcome.values[k])
                    answers[rounds[i]] = {
                        "round": rounds[i],
                        "value": None if np.isnan(value) else value,
                        "status": str(outcome.statuses[k]),
                    }
                for i in fresh:
                    self._cache_result(series, rounds[i], answers[rounds[i]])
                # One watermark append per batch, not per round.
                self._record_watermark(series, max(rounds[i] for i in fresh))
            results.append(
                {"series": series, "results": [answers[n] for n in rounds]}
            )
        return ok_response(results=results)

    # -- incremental submission, per series --------------------------------

    def _op_submit(self, request) -> Dict[str, Any]:
        series = request.get("series")
        if series is None:
            return super()._op_submit(request)
        number = request["round"]
        if number in self._series_voted.get(series, {}) or self._already_voted(
            series, number
        ):
            raise ProtocolError(
                f"round {number} was already voted",
                code=ErrorCode.ALREADY_VOTED,
            )
        value = _numeric(request["module"], request["value"])
        pending = self._series_pending.setdefault(series, {})
        bucket = pending.setdefault(number, {})
        bucket[request["module"]] = value
        roster = self._engine_for(series).roster
        complete = bool(roster) and set(bucket) >= set(roster)
        if complete:
            payload = self._series_vote(series, number, pending.pop(number))
            return ok_response(accepted=True, voted=True, result=payload)
        return ok_response(accepted=True, voted=False, pending=len(bucket))

    def _op_close_round(self, request) -> Dict[str, Any]:
        series = request.get("series")
        if series is None:
            return super()._op_close_round(request)
        number = request["round"]
        bucket = self._series_pending.get(series, {}).pop(number, None)
        if bucket is None:
            raise ProtocolError(f"no pending submissions for round {number}")
        return ok_response(result=self._series_vote(series, number, bucket))

    # -- inspection ---------------------------------------------------------

    def _op_history(self, request) -> Dict[str, Any]:
        series = request.get("series")
        if series is None:
            return super()._op_history(request)
        engine = self._engine_for(series, create=False)
        history = getattr(engine.voter, "history", None)
        records = history.snapshot() if history is not None else {}
        return ok_response(
            records=records,
            updates=history.update_count if history is not None else 0,
            watermark=self._series_watermark.get(series),
        )

    def _op_stats(self, request) -> Dict[str, Any]:
        series = request.get("series")
        if series is None:
            response = super()._op_stats(request)
            response["series"] = list(self.series_hosted)
            # Round counters are per-process; a known-but-not-resident
            # series reports 0, exactly as it would after a restart.
            response["series_rounds"] = {
                s: (
                    self._engines[s].rounds_processed
                    if s in self._engines
                    else 0
                )
                for s in self.series_hosted
            }
            response["resident_series"] = len(self._engines)
            return response
        engine = self._engine_for(series, create=False)
        return ok_response(series=series, **engine.statistics())

    def _op_reset(self, request) -> Dict[str, Any]:
        series = request.get("series")
        if series is None:
            for engine in self._engines.values():
                engine.reset()
            self._engines.clear()
            if self._tiered is not None:
                # Evicted/non-resident series have no engine to reset;
                # wipe their persisted state directly.
                self._tiered.clear()
            self._known_series.clear()
            self._series_pending.clear()
            self._series_voted.clear()
            self._series_watermark.clear()
            wm_path = self._watermark_path()
            if wm_path is not None and wm_path.exists():
                wm_path.unlink()
            self._watermark_appends = 0
            return super()._op_reset(request)
        engine = self._engines.pop(series, None)
        if engine is not None:
            history = getattr(engine.voter, "history", None)
            store = getattr(history, "store", None)
            if store is not None:
                store.clear()
        elif self._tiered is not None:
            self._tiered.delete(series)
        self._known_series.discard(series)
        self._series_pending.pop(series, None)
        self._series_voted.pop(series, None)
        if self._series_watermark.pop(series, None) is not None:
            self._write_watermarks()
        path = self._series_index_path()
        if path is not None:
            known = [s for s in self._load_series_index() if s != series]
            atomic_write(path, json.dumps(known))
        return ok_response(reset=True, series=series)

    def _op_configure(self, request) -> Dict[str, Any]:
        # A scheme swap invalidates every hosted series, records included.
        for engine in self._engines.values():
            history = getattr(engine.voter, "history", None)
            store = getattr(history, "store", None)
            if store is not None:
                store.clear()
        if self._tiered is not None:
            self._tiered.clear()
        self._engines.clear()
        self._known_series.clear()
        self._series_pending.clear()
        self._series_voted.clear()
        self._series_watermark.clear()
        self._watermark_appends = 0
        path = self._series_index_path()
        if path is not None and path.exists():
            path.unlink()
        wm_path = self._watermark_path()
        if wm_path is not None and wm_path.exists():
            wm_path.unlink()
        return super()._op_configure(request)

    # -- rebalance handoff --------------------------------------------------

    def _op_sync_history(self, request) -> Dict[str, Any]:
        series = request["series"]
        watermark = request.get("watermark")
        if watermark is not None:
            current = self._series_watermark.get(series)
            if current is not None and int(watermark) < current:
                # The seed was snapshotted before rounds this shard has
                # since voted — applying it would rewind history.
                return ok_response(synced=0, series=series, ignored=True)
        engine = self._engine_for(series)
        history = getattr(engine.voter, "history", None)
        if history is None:
            raise ProtocolError(
                f"series {series!r} voter keeps no history records"
            )
        records = {str(m): float(v) for m, v in request["records"].items()}
        updates = request.get("updates")
        if updates is not None:
            # Versioned seed (failover resync): adopt the survivor's
            # records *and* its update counter, so the bootstrap trigger
            # and EMA warm-up behave as if this shard never crashed.
            history.absorb(records, int(updates))
            # absorb skips the store by design; persist() writes both
            # the records and the adopted update counter through.
            history.persist()
        else:
            history.seed(records, count_as_update=False)
        if watermark is not None:
            self._record_watermark(series, int(watermark))
        return ok_response(synced=len(records), series=series)


def _backend_main(
    spec: VotingSpec,
    host: str,
    history_dir,
    store: Optional[str],
    max_resident_series: Optional[int],
    maintenance_interval: Optional[float],
    conn,
) -> None:
    """Subprocess entry: serve one shard until the process is killed."""
    from ..obs import MetricsRegistry

    # The child serves its metrics over the wire (the `obs`/`metrics`
    # ops); a forked copy of the parent registry would only skew labels,
    # so the shard gets its own empty registry instead.
    server = ShardServer(
        spec,
        host=host,
        port=0,
        history_dir=history_dir,
        store=store,
        max_resident_series=max_resident_series,
        maintenance_interval=maintenance_interval,
        registry=MetricsRegistry(),
    )
    server.start()
    conn.send(server.address)
    conn.close()
    threading.Event().wait()


class ManagedBackend:
    """One shard backend under supervision.

    Runs a :class:`ShardServer` in a forked subprocess (``mode="process"``,
    the default where ``fork`` exists) or an in-process thread
    (``mode="thread"``, also the no-fork fallback).  Exposes liveness
    probes, SIGKILL for fault injection, and :meth:`restart`, which
    brings a fresh process up over the same history directory so every
    series resumes with its persisted records.
    """

    def __init__(
        self,
        backend_id: str,
        spec: VotingSpec,
        history_dir=None,
        host: str = "127.0.0.1",
        mode: Optional[str] = None,
        probe_timeout: float = 2.0,
        store: Optional[str] = None,
        max_resident_series: Optional[int] = DEFAULT_HOT_SERIES,
        maintenance_interval: Optional[float] = None,
    ):
        if mode is None:
            mode = "process" if fork_available() else "thread"
        if mode not in ("process", "thread"):
            raise ReproError(f"unknown backend mode {mode!r}")
        if mode == "process" and not fork_available():
            raise ReproError("process-mode backends need the fork start method")
        if store is not None and store not in STORE_KINDS:
            raise ReproError(
                f"unknown store {store!r}; expected one of {STORE_KINDS}"
            )
        self.backend_id = backend_id
        self.spec = spec
        self.host = host
        self.mode = mode
        self.probe_timeout = probe_timeout
        self.store = store
        self.max_resident_series = max_resident_series
        self.maintenance_interval = maintenance_interval
        self.history_dir = Path(history_dir) if history_dir is not None else None
        self.restarts = 0
        self._process: Optional[multiprocessing.process.BaseProcess] = None
        self._server: Optional[ShardServer] = None
        self._address: Optional[Tuple[str, int]] = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise ReproError(f"backend {self.backend_id!r} is not started")
        return self._address

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def start(self) -> Tuple[str, int]:
        if self._address is not None:
            raise ReproError(f"backend {self.backend_id!r} already started")
        if self.history_dir is not None:
            self.history_dir.mkdir(parents=True, exist_ok=True)
        if self.mode == "thread":
            from ..obs import MetricsRegistry

            # Mirror the process-mode child: each shard owns its own
            # registry so the gateway's `obs` aggregation never
            # double-counts shards sharing the process default.
            self._server = ShardServer(
                self.spec,
                host=self.host,
                port=0,
                history_dir=self.history_dir,
                store=self.store,
                max_resident_series=self.max_resident_series,
                maintenance_interval=self.maintenance_interval,
                registry=MetricsRegistry(),
            )
            self._server.start()
            self._address = self._server.address
        else:
            ctx = multiprocessing.get_context("fork")
            parent_conn, child_conn = ctx.Pipe()
            self._process = ctx.Process(
                target=_backend_main,
                args=(
                    self.spec,
                    self.host,
                    self.history_dir,
                    self.store,
                    self.max_resident_series,
                    self.maintenance_interval,
                    child_conn,
                ),
                daemon=True,
                name=f"shard-{self.backend_id}",
            )
            self._process.start()
            child_conn.close()
            if not parent_conn.poll(timeout=10.0):
                self._process.kill()
                raise ReproError(
                    f"backend {self.backend_id!r} did not report its address"
                )
            self._address = tuple(parent_conn.recv())
            parent_conn.close()
        return self._address

    def is_alive(self) -> bool:
        """Cheap process/thread liveness (no network round-trip)."""
        if self.mode == "thread":
            return self._server is not None and self._server._tcp is not None
        return self._process is not None and self._process.is_alive()

    def ping(self) -> bool:
        """Network liveness: can the shard answer a ping right now?"""
        if self._address is None:
            return False
        try:
            with VoterClient(*self._address, timeout=self.probe_timeout) as client:
                return client.ping()
        except (OSError, ReproError):
            return False

    def kill(self) -> None:
        """Fault injection: SIGKILL the shard (thread mode: hard stop)."""
        if self.mode == "thread":
            if self._server is not None:
                tcp = self._server._tcp
                self._server.stop()
                if tcp is not None:
                    # A killed process drops every connection; a stopped
                    # listener alone would leave peers' sockets healthy.
                    tcp.close_all_connections()
        elif self._process is not None:
            self._process.kill()
            self._process.join(timeout=5.0)

    def stop(self) -> None:
        """Graceful shutdown (idempotent)."""
        if self.mode == "thread":
            server, self._server = self._server, None
            if server is not None:
                server.stop()
        else:
            process, self._process = self._process, None
            if process is not None:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - stuck child
                    process.kill()
                    process.join(timeout=5.0)
        self._address = None

    def restart(self) -> Tuple[str, int]:
        """Replace a dead (or live) shard with a fresh one.

        The new process binds a new port but reuses the history
        directory, so every series it hosted resumes with the records
        it had persisted before the crash.
        """
        self.stop()
        self.restarts += 1
        return self.start()

    def __enter__(self) -> "ManagedBackend":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
