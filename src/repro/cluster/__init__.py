"""repro.cluster — sharded fusion cluster over the voter service.

Scales :mod:`repro.service` horizontally:

* :class:`~repro.cluster.ring.HashRing` — consistent-hash ring
  (virtual nodes, deterministic seed) mapping series keys to N backend
  shards with R-way replica sets.
* :class:`~repro.cluster.backend.ShardServer` /
  :class:`~repro.cluster.backend.ManagedBackend` — a multi-series
  voter server, run in a supervised subprocess with liveness probes
  and restart-on-crash.
* :class:`~repro.cluster.gateway.ClusterGateway` — the failover-aware
  front door: hashes the series key, fans writes to the replica set,
  reads with majority semantics and micro-batches rounds per shard
  through :meth:`~repro.fusion.engine.FusionEngine.process_batch`.
* :mod:`~repro.cluster.retry` — bounded exponential backoff plus a
  circuit breaker, shared by gateway→backend calls (and opt-in by
  :class:`~repro.service.client.VoterClient`).
* :class:`~repro.cluster.supervisor.FusionCluster` — wires it all up:
  spawn/monitor/restart backends, rebalance on join/leave with
  history-store handoff.

Everything is exported lazily (PEP 562): :mod:`repro.service.client`
imports :mod:`repro.cluster.retry`, while the heavier cluster modules
import the service layer — eager re-exports here would close that loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "ClusterGateway",
    "FusionCluster",
    "HashRing",
    "ManagedBackend",
    "RetryPolicy",
    "ShardServer",
    "call_with_retry",
]

_EXPORTS = {
    "HashRing": ("ring", "HashRing"),
    "RetryPolicy": ("retry", "RetryPolicy"),
    "CircuitBreaker": ("retry", "CircuitBreaker"),
    "CircuitOpenError": ("retry", "CircuitOpenError"),
    "call_with_retry": ("retry", "call_with_retry"),
    "ShardServer": ("backend", "ShardServer"),
    "ManagedBackend": ("backend", "ManagedBackend"),
    "ClusterGateway": ("gateway", "ClusterGateway"),
    "FusionCluster": ("supervisor", "FusionCluster"),
}

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .backend import ManagedBackend, ShardServer
    from .gateway import ClusterGateway
    from .retry import CircuitBreaker, CircuitOpenError, RetryPolicy, call_with_retry
    from .ring import HashRing
    from .supervisor import FusionCluster


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, attribute)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
