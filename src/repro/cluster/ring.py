"""Consistent-hash ring: series keys → backend shards with replica sets.

The ring places ``vnodes`` virtual points per backend on a 64-bit hash
circle and maps a series key to the first ``replicas`` *distinct*
backends clockwise from the key's own hash point.  Hashing is
``blake2b`` over a fixed seed, so placement is deterministic across
processes and Python versions (``hash()`` is salted per process and
would reshuffle every shard on restart).

Adding or removing one backend moves only the keys whose arc changed —
the property that makes rebalancing a handoff of a few series rather
than a full reshuffle (see :meth:`HashRing.moved_keys`).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

from ..exceptions import ConfigurationError

__all__ = ["HashRing"]

#: Default virtual nodes per backend; 64 keeps the per-backend load
#: spread within a few percent at single-digit shard counts.
DEFAULT_VNODES = 64


def _hash64(data: str) -> int:
    """Deterministic 64-bit position on the ring."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over named backends.

    Args:
        replicas: size of the replica set returned by
            :meth:`replica_set` (clamped to the live backend count).
        vnodes: virtual points per backend.
        seed: hash-domain seed; two rings with the same seed, vnodes
            and membership place every key identically.
    """

    def __init__(
        self, replicas: int = 1, vnodes: int = DEFAULT_VNODES, seed: str = "avoc"
    ):
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.replicas = replicas
        self.vnodes = vnodes
        self.seed = seed
        self._points: List[int] = []  # sorted vnode positions
        self._owners: Dict[int, str] = {}  # position -> backend id
        self._nodes: List[str] = []  # insertion order, for tie-breaks

    # -- membership --------------------------------------------------------

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Backend ids currently on the ring, in join order."""
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def _vnode_position(self, node: str, index: int) -> int:
        return _hash64(f"{self.seed}/{node}#{index}")

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ConfigurationError(f"backend {node!r} is already on the ring")
        for index in range(self.vnodes):
            position = self._vnode_position(node, index)
            if position in self._owners:
                # A 64-bit collision between different backends would
                # silently reassign a vnode; perturb deterministically.
                position = _hash64(f"{self.seed}/{node}#{index}/collision")
            bisect.insort(self._points, position)
            self._owners[position] = node
        self._nodes.append(node)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ConfigurationError(f"backend {node!r} is not on the ring")
        self._nodes.remove(node)
        positions = [p for p, owner in self._owners.items() if owner == node]
        for position in positions:
            del self._owners[position]
            index = bisect.bisect_left(self._points, position)
            del self._points[index]

    # -- routing -----------------------------------------------------------

    def replica_set(self, key: str, replicas: int = 0) -> List[str]:
        """The distinct backends responsible for ``key``, primary first.

        Walks clockwise from the key's hash point collecting distinct
        owners.  ``replicas`` overrides the ring default; either way
        the result is clamped to the number of live backends.
        """
        if not self._nodes:
            raise ConfigurationError("the ring has no backends")
        wanted = min(replicas or self.replicas, len(self._nodes))
        start = bisect.bisect_right(self._points, _hash64(f"{self.seed}!{key}"))
        chosen: List[str] = []
        n_points = len(self._points)
        for step in range(n_points):
            owner = self._owners[self._points[(start + step) % n_points]]
            if owner not in chosen:
                chosen.append(owner)
                if len(chosen) == wanted:
                    break
        return chosen

    def primary(self, key: str) -> str:
        """The first backend on ``key``'s arc."""
        return self.replica_set(key, replicas=1)[0]

    # -- rebalance support -------------------------------------------------

    def assignments(self, keys: Iterable[str]) -> Dict[str, List[str]]:
        """Key → replica set for every key (rebalance planning)."""
        return {key: self.replica_set(key) for key in keys}

    def moved_keys(
        self, keys: Sequence[str], before: Dict[str, List[str]]
    ) -> Dict[str, Tuple[List[str], List[str]]]:
        """Keys whose replica set changed vs a prior :meth:`assignments`.

        Returns ``{key: (old_set, new_set)}`` for keys present in
        ``before`` whose placement differs now — the handoff work list
        after a membership change.
        """
        moved = {}
        for key in keys:
            old = before.get(key)
            new = self.replica_set(key)
            if old is not None and old != new:
                moved[key] = (old, new)
        return moved

    def load_by_node(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each backend serves (any replica slot)."""
        load = {node: 0 for node in self._nodes}
        for key in keys:
            for node in self.replica_set(key):
                load[node] += 1
        return load
