"""The cluster gateway: one front door over many shard backends.

The gateway speaks the same line-delimited JSON protocol as the plain
voter service (plus ``route`` and ``cluster_stats``), hashes every
series key onto the consistent-hash ring, fans writes to the full
replica set and reads the majority answer back.  Each backend is
served by a dedicated link thread that **micro-batches**: whatever
vote jobs have queued up since the last flush travel as one
``vote_batch`` request and are fused through
:meth:`~repro.fusion.engine.FusionEngine.process_batch` on the shard —
under concurrent load the PR-1 vectorized kernels are the hot path,
not a per-round request loop.

Failover is a property of the link, not the caller: every
gateway→backend exchange runs under the shared
:class:`~repro.cluster.retry.RetryPolicy` and a per-backend
:class:`~repro.cluster.retry.CircuitBreaker`, so a dead shard fails
fast after its first timeout and the majority read carries on with the
surviving replicas.  A supervisor callback hears about the failure and
can restart the shard (see :mod:`repro.cluster.supervisor`).
"""

from __future__ import annotations

import json
import queue
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ReproError
from ..obs import ClusterInstruments, MetricsRegistry, get_default_registry
from ..service.client import VoterClient
from ..service.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    ConnectionClosedError,
    ErrorCode,
    ProtocolError,
    VersionMismatchError,
    ok_response,
    validate_request,
)
from ..service.server import _Handler, _numeric, _ThreadingServer
from ..vdx.spec import VotingSpec
from .retry import CircuitBreaker, RetryPolicy, call_with_retry
from .ring import HashRing

__all__ = ["ClusterGateway"]

_STOP = object()


class _Job:
    """One unit of backend work a client handler thread waits on."""

    __slots__ = ("kind", "payload", "event", "result", "error")

    def __init__(self, kind: str, payload: Any):
        self.kind = kind  # "vote" | "batch" | "forward"
        self.payload = payload
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None

    def finish(self, result: Any) -> None:
        self.result = result
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()


class _BackendLink:
    """One backend's connection, queue, and micro-batching worker."""

    def __init__(
        self,
        backend_id: str,
        address: Tuple[str, int],
        policy: RetryPolicy,
        breaker: CircuitBreaker,
        obs: ClusterInstruments,
        on_failure: Callable[[str], None],
        batch_max: int = 256,
        timeout: float = 30.0,
    ):
        self.backend_id = backend_id
        self.address = tuple(address)
        self.policy = policy
        self.breaker = breaker
        self.obs = obs
        self.on_failure = on_failure
        self.batch_max = batch_max
        self.timeout = timeout
        self.alive = True
        #: A fenced link is excluded from all routing (it missed a
        #: cluster-wide state change, e.g. a partial ``configure``) until
        #: the supervisor reconfigures or restarts its backend.
        self.fenced = False
        self.requests_sent = 0
        self.failures = 0
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._client: Optional[VoterClient] = None
        self._reconnect = False
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"link-{backend_id}"
        )
        self._thread.start()

    # -- control (gateway thread) -----------------------------------------

    def enqueue(self, job: _Job) -> None:
        self._queue.put(job)

    def update_address(self, address: Tuple[str, int]) -> None:
        """Point the link at a restarted backend and close the breaker."""
        self.address = tuple(address)
        self._reconnect = True
        self.alive = True
        self.fenced = False
        self.breaker.record_success()

    def stop(self) -> None:
        self._queue.put(_STOP)
        self._thread.join(timeout=5.0)

    # -- worker ------------------------------------------------------------

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            stopping = job is _STOP
            jobs: List[_Job] = [] if stopping else [job]
            while len(jobs) < self.batch_max:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    stopping = True
                    break
                jobs.append(extra)
            if jobs:
                self._flush(jobs)
            if stopping:
                if self._client is not None:
                    self._client.close()
                return

    def _request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        def attempt() -> Dict[str, Any]:
            if self._reconnect and self._client is not None:
                self._client.close()
                self._client = None
                self._reconnect = False
            if self._client is None:
                client = VoterClient(*self.address, timeout=self.timeout)
                client.connect()
                # Reject mismatched peers up front; upgrades the link
                # to v3 binary framing when the shard supports it.
                client.negotiate("auto")
                self._client = client
            try:
                return self._client.request(message)
            except (ConnectionClosedError, OSError):
                self._client.close()
                self._client = None
                raise

        self.requests_sent += 1
        self.obs.shard_request(self.backend_id)
        try:
            response = call_with_retry(
                attempt,
                self.policy,
                retry_on=(ConnectionClosedError, OSError),
                breaker=self.breaker,
            )
        except Exception:
            self.failures += 1
            self.alive = False
            self.obs.shard_error(self.backend_id)
            self.on_failure(self.backend_id)
            raise
        self.alive = True
        return response

    def _flush(self, jobs: Sequence[_Job]) -> None:
        votes = [j for j in jobs if j.kind == "vote"]
        rest = [j for j in jobs if j.kind != "vote"]
        if votes:
            self._flush_votes(votes)
        for job in rest:
            try:
                if job.kind == "batch":
                    response = self._request(
                        {"op": "vote_batch", "batches": job.payload}
                    )
                    job.finish(response["results"])
                else:  # forward
                    job.finish(self._request(job.payload))
            except Exception as exc:  # noqa: BLE001 - delivered to the waiter
                job.fail(exc)

    def _flush_votes(self, votes: Sequence[_Job]) -> None:
        """Coalesce queued single-round votes into one vote_batch."""
        groups: Dict[Tuple[str, Tuple[str, ...]], List[_Job]] = {}
        for job in votes:
            series, _, _, modules = job.payload
            groups.setdefault((series, modules), []).append(job)
        batches = []
        owners: List[List[_Job]] = []
        for (series, modules), group in groups.items():
            batches.append(
                {
                    "series": series,
                    "rounds": [j.payload[1] for j in group],
                    "modules": list(modules),
                    "rows": [
                        [j.payload[2][m] for m in modules] for j in group
                    ],
                }
            )
            owners.append(group)
        self.obs.batch_rounds.observe(float(len(votes)))
        try:
            response = self._request({"op": "vote_batch", "batches": batches})
        except Exception as exc:  # noqa: BLE001 - delivered to the waiters
            for job in votes:
                job.fail(exc)
            return
        for group, series_result in zip(owners, response["results"]):
            for job, payload in zip(group, series_result["results"]):
                job.finish(payload)


class ClusterGateway:
    """Failover-aware front door for a sharded fusion cluster.

    Args:
        spec: the voting scheme every shard hosts.
        ring: consistent-hash ring over backend ids (owned by the
            caller; a supervisor mutates it on join/leave).
        host / port: bind address (port 0 picks a free port).
        retry: backoff policy for gateway→backend calls.
        breaker_threshold / breaker_reset: per-backend circuit breaker.
        replica_timeout: how long a request waits for its replica set.
        batch_max: cap on vote jobs coalesced into one shard flush.
        default_series: series key used when a request carries none, so
            a plain :class:`~repro.service.client.VoterClient` works
            against the gateway unchanged.
        registry: metrics registry (default: the process-global one).
    """

    def __init__(
        self,
        spec: VotingSpec,
        ring: HashRing,
        host: str = "127.0.0.1",
        port: int = 0,
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 3,
        breaker_reset: float = 1.0,
        replica_timeout: float = 30.0,
        batch_max: int = 256,
        default_series: str = "default",
        registry: Optional[MetricsRegistry] = None,
    ):
        self.spec = spec
        self.ring = ring
        self.retry = retry if retry is not None else RetryPolicy(
            max_retries=2, base_delay=0.05, max_delay=0.5
        )
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self.replica_timeout = replica_timeout
        self.batch_max = batch_max
        self.default_series = default_series
        self.registry = registry if registry is not None else get_default_registry()
        self._obs = ClusterInstruments(self.registry)
        self._links: Dict[str, _BackendLink] = {}
        self._series: set = set()
        #: Backends mid-resync after a restart: their history may lag
        #: the surviving replicas, so they are excluded from routing
        #: (unless no fresh replica remains) until the catch-up lands.
        self._stale: set = set()
        self._lock = threading.Lock()
        self._failure_callback: Optional[Callable[[str], None]] = None
        self.requests_served = 0
        self._obs.backends_alive.set_function(
            lambda: float(sum(1 for link in self._links.values() if link.alive))
        )
        self._tcp: Optional[_ThreadingServer] = _ThreadingServer((host, port), _Handler)
        self._tcp.service = self  # type: ignore[attr-defined]
        self._address = self._tcp.server_address
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self):
        return self._address

    def start(self) -> "ClusterGateway":
        if self._tcp is None:
            raise ReproError("gateway already stopped")
        if self._thread is not None:
            raise ReproError("gateway already started")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        tcp, self._tcp = self._tcp, None
        if tcp is not None:
            if thread is not None:
                tcp.shutdown()
            tcp.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        with self._lock:
            links, self._links = dict(self._links), {}
        for link in links.values():
            link.stop()

    def __enter__(self) -> "ClusterGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- backend membership --------------------------------------------------

    def set_failure_callback(self, callback: Callable[[str], None]) -> None:
        """Called (from a link thread) when a backend stops answering."""
        self._failure_callback = callback

    def _on_link_failure(self, backend_id: str) -> None:
        callback = self._failure_callback
        if callback is not None:
            callback(backend_id)

    def add_backend(self, backend_id: str, address: Tuple[str, int]) -> None:
        with self._lock:
            if backend_id in self._links:
                raise ReproError(f"backend {backend_id!r} already attached")
            self._links[backend_id] = _BackendLink(
                backend_id,
                address,
                self.retry,
                CircuitBreaker(self.breaker_threshold, self.breaker_reset),
                self._obs,
                self._on_link_failure,
                batch_max=self.batch_max,
                timeout=self.replica_timeout,
            )

    def remove_backend(self, backend_id: str) -> None:
        with self._lock:
            link = self._links.pop(backend_id, None)
            self._stale.discard(backend_id)
        if link is not None:
            link.stop()

    def update_backend(self, backend_id: str, address: Tuple[str, int]) -> None:
        """Re-point a link after its backend restarted on a new port."""
        with self._lock:
            link = self._links.get(backend_id)
        if link is None:
            raise ReproError(f"no backend {backend_id!r} attached")
        link.update_address(address)

    def mark_stale(self, backend_id: str) -> None:
        """Exclude a backend from routing until :meth:`resync_backend`.

        Called by the supervisor *before* re-pointing the gateway at a
        restarted backend, so a shard whose history lags the surviving
        replicas never answers (and never wins a majority tie) while it
        is catching up.
        """
        with self._lock:
            self._stale.add(backend_id)

    def clear_stale(self, backend_id: str) -> None:
        with self._lock:
            self._stale.discard(backend_id)

    def _fence(self, backend_id: str) -> None:
        link = self._link(backend_id)
        if link is not None:
            link.fenced = True

    def fenced_backends(self) -> Tuple[str, ...]:
        """Backends excluded from routing pending supervisor repair."""
        with self._lock:
            return tuple(
                sorted(bid for bid, link in self._links.items() if link.fenced)
            )

    def resync_backend(self, backend_id: str) -> Dict[str, Any]:
        """Catch a restarted (stale) backend up and re-enable it.

        For every series the backend replicates, reads the history of a
        fresh surviving replica and pushes it to the backend as a
        *versioned* ``sync_history`` (records + update counter + voted
        watermark), then clears the stale mark.  Runs under the routing
        lock: no vote can be routed while the seed is in flight, and
        link queues are FIFO, so the donor's snapshot observes every
        vote routed before the lock was taken and the seed lands on the
        victim before any vote routed after it — which is what makes
        post-failover fused values bit-identical.

        Series with no fresh survivor are skipped: nothing could have
        been voted during the outage, so the backend's own on-disk
        history is already canonical.
        """
        with self._lock:
            victim = self._links.get(backend_id)
            if victim is None:
                raise ReproError(f"no backend {backend_id!r} attached")
            plan: List[Tuple[str, List[_BackendLink]]] = []
            for series in sorted(self._series):
                replicas = self.ring.replica_set(series)
                if backend_id not in replicas:
                    continue
                donors = [
                    self._links[peer]
                    for peer in replicas
                    if peer != backend_id
                    and peer not in self._stale
                    and peer in self._links
                    and not self._links[peer].fenced
                ]
                plan.append((series, donors))
            synced, skipped = 0, 0
            for series, donors in plan:
                snapshot: Optional[Dict[str, Any]] = None
                for donor in donors:
                    job = _Job("forward", {"op": "history", "series": series})
                    donor.enqueue(job)
                    if not job.event.wait(self.replica_timeout):
                        continue
                    if job.error is not None or not job.result.get("records"):
                        continue  # donor never hosted the series: next
                    snapshot = job.result
                    break
                if snapshot is None:
                    skipped += 1
                    continue
                message: Dict[str, Any] = {
                    "op": "sync_history",
                    "series": series,
                    "records": snapshot["records"],
                }
                if snapshot.get("updates") is not None:
                    message["updates"] = int(snapshot["updates"])
                if snapshot.get("watermark") is not None:
                    message["watermark"] = int(snapshot["watermark"])
                job = _Job("forward", message)
                victim.enqueue(job)
                if job.event.wait(self.replica_timeout) and job.error is None:
                    synced += 1
                else:
                    skipped += 1
            self._stale.discard(backend_id)
        return {"backend": backend_id, "synced": synced, "skipped": skipped}

    @contextmanager
    def membership(self):
        """Hold the routing lock while mutating the shared ring.

        The supervisor rebalances by changing ring membership; routing
        reads the ring under the same lock, so mutations inside this
        window are atomic with respect to in-flight requests.
        """
        with self._lock:
            yield self.ring

    def known_series(self) -> Tuple[str, ...]:
        """Every series key the gateway has routed so far."""
        with self._lock:
            return tuple(sorted(self._series))

    def _register_series(self, series: str) -> None:
        with self._lock:
            self._series.add(series)

    def _replicas(self, series: str) -> List[str]:
        with self._lock:
            return self.ring.replica_set(series)

    def _link(self, backend_id: str) -> Optional[_BackendLink]:
        with self._lock:
            return self._links.get(backend_id)

    def _route(self, series: str) -> List[Tuple[str, _BackendLink]]:
        """The replica links eligible to serve a series, ring order.

        Fenced links never serve.  Stale (mid-resync) links are skipped
        while any fresh replica remains; when none does (replicas=1, or
        every replica restarting at once) the stale set is the best
        available answer and is used as a fallback.
        """
        with self._lock:
            replicas = self.ring.replica_set(series)
            fresh: List[Tuple[str, _BackendLink]] = []
            stale: List[Tuple[str, _BackendLink]] = []
            for backend_id in replicas:
                link = self._links.get(backend_id)
                if link is None or link.fenced:
                    continue
                bucket = stale if backend_id in self._stale else fresh
                bucket.append((backend_id, link))
            return fresh if fresh else stale

    # -- fan-out machinery ---------------------------------------------------

    def _await_jobs(
        self, jobs: List[Tuple[str, _Job]]
    ) -> List[Tuple[str, Any]]:
        """Wait for enqueued jobs; returns (backend_id, result) successes."""
        deadline = time.monotonic() + self.replica_timeout
        successes: List[Tuple[str, Any]] = []
        for backend_id, job in jobs:
            remaining = max(0.0, deadline - time.monotonic())
            if not job.event.wait(remaining):
                job.fail(ProtocolError(f"backend {backend_id!r} timed out"))
                continue
            if job.error is None:
                successes.append((backend_id, job.result))
        return successes

    def _fan_out(self, series: str, kind: str, payload: Any) -> List[Tuple[str, Any]]:
        """Enqueue one job per eligible replica of ``series`` and await."""
        routed = self._route(series)
        jobs: List[Tuple[str, _Job]] = []
        for backend_id, link in routed:
            job = _Job(kind, payload)
            link.enqueue(job)
            jobs.append((backend_id, job))
        if not jobs:
            raise ProtocolError(
                f"no backends attached for series {series!r}",
                code=ErrorCode.NO_REPLICA,
            )
        successes = self._await_jobs(jobs)
        if not successes:
            raise ProtocolError(
                f"no replica answered for series {series!r} "
                f"(replica set: {self._replicas(series)})",
                code=ErrorCode.NO_REPLICA,
            )
        return successes

    def _majority(self, answers: List[Tuple[str, Any]]) -> Any:
        """Majority value among replica answers (ties: replica order)."""
        counts: Dict[str, List[Any]] = {}
        for _, payload in answers:
            key = json.dumps(payload, sort_keys=True, default=str)
            counts.setdefault(key, [0, payload])[0] += 1
        if len(counts) > 1:
            self._obs.replica_disagreements.inc()
        best_count = -1
        best_payload = None
        for count, payload in counts.values():
            if count > best_count:
                best_count, best_payload = count, payload
        return best_payload

    def _forward_first(self, series: str, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send a read to the first eligible replica that answers
        (primary first; stale replicas only as a last resort)."""
        last_error: Optional[BaseException] = None
        for backend_id, link in self._route(series):
            job = _Job("forward", request)
            link.enqueue(job)
            successes = self._await_jobs([(backend_id, job)])
            if successes:
                return successes[0][1]
            last_error = job.error
        if isinstance(last_error, ReproError):
            raise last_error
        raise ProtocolError(
            f"no replica answered for series {series!r}",
            code=ErrorCode.NO_REPLICA,
        )

    def _broadcast_collect(
        self, request: Dict[str, Any]
    ) -> Tuple[List[Tuple[str, Any]], List[str]]:
        """Send a request to every unfenced backend; collect results.

        Returns ``(successes, failed)`` where ``successes`` is the list
        of ``(backend_id, response)`` pairs that answered in time and
        ``failed`` the sorted ids that did not.
        """
        with self._lock:
            targets = [
                (bid, link) for bid, link in self._links.items()
                if not link.fenced
            ]
        jobs = []
        for backend_id, link in targets:
            job = _Job("forward", request)
            link.enqueue(job)
            jobs.append((backend_id, job))
        successes = self._await_jobs(jobs)
        acked = {backend_id for backend_id, _ in successes}
        failed = sorted(bid for bid, _ in jobs if bid not in acked)
        return successes, failed

    def _broadcast(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send a request to every unfenced backend; report per-id acks."""
        successes, failed = self._broadcast_collect(request)
        return {
            "sent": len(successes) + len(failed),
            "acknowledged": len(successes),
            "failed": failed,
        }

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Handle one validated request (no global lock: fan-outs from
        different client connections must interleave for micro-batching
        to ever see more than one round per flush)."""
        op = validate_request(request)
        self.requests_served += 1
        self._obs.requests.labels(op).inc()
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ProtocolError(
                f"operation {op!r} is not supported by the gateway",
                code=ErrorCode.UNSUPPORTED_OP,
            )
        return handler(request)

    # -- local operations ----------------------------------------------------

    def _op_ping(self, request) -> Dict[str, Any]:
        return ok_response(pong=True, role="gateway")

    def _op_hello(self, request) -> Dict[str, Any]:
        version = request["version"]
        if version not in SUPPORTED_VERSIONS:
            raise VersionMismatchError(
                f"protocol version mismatch: peer speaks {version}, "
                f"this gateway speaks {PROTOCOL_VERSION}"
            )
        # The gateway replays safely: routed votes are deduplicated by
        # the shard replay caches, so clients may re-send after a drop.
        return ok_response(
            version=version,
            server=type(self).__name__,
            replays_votes=True,
            binary_framing=True,
            max_version=PROTOCOL_VERSION,
        )

    def _op_spec(self, request) -> Dict[str, Any]:
        return ok_response(spec=self.spec.to_dict())

    def _op_metrics(self, request) -> Dict[str, Any]:
        """Local Prometheus text; per-shard text on ``"shards": true``."""
        response = ok_response(metrics=self.registry.render())
        if request.get("shards"):
            successes, failed = self._broadcast_collect({"op": "metrics"})
            response["shard_metrics"] = {
                backend_id: payload.get("metrics", "")
                for backend_id, payload in sorted(successes)
            }
            response["shard_failures"] = failed
        return response

    def _op_obs(self, request) -> Dict[str, Any]:
        """Aggregated registry snapshots: the gateway's own plus every
        answering backend's (the dashboard/scrape aggregation op)."""
        successes, failed = self._broadcast_collect({"op": "obs"})
        return ok_response(
            snapshot=self.registry.snapshot(),
            shards={
                backend_id: payload.get("snapshot", {})
                for backend_id, payload in sorted(successes)
            },
            shard_failures=failed,
        )

    def _op_route(self, request) -> Dict[str, Any]:
        series = request["series"]
        replicas = self._replicas(series)
        addresses = []
        for backend_id in replicas:
            link = self._link(backend_id)
            addresses.append(list(link.address) if link is not None else None)
        return ok_response(series=series, replicas=replicas, addresses=addresses)

    @staticmethod
    def _backend_status(link: "_BackendLink", stale: bool) -> str:
        """One word a caller can branch (or color a dashboard) on.

        Priority order matters: a fenced backend must never read as
        healthy even if its link still answers pings, and a stale one
        is excluded from routing even though it is alive.
        """
        if link.fenced:
            return "fenced"
        if stale:
            return "stale"
        if not link.alive:
            return "dead"
        return "alive"

    def _op_cluster_stats(self, request) -> Dict[str, Any]:
        with self._lock:
            links = dict(self._links)
            stale = set(self._stale)
            ring_nodes = list(self.ring.nodes)
            series_count = len(self._series)
        backends = {
            backend_id: {
                "address": list(link.address),
                "alive": link.alive,
                "fenced": link.fenced,
                "stale": backend_id in stale,
                "status": self._backend_status(link, backend_id in stale),
                "breaker": link.breaker.state,
                "requests": link.requests_sent,
                "failures": link.failures,
            }
            for backend_id, link in sorted(links.items())
        }
        by_status: Dict[str, int] = {}
        for info in backends.values():
            by_status[info["status"]] = by_status.get(info["status"], 0) + 1
        return ok_response(
            ring={
                "backends": ring_nodes,
                "replicas": self.ring.replicas,
                "vnodes": self.ring.vnodes,
            },
            backends=backends,
            backends_by_status=by_status,
            series_routed=series_count,
            requests_served=self.requests_served,
        )

    # -- routed operations ---------------------------------------------------

    def _op_vote(self, request) -> Dict[str, Any]:
        series = request.get("series", self.default_series)
        self._register_series(series)
        values = {str(m): _numeric(m, v) for m, v in request["values"].items()}
        modules = tuple(values)
        answers = self._fan_out(
            series, "vote", (series, request["round"], values, modules)
        )
        return ok_response(
            result=self._majority(answers), replicas_answered=len(answers)
        )

    def _op_vote_batch(self, request) -> Dict[str, Any]:
        batches = request["batches"]
        replica_map: List[List[str]] = []
        per_backend: Dict[str, List[int]] = {}
        links: Dict[str, _BackendLink] = {}
        for index, batch in enumerate(batches):
            series = batch["series"]
            self._register_series(series)
            routed = self._route(series)
            replica_map.append([backend_id for backend_id, _ in routed])
            for backend_id, link in routed:
                links[backend_id] = link
                per_backend.setdefault(backend_id, []).append(index)
        jobs: Dict[str, Tuple[_Job, List[int]]] = {}
        for backend_id, indices in per_backend.items():
            job = _Job("batch", [batches[i] for i in indices])
            links[backend_id].enqueue(job)
            jobs[backend_id] = (job, indices)
        if not jobs:
            raise ProtocolError(
                "no backends attached", code=ErrorCode.NO_REPLICA
            )
        self._await_jobs([(bid, job) for bid, (job, _) in jobs.items()])
        collected: Dict[int, Dict[str, Any]] = {}
        for backend_id, (job, indices) in jobs.items():
            if job.error is not None:
                continue
            for slot, index in enumerate(indices):
                collected.setdefault(index, {})[backend_id] = (
                    job.result[slot]["results"]
                )
        results = []
        for index, batch in enumerate(batches):
            answers_by_backend = collected.get(index)
            if not answers_by_backend:
                raise ProtocolError(
                    f"no replica answered for series {batch['series']!r}",
                    code=ErrorCode.NO_REPLICA,
                )
            # Order answers primary-first so majority ties resolve the
            # same way every time.
            ordered = [
                (bid, answers_by_backend[bid])
                for bid in replica_map[index]
                if bid in answers_by_backend
            ]
            merged = []
            for k in range(len(batch["rounds"])):
                merged.append(
                    self._majority([(bid, rows[k]) for bid, rows in ordered])
                )
            results.append({"series": batch["series"], "results": merged})
        return ok_response(results=results)

    def _op_submit(self, request) -> Dict[str, Any]:
        series = request.get("series", self.default_series)
        self._register_series(series)
        forwarded = dict(request)
        forwarded["series"] = series
        answers = self._fan_out(series, "forward", forwarded)
        return self._majority(answers)

    def _op_close_round(self, request) -> Dict[str, Any]:
        series = request.get("series", self.default_series)
        forwarded = dict(request)
        forwarded["series"] = series
        answers = self._fan_out(series, "forward", forwarded)
        return self._majority(answers)

    def _op_history(self, request) -> Dict[str, Any]:
        series = request.get("series", self.default_series)
        forwarded = dict(request)
        forwarded["series"] = series
        return self._forward_first(series, forwarded)

    def _op_stats(self, request) -> Dict[str, Any]:
        series = request.get("series", self.default_series)
        forwarded = dict(request)
        forwarded["series"] = series
        return self._forward_first(series, forwarded)

    def _op_reset(self, request) -> Dict[str, Any]:
        series = request.get("series")
        if series is not None:
            forwarded = dict(request)
            answers = self._fan_out(series, "forward", forwarded)
            return self._majority(answers)
        summary = self._broadcast({"op": "reset"})
        with self._lock:
            self._series.clear()
        return ok_response(reset=True, **summary)

    def _op_configure(self, request) -> Dict[str, Any]:
        """Two-phase scheme swap: probe all backends, then commit.

        Phase 1 pings every unfenced backend; any miss aborts *before*
        a single backend is reconfigured, so the cluster stays uniform
        on the old spec.  Phase 2 commits; a backend that crashes in
        the window between the phases is **fenced** — excluded from all
        routing until the supervisor restarts it on the new spec — so
        the cluster never serves mixed-spec majorities.
        """
        spec = VotingSpec.from_dict(request["spec"])
        probe = self._broadcast({"op": "ping"})
        if probe["failed"]:
            raise ProtocolError(
                "configure aborted: backends "
                f"{probe['failed']} unreachable; no backend was "
                "reconfigured — cluster keeps the current spec"
            )
        summary = self._broadcast(dict(request))
        for backend_id in summary["failed"]:
            self._fence(backend_id)
        self.spec = spec
        with self._lock:
            self._series.clear()
        return ok_response(
            configured=True,
            algorithm_name=spec.algorithm_name,
            fenced=summary["failed"],
            **summary,
        )
