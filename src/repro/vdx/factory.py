"""Instantiate voters (and fusion engines) from VDX specifications.

This is the "parsing logic" half of the VDX contribution: a validated
:class:`~repro.vdx.spec.VotingSpec` is mapped onto the algorithm zoo —
the paper's stated goal of "shielding software engineers from the voting
implementation".
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import SpecificationError
from ..voting.avoc import AvocVoter
from ..voting.base import Voter, VoterParams
from ..voting.categorical import CategoricalMajorityVoter
from ..voting.clustering_voter import ClusteringOnlyVoter
from ..voting.hybrid import HybridVoter
from ..voting.incoherence import IncoherenceMaskingVoter
from ..voting.module_elimination import ModuleEliminationVoter
from ..voting.probabilistic import ProbabilisticSymbolVoter
from ..voting.soft_dynamic import SoftDynamicThresholdVoter
from ..voting.standard import StandardVoter
from ..voting.stateless import CollationVoter
from .spec import VotingSpec

_CATEGORICAL_HISTORY = {"NONE": "none", "STANDARD": "standard", "ME": "me"}


def _voter_params(
    spec: VotingSpec, elimination: str, base: Optional[VoterParams] = None
) -> VoterParams:
    """Spec params layered over the algorithm's own defaults.

    A VDX document only has to state what it wants to change; history
    policy and learning rate fall back to the target algorithm's
    defaults (e.g. the Standard voter's slow EMA) unless the document
    pins them explicitly.

    The spec's quorum is *not* baked into the voter: the engine-level
    :class:`~repro.fusion.quorum.QuorumRule` built by
    :meth:`FusionEngine.from_spec` is the single enforcement point
    (``VoterParams.quorum_percentage`` is deprecated).
    """
    base = base or VoterParams()
    explicit = spec.params
    return VoterParams(
        error=spec.error,
        soft_threshold=spec.soft_threshold,
        history_policy=str(explicit["history_policy"])
        if "history_policy" in explicit and explicit["history_policy"] is not None
        else base.history_policy,
        reward=float(explicit.get("reward", base.reward)),
        penalty=float(explicit.get("penalty", base.penalty)),
        learning_rate=float(explicit.get("learning_rate", base.learning_rate)),
        elimination=elimination,
        elimination_threshold=base.elimination_threshold,
        collation=spec.collation,
        bootstrap_mode="auto" if spec.bootstrapping else "never",
    )


def build_voter(spec: VotingSpec, history_store=None) -> Voter:
    """Build the voter a VDX specification describes.

    Args:
        spec: a validated voting specification.
        history_store: optional persistent backend forwarded to
            history-aware voters.

    Raises:
        SpecificationError: when the spec encodes a combination the
            algorithm zoo cannot realise (defensive; validation should
            have caught it).
    """
    if spec.is_categorical:
        if spec.collation == "PROBABILISTIC_MAJORITY":
            return ProbabilisticSymbolVoter(
                history_mode=_CATEGORICAL_HISTORY[spec.history],
                prior_strength=float(spec.params.get("prior_strength", 1.0)),
                smoothing=float(spec.params.get("prior_smoothing", 1.0)),
                prior_decay=float(spec.params.get("prior_decay", 0.05)),
                reward=float(spec.params.get("reward", 0.1)),
                penalty=float(spec.params.get("penalty", 0.2)),
                policy=str(spec.params.get("history_policy", "additive")),
            )
        return CategoricalMajorityVoter(
            history_mode=_CATEGORICAL_HISTORY[spec.history],
            reward=float(spec.params.get("reward", 0.1)),
            penalty=float(spec.params.get("penalty", 0.2)),
            policy=str(spec.params.get("history_policy", "additive")),
        )

    if spec.history == "INCOHERENCE":
        # No HistoryRecords: the score table is the whole state, so a
        # persistent history store does not apply here.
        params = _voter_params(
            spec,
            elimination="none",
            base=IncoherenceMaskingVoter.default_params(),
        )
        return IncoherenceMaskingVoter(
            params=params,
            rise=float(spec.params.get("incoherence_rise", 0.35)),
            decay=float(spec.params.get("incoherence_decay", 0.1)),
            mask_threshold=float(spec.params.get("mask_threshold", 1.0)),
            rejoin_threshold=float(spec.params.get("rejoin_threshold", 0.25)),
            score_cap=float(spec.params.get("score_cap", 2.0)),
        )

    if spec.history == "NONE":
        if spec.bootstrapping:
            # Clustering as the entire vote: clustering-only voting.
            params = _voter_params(spec, elimination="none")
            return ClusteringOnlyVoter(params=params)
        return CollationVoter(spec.collation)

    # History-aware voters: layer spec params over algorithm defaults.

    if spec.history == "STANDARD":
        cls, elimination = StandardVoter, "none"
    elif spec.history == "ME":
        cls, elimination = ModuleEliminationVoter, "mean"
    elif spec.history == "SDT":
        cls, elimination = SoftDynamicThresholdVoter, "none"
    elif spec.history == "HYBRID":
        cls = AvocVoter if spec.bootstrapping else HybridVoter
        elimination = "fixed"
    else:  # pragma: no cover - validation rejects unknown modes
        raise SpecificationError([f"unsupported history mode {spec.history!r}"])

    params = _voter_params(spec, elimination=elimination, base=cls.default_params())
    return cls(params=params, history_store=history_store)


def build_engine(spec: VotingSpec, history_store=None, fault_policy=None,
                 registry=None):
    """Build a :class:`~repro.fusion.engine.FusionEngine` from a spec.

    The engine layers VDX's pre-vote value exclusion and the fault
    policies of §7 (missing values, conflicts) around the voter.  An
    explicit ``fault_policy`` argument wins; otherwise the document's
    ``fault_policy`` object (the VDX 1.1 extension) applies, falling
    back to engine defaults when neither is given.  ``registry``
    selects the metrics registry the engine instruments against.
    """
    from ..fusion.engine import FusionEngine  # local import: fusion uses voting

    voter = build_voter(spec, history_store=history_store)
    if fault_policy is None:
        fault_policy = spec.build_fault_policy()
    return FusionEngine.from_spec(
        spec, voter, fault_policy=fault_policy, registry=registry
    )
